"""Graphviz DOT export for dependency graphs, constraint sets and nets.

The paper's Figures 4, 5, 7, 8 and 9 are graph drawings; these exporters
produce equivalent DOT sources (render with ``dot -Tpdf``).  Styling
follows the paper's conventions: data dependencies dotted, control
dependencies solid with the condition as edge label, service dependencies
dashed, cooperation dependencies bold, external service ports drawn as
boxes.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from repro.core.constraints import SynchronizationConstraintSet
from repro.deps.registry import DependencySet
from repro.deps.types import DependencyKind

_EDGE_STYLE = {
    DependencyKind.DATA: 'style=dotted color="#2166ac"',
    DependencyKind.CONTROL: 'style=solid color="#b2182b"',
    DependencyKind.SERVICE: 'style=dashed color="#4d4d4d"',
    DependencyKind.COOPERATION: 'style=bold color="#1b7837"',
}


def _quote(name: str) -> str:
    return '"%s"' % name.replace('"', '\\"')


def dependency_set_to_dot(
    dependencies: DependencySet,
    name: str = "dependencies",
    ports: Iterable[str] = (),
) -> str:
    """Render a categorized dependency set (Figure 5 / Table 1 style)."""
    port_set: Set[str] = set(ports)
    lines = ["digraph %s {" % _quote(name).strip('"').replace(" ", "_")]
    lines.append("  rankdir=TB;")
    lines.append('  node [shape=ellipse fontname="Helvetica" fontsize=10];')

    nodes = dependencies.endpoints()
    for node in sorted(nodes):
        if node in port_set:
            lines.append("  %s [shape=box style=filled fillcolor=lightgray];" % _quote(node))
        else:
            lines.append("  %s;" % _quote(node))

    for dependency in dependencies:
        style = _EDGE_STYLE[dependency.kind]
        label = ""
        if dependency.kind is DependencyKind.CONTROL:
            label = ' label="%s"' % (dependency.condition or "NONE")
        lines.append(
            "  %s -> %s [%s%s];"
            % (_quote(dependency.source), _quote(dependency.target), style, label)
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def constraint_set_to_dot(
    sc: SynchronizationConstraintSet,
    name: str = "constraints",
    highlight: Iterable = (),
    races: Iterable = (),
) -> str:
    """Render a synchronization constraint set (Figures 7-9 style).

    ``highlight`` marks constraints to draw bold (Figure 8's translated
    edges).  ``races`` takes :class:`~repro.lint.races.Race` records (or
    any objects with ``first``/``second``/``variable``); racing activity
    pairs are drawn as red double-headed dashed edges, their endpoints
    filled red — the visual counterpart of the SYNC001/SYNC002 lint rules.
    """
    highlighted = {
        (c.source, c.target, c.condition) for c in highlight
    }
    race_list = list(races)
    racing_nodes = {r.first for r in race_list} | {r.second for r in race_list}
    lines = ["digraph %s {" % name.replace(" ", "_")]
    lines.append("  rankdir=TB;")
    lines.append('  node [shape=ellipse fontname="Helvetica" fontsize=10];')
    external = set(sc.externals)
    for node in sc.nodes:
        if node in racing_nodes:
            lines.append(
                "  %s [style=filled fillcolor=mistyrose color=red];" % _quote(node)
            )
        elif node in external:
            lines.append("  %s [shape=box style=filled fillcolor=lightgray];" % _quote(node))
        else:
            lines.append("  %s;" % _quote(node))
    for constraint in sorted(sc.constraints):
        attributes = []
        if constraint.condition is not None:
            attributes.append('label="%s"' % constraint.condition)
        if (constraint.source, constraint.target, constraint.condition) in highlighted:
            attributes.append("style=bold penwidth=2")
        lines.append(
            "  %s -> %s%s;"
            % (
                _quote(constraint.source),
                _quote(constraint.target),
                " [%s]" % " ".join(attributes) if attributes else "",
            )
        )
    for race in sorted(race_list, key=lambda r: (r.variable, r.first, r.second)):
        lines.append(
            '  %s -> %s [dir=both style=dashed color=red label="race: %s" '
            "fontcolor=red constraint=false];"
            % (_quote(race.first), _quote(race.second), race.variable)
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def petri_net_to_dot(net, name: Optional[str] = None) -> str:
    """Render a :class:`~repro.petri.net.PetriNet` (places as circles,
    transitions as rectangles)."""
    lines = ["digraph %s {" % (name or net.name).replace(" ", "_")]
    lines.append("  rankdir=LR;")
    lines.append('  node [fontname="Helvetica" fontsize=9];')
    for place in net.places:
        lines.append("  %s [shape=circle];" % _quote(place.name))
    for transition in net.transitions:
        label = transition.label or transition.name
        lines.append(
            "  %s [shape=box style=filled fillcolor=lightyellow label=%s];"
            % (_quote(transition.name), _quote(label))
        )
    for transition in net.transitions:
        for place, weight in net.preset(transition.name).items():
            suffix = ' [label="%d"]' % weight if weight > 1 else ""
            lines.append(
                "  %s -> %s%s;" % (_quote(place), _quote(transition.name), suffix)
            )
        for place, weight in net.postset(transition.name).items():
            suffix = ' [label="%d"]' % weight if weight > 1 else ""
            lines.append(
                "  %s -> %s%s;" % (_quote(transition.name), _quote(place), suffix)
            )
    lines.append("}")
    return "\n".join(lines) + "\n"
