"""Export backends: Graphviz DOT renderings of the paper's graph figures."""

from repro.export.dot import (
    constraint_set_to_dot,
    dependency_set_to_dot,
    petri_net_to_dot,
)

__all__ = [
    "constraint_set_to_dot",
    "dependency_set_to_dot",
    "petri_net_to_dot",
]
