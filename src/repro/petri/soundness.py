"""Workflow-net soundness (van der Aalst's classical criteria).

A *workflow net* has one source place ``i`` (empty preset), one sink place
``o`` (empty postset), and every node lies on a path from ``i`` to ``o``.
It is *sound* iff, starting from the marking ``[i]``:

1. **option to complete** — from every reachable marking, the final
   marking ``[o]`` remains reachable;
2. **proper completion** — every reachable marking containing a token in
   ``o`` is exactly ``[o]``;
3. **no dead transitions** — every transition fires in some run.

The paper validates woven synchronization schemes by mapping them to Petri
nets; an unsound net signals conflicting dependencies (e.g. a
synchronization cycle manifests as a dead initial fragment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.petri.net import Marking, PetriNet
from repro.petri.reachability import build_reachability_graph, can_reach


@dataclass(frozen=True)
class SoundnessReport:
    """Outcome of a soundness check."""

    is_workflow_net: bool
    option_to_complete: bool
    proper_completion: bool
    dead_transitions: Tuple[str, ...]
    truncated: bool
    reachable_markings: int
    problems: Tuple[str, ...] = ()
    #: transition firing sequence witnessing the first marking that cannot
    #: complete (option-to-complete violations only) — comparable against
    #: the symbolic verifier's VER001 counterexample traces.
    stuck_witness: Tuple[str, ...] = ()

    @property
    def is_sound(self) -> bool:
        return (
            self.is_workflow_net
            and self.option_to_complete
            and self.proper_completion
            and not self.dead_transitions
            and not self.truncated
        )


def workflow_places(net: PetriNet) -> Tuple[Optional[str], Optional[str]]:
    """The (source, sink) places of a would-be workflow net, or Nones."""
    sources = [
        place.name for place in net.places if not net.place_preset(place.name)
    ]
    sinks = [
        place.name for place in net.places if not net.place_postset(place.name)
    ]
    source = sources[0] if len(sources) == 1 else None
    sink = sinks[0] if len(sinks) == 1 else None
    return source, sink


def is_workflow_net(net: PetriNet) -> bool:
    """Structural check: unique source/sink and full connectivity."""
    source, sink = workflow_places(net)
    if source is None or sink is None:
        return False

    # Every node must lie on a path from source to sink.  Check forward
    # reachability from the source and backward from the sink over the
    # bipartite structure.
    forward: Set[str] = set()
    stack = [source]
    while stack:
        node = stack.pop()
        if node in forward:
            continue
        forward.add(node)
        if any(place.name == node for place in net.places):
            stack.extend(net.place_postset(node))
        else:
            stack.extend(net.postset(node))

    backward: Set[str] = set()
    stack = [sink]
    while stack:
        node = stack.pop()
        if node in backward:
            continue
        backward.add(node)
        if any(place.name == node for place in net.places):
            stack.extend(net.place_preset(node))
        else:
            stack.extend(net.preset(node))

    nodes = {place.name for place in net.places} | {
        transition.name for transition in net.transitions
    }
    return nodes <= forward and nodes <= backward


def check_soundness(
    net: PetriNet, state_limit: int = 200_000
) -> SoundnessReport:
    """Behavioral soundness by exhaustive reachability analysis."""
    problems: List[str] = []
    structural = is_workflow_net(net)
    if not structural:
        problems.append("not a workflow net (source/sink/connectivity)")

    source, sink = workflow_places(net)
    if source is None or sink is None:
        return SoundnessReport(
            is_workflow_net=False,
            option_to_complete=False,
            proper_completion=False,
            dead_transitions=tuple(t.name for t in net.transitions),
            truncated=False,
            reachable_markings=0,
            problems=tuple(problems),
        )

    initial = Marking({source: 1})
    final = Marking({sink: 1})
    graph = build_reachability_graph(net, initial, state_limit=state_limit)

    if graph.truncated:
        problems.append("state space truncated at %d markings" % len(graph))

    indices_reaching_final = can_reach(net, graph, final)
    option_to_complete = (
        not graph.truncated
        and graph.index_of(final) is not None
        and all(i in indices_reaching_final for i in range(len(graph.markings)))
    )
    stuck_witness: Tuple[str, ...] = ()
    if not option_to_complete:
        stuck = next(
            (
                i
                for i in range(len(graph.markings))
                if i not in indices_reaching_final
            ),
            None,
        )
        if stuck is not None:
            stuck_witness = tuple(graph.witness_path(stuck))
            problems.append(
                "some reachable marking cannot complete (witness: %s)"
                % (" -> ".join(stuck_witness) or "<initial marking>")
            )
        else:
            problems.append("some reachable marking cannot complete")

    proper_completion = True
    for marking in graph.markings:
        if marking.count(sink) >= 1 and marking != final:
            proper_completion = False
            problems.append("improper completion: %r" % marking)
            break

    fired = graph.fired_transitions()
    dead = tuple(
        sorted(t.name for t in net.transitions if t.name not in fired)
    )
    if dead:
        problems.append("dead transitions: %s" % ", ".join(dead))

    return SoundnessReport(
        is_workflow_net=structural,
        option_to_complete=option_to_complete,
        proper_completion=proper_completion,
        dead_transitions=dead,
        truncated=graph.truncated,
        reachable_markings=len(graph),
        problems=tuple(problems),
        stuck_witness=stuck_witness,
    )
