"""Translation of synchronization constraint sets into workflow Petri nets.

Every activity becomes a transition (one per outcome for guard activities);
every constraint becomes a place between producer and consumer; a source
place ``i`` feeds the activities with no predecessors and a sink place
``o`` collects the ones with no successors.

Conditional behavior uses **dead-path elimination**, mirroring how BPEL
engines execute the woven schemes: when a guard fires with outcome ``v``,
every activity whose execution guard requires a different outcome receives
a *skip token*; its ``skip`` transition then waits for the same input
places as the real activity, consumes them, and produces the same output
places.  Joins therefore always complete, on either branch, and the net is
sound exactly when the constraint set is conflict-free — which is how the
DSCWeaver detects "infinite synchronization sequences" (cycles) statically:
a cyclic set translates to a net whose initial fragment is dead.

Limitation: at most one *direct* guard condition per activity (nested
conditionals chain through their guards, so this loses no generality for
structured processes); richer guard sets raise :class:`PetriNetError`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.constraints import Constraint, SynchronizationConstraintSet
from repro.errors import PetriNetError
from repro.petri.net import Marking, PetriNet

SOURCE_PLACE = "i"
SINK_PLACE = "o"


def _constraint_place(constraint: Constraint) -> str:
    condition = constraint.condition or ""
    return "p__%s__%s__%s" % (constraint.source, constraint.target, condition)


def constraint_set_to_petri_net(
    sc: SynchronizationConstraintSet, name: Optional[str] = None
) -> Tuple[PetriNet, Marking]:
    """Translate ``sc`` into ``(net, initial_marking)``.

    ``sc`` must be an activity set (no constraint may touch an external
    node); use service translation first.
    """
    if not sc.is_activity_set:
        raise PetriNetError(
            "constraint set still contains external nodes; run service "
            "dependency translation first"
        )

    net = PetriNet(name or "wf")
    net.add_place(SOURCE_PLACE)
    net.add_place(SINK_PLACE)

    activities = list(sc.activities)
    incoming: Dict[str, List[Constraint]] = {a: [] for a in activities}
    outgoing: Dict[str, List[Constraint]] = {a: [] for a in activities}
    for constraint in sc:
        incoming[constraint.target].append(constraint)
        outgoing[constraint.source].append(constraint)
        net.add_place(_constraint_place(constraint))

    # Guard activities: anything that conditions a constraint or an
    # execution guard.
    guard_names: Set[str] = set()
    for constraint in sc:
        if constraint.condition is not None:
            guard_names.add(constraint.source)
    dependents: Dict[str, List[Tuple[str, str]]] = {}
    for activity in activities:
        conditions = sc.guard_of(activity)
        if len(conditions) > 1:
            raise PetriNetError(
                "activity %r has %d direct guard conditions; the Petri "
                "translation supports at most one (nest branches instead)"
                % (activity, len(conditions))
            )
        for condition in conditions:
            guard_names.add(condition.guard)
            dependents.setdefault(condition.guard, []).append(
                (activity, condition.value)
            )

    skippable = [a for a in activities if sc.guard_of(a)]
    for activity in skippable:
        net.add_place("skip__%s" % activity)
        net.add_place("go__%s" % activity)

    unknown_guards = guard_names - set(activities)
    if unknown_guards:
        raise PetriNetError(
            "guard activities missing from the set: %s" % sorted(unknown_guards)
        )

    # Source / sink wiring.
    roots = [a for a in activities if not incoming[a]]
    leaves = [a for a in activities if not outgoing[a]]
    net.add_transition("t_in", label="start")
    net.add_arc(SOURCE_PLACE, "t_in")
    if roots:
        for activity in roots:
            place = "init__%s" % activity
            net.add_place(place)
            net.add_arc("t_in", place)
    else:
        # Every activity has predecessors: the set is cyclic.  Park the
        # token where nothing can consume it so the unsoundness is visible.
        net.add_place("__no_roots")
        net.add_arc("t_in", "__no_roots")
    net.add_transition("t_out", label="complete")
    net.add_arc("t_out", SINK_PLACE)
    if leaves:
        for activity in leaves:
            place = "fin__%s" % activity
            net.add_place(place)
            net.add_arc(place, "t_out")
    else:
        net.add_place("__no_leaves")
        net.add_arc("__no_leaves", "t_out")

    def wire_inputs(transition: str, activity: str) -> None:
        if incoming[activity]:
            for constraint in incoming[activity]:
                net.add_arc(_constraint_place(constraint), transition)
        else:
            net.add_arc("init__%s" % activity, transition)

    def wire_outputs(transition: str, activity: str) -> None:
        if outgoing[activity]:
            for constraint in outgoing[activity]:
                net.add_arc(transition, _constraint_place(constraint))
        else:
            net.add_arc(transition, "fin__%s" % activity)

    def wire_outcome_production(
        transition: str, activity: str, outcome: Optional[str]
    ) -> None:
        """When ``activity`` (a guard) resolves to ``outcome`` — or is
        itself skipped (``outcome=None``) — emit a *go* token to every
        dependent that will run and a *skip* token to every dependent that
        will not."""
        for dependent, required in dependents.get(activity, ()):
            if outcome is not None and required == outcome:
                net.add_arc(transition, "go__%s" % dependent)
            else:
                net.add_arc(transition, "skip__%s" % dependent)

    skippable_set = set(skippable)
    for activity in activities:
        if activity in guard_names:
            outcomes = sorted(sc.domains.domain(activity))
            for outcome in outcomes:
                transition = "exec__%s__%s" % (activity, outcome)
                net.add_transition(transition, label="%s=%s" % (activity, outcome))
                wire_inputs(transition, activity)
                wire_outputs(transition, activity)
                wire_outcome_production(transition, activity, outcome)
                if activity in skippable_set:
                    net.add_arc("go__%s" % activity, transition)
        else:
            transition = "exec__%s" % activity
            net.add_transition(transition, label=activity)
            wire_inputs(transition, activity)
            wire_outputs(transition, activity)
            if activity in skippable_set:
                net.add_arc("go__%s" % activity, transition)

        if activity in skippable_set:
            transition = "skip__t__%s" % activity
            net.add_transition(transition, label="skip:%s" % activity)
            net.add_arc("skip__%s" % activity, transition)
            wire_inputs(transition, activity)
            wire_outputs(transition, activity)
            if activity in guard_names:
                # A skipped guard skips all of its dependents too.
                wire_outcome_production(transition, activity, None)

    return net, Marking({SOURCE_PLACE: 1})
