"""Reachability analysis for Petri nets.

Builds the (bounded) reachability graph by breadth-first exploration and
answers the behavioral questions the soundness checker needs: which
markings are reachable, which of them are deadlocks, which transitions ever
fire, and whether the net stays within a token bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.petri.net import Marking, PetriNet

#: Safety valve: exploration aborts past this many distinct markings.
DEFAULT_STATE_LIMIT = 200_000


@dataclass
class ReachabilityGraph:
    """The explored state space of a net from an initial marking."""

    initial: Marking
    markings: List[Marking] = field(default_factory=list)
    #: (marking index, transition name, marking index)
    edges: List[Tuple[int, str, int]] = field(default_factory=list)
    #: True if exploration hit the state limit before exhausting the space.
    truncated: bool = False
    #: BFS parent pointers: marking index -> (parent index, transition).
    #: The initial marking has no entry.
    parents: Dict[int, Tuple[int, str]] = field(default_factory=dict)

    _index: Dict[Marking, int] = field(default_factory=dict, repr=False)

    def index_of(self, marking: Marking) -> Optional[int]:
        return self._index.get(marking)

    def successors(self, index: int) -> List[Tuple[str, int]]:
        return [(t, j) for i, t, j in self.edges if i == index]

    def fired_transitions(self) -> Set[str]:
        return {transition for _, transition, _ in self.edges}

    def witness_path(self, index: int) -> List[str]:
        """The transition firing sequence from the initial marking to
        ``markings[index]`` (shortest in BFS layers).

        Lets a deadlocked marking be reported *with the run that reaches
        it*, comparable against the symbolic verifier's VER001
        counterexample traces.
        """
        steps: List[str] = []
        cursor = index
        while cursor in self.parents:
            cursor, transition = self.parents[cursor]
            steps.append(transition)
        steps.reverse()
        return steps

    def witness_for(self, marking: Marking) -> Optional[List[str]]:
        """Witness path to ``marking``, or None if it was never explored."""
        index = self.index_of(marking)
        if index is None:
            return None
        return self.witness_path(index)

    def __len__(self) -> int:
        return len(self.markings)


def build_reachability_graph(
    net: PetriNet,
    initial: Marking,
    state_limit: int = DEFAULT_STATE_LIMIT,
) -> ReachabilityGraph:
    """Breadth-first reachability graph construction.

    ``truncated`` is set (rather than raising) when the limit is hit, so
    callers can distinguish "analysis incomplete" from genuine properties.
    """
    graph = ReachabilityGraph(initial=initial)
    graph.markings.append(initial)
    graph._index[initial] = 0
    frontier = [0]
    while frontier:
        next_frontier: List[int] = []
        for index in frontier:
            marking = graph.markings[index]
            for transition in net.enabled_transitions(marking):
                successor = net.fire(transition, marking)
                successor_index = graph._index.get(successor)
                if successor_index is None:
                    if len(graph.markings) >= state_limit:
                        graph.truncated = True
                        return graph
                    successor_index = len(graph.markings)
                    graph.markings.append(successor)
                    graph._index[successor] = successor_index
                    graph.parents[successor_index] = (index, transition)
                    next_frontier.append(successor_index)
                graph.edges.append((index, transition, successor_index))
        frontier = next_frontier
    return graph


def find_deadlocks(
    net: PetriNet, graph: ReachabilityGraph
) -> List[Marking]:
    """Reachable markings enabling no transition."""
    deadlocks: List[Marking] = []
    for marking in graph.markings:
        if not net.enabled_transitions(marking):
            deadlocks.append(marking)
    return deadlocks


def is_bounded(graph: ReachabilityGraph, bound: int) -> bool:
    """Did every explored marking keep every place within ``bound`` tokens?

    Only meaningful when the graph is not truncated.
    """
    for marking in graph.markings:
        for _place, count in marking.items():
            if count > bound:
                return False
    return True


def can_reach(
    net: PetriNet,
    graph: ReachabilityGraph,
    target: Marking,
) -> Set[int]:
    """Indices of explored markings from which ``target`` is reachable.

    Computed by backward traversal over the explored edges; if the target
    was never explored the result is empty.
    """
    target_index = graph.index_of(target)
    if target_index is None:
        return set()
    predecessors: Dict[int, List[int]] = {}
    for i, _t, j in graph.edges:
        predecessors.setdefault(j, []).append(i)
    reached: Set[int] = {target_index}
    stack = [target_index]
    while stack:
        node = stack.pop()
        for predecessor in predecessors.get(node, ()):
            if predecessor not in reached:
                reached.add(predecessor)
                stack.append(predecessor)
    return reached
