"""Colored Petri nets — the token-type extension the paper invokes.

Section 4.1: "we need to extend it with the value of states in order to
handle the control dependency which has multiple output result.  This
extension is the same as the extension from basic Petri Nets to Colored
Petri Nets that differentiate the type of tokens."

This module implements a deliberately small CPN dialect:

* every token carries a *color* (a string; ``PLAIN`` = ``""`` is the
  colorless token);
* an **input arc** declares the set of colors it accepts (``None`` =
  any color) and consumes one matching token;
* an **output arc** emits one token of a fixed color.

That is exactly enough to make branch outcomes first-class in the marking:
:func:`constraint_set_to_colored_net` translates a guarded constraint set
so that a guard activity's transitions emit tokens *colored with the
outcome*, each guarded activity's ``exec`` transition only accepts its own
outcome color, and its ``skip`` transition accepts the complementary
colors — colored dead-path elimination, with the branch decision visible
in every intermediate marking (unlike the black-token construction of
:mod:`repro.petri.from_constraints`, which encodes the same information in
separate go/skip places).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.errors import NotEnabledError, PetriNetError

#: The colorless token color.
PLAIN = ""

#: Color emitted on behalf of a skipped guard (its outcome never existed).
SKIPPED = "skipped"


class ColoredMarking:
    """An immutable multiset of colored tokens: ``(place, color) -> count``."""

    __slots__ = ("_tokens", "_hash")

    def __init__(self, tokens: Optional[Mapping[Tuple[str, str], int]] = None) -> None:
        cleaned = {key: count for key, count in (tokens or {}).items() if count > 0}
        object.__setattr__(self, "_tokens", dict(sorted(cleaned.items())))
        object.__setattr__(self, "_hash", hash(tuple(self._tokens.items())))

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("ColoredMarking is immutable")

    def count(self, place: str, color: str = PLAIN) -> int:
        return self._tokens.get((place, color), 0)

    def colors_at(self, place: str) -> List[str]:
        return [color for (p, color) in self._tokens if p == place]

    def total_at(self, place: str) -> int:
        return sum(count for (p, _c), count in self._tokens.items() if p == place)

    def total(self) -> int:
        return sum(self._tokens.values())

    def items(self):
        return iter(self._tokens.items())

    def add(self, place: str, color: str = PLAIN, count: int = 1) -> "ColoredMarking":
        tokens = dict(self._tokens)
        tokens[(place, color)] = tokens.get((place, color), 0) + count
        return ColoredMarking(tokens)

    def remove(self, place: str, color: str = PLAIN, count: int = 1) -> "ColoredMarking":
        have = self._tokens.get((place, color), 0)
        if have < count:
            raise PetriNetError(
                "cannot remove %d %r token(s) from %r (has %d)"
                % (count, color, place, have)
            )
        tokens = dict(self._tokens)
        tokens[(place, color)] = have - count
        return ColoredMarking(tokens)

    def __eq__(self, other):
        if not isinstance(other, ColoredMarking):
            return NotImplemented
        return self._tokens == other._tokens

    def __hash__(self):
        return self._hash

    def __repr__(self):
        inside = ", ".join(
            "%s%s%s"
            % (
                place,
                ":%s" % color if color else "",
                "" if count == 1 else "*%d" % count,
            )
            for (place, color), count in self._tokens.items()
        )
        return "[%s]" % inside


@dataclass(frozen=True)
class InputArc:
    """Consumes one token from ``place`` whose color is in ``colors``
    (``None`` accepts any color)."""

    place: str
    colors: Optional[FrozenSet[str]] = None

    @classmethod
    def any(cls, place: str) -> "InputArc":
        return cls(place, None)

    @classmethod
    def of(cls, place: str, *colors: str) -> "InputArc":
        return cls(place, frozenset(colors))

    def accepts(self, color: str) -> bool:
        return self.colors is None or color in self.colors


@dataclass(frozen=True)
class OutputArc:
    """Emits one token of ``color`` into ``place``."""

    place: str
    color: str = PLAIN


class ColoredPetriNet:
    """A colored net over the arc dialect above."""

    def __init__(self, name: str = "cpn") -> None:
        self.name = name
        self._places: Set[str] = set()
        self._inputs: Dict[str, List[InputArc]] = {}
        self._outputs: Dict[str, List[OutputArc]] = {}

    def add_place(self, place: str) -> None:
        self._places.add(place)

    def add_transition(self, name: str) -> None:
        if name in self._inputs:
            raise PetriNetError("transition %r already exists" % name)
        self._inputs[name] = []
        self._outputs[name] = []

    def add_input(self, transition: str, arc: InputArc) -> None:
        if arc.place not in self._places:
            raise PetriNetError("unknown place %r" % arc.place)
        self._inputs[transition].append(arc)

    def add_output(self, transition: str, arc: OutputArc) -> None:
        if arc.place not in self._places:
            raise PetriNetError("unknown place %r" % arc.place)
        self._outputs[transition].append(arc)

    @property
    def places(self) -> List[str]:
        return sorted(self._places)

    @property
    def transitions(self) -> List[str]:
        return list(self._inputs)

    # -- semantics ------------------------------------------------------------

    def _pick(self, marking: ColoredMarking, arc: InputArc) -> Optional[str]:
        """A deterministic matching color for one input arc, or ``None``."""
        for color in sorted(marking.colors_at(arc.place)):
            if arc.accepts(color) and marking.count(arc.place, color) > 0:
                return color
        return None

    def is_enabled(self, transition: str, marking: ColoredMarking) -> bool:
        """Greedy per-arc matching.

        Exact for the nets produced by :func:`constraint_set_to_colored_net`
        (no two input arcs of one transition share a place), which is the
        only class this module needs to analyze.
        """
        current = marking
        for arc in self._inputs[transition]:
            color = self._pick(current, arc)
            if color is None:
                return False
            current = current.remove(arc.place, color)
        return True

    def fire(self, transition: str, marking: ColoredMarking) -> ColoredMarking:
        current = marking
        for arc in self._inputs[transition]:
            color = self._pick(current, arc)
            if color is None:
                raise NotEnabledError("transition %r not enabled" % transition)
            current = current.remove(arc.place, color)
        for arc in self._outputs[transition]:
            current = current.add(arc.place, arc.color)
        return current

    def enabled_transitions(self, marking: ColoredMarking) -> List[str]:
        return [t for t in self._inputs if self.is_enabled(t, marking)]


def colored_reachable_markings(
    net: ColoredPetriNet, initial: ColoredMarking, state_limit: int = 100_000
) -> Tuple[Set[ColoredMarking], bool]:
    """All reachable colored markings (breadth-first).

    Returns ``(markings, truncated)``.
    """
    seen: Set[ColoredMarking] = {initial}
    frontier = [initial]
    truncated = False
    while frontier:
        next_frontier: List[ColoredMarking] = []
        for marking in frontier:
            for transition in net.enabled_transitions(marking):
                successor = net.fire(transition, marking)
                if successor not in seen:
                    if len(seen) >= state_limit:
                        return seen, True
                    seen.add(successor)
                    next_frontier.append(successor)
        frontier = next_frontier
    return seen, truncated


def colored_net_completes(
    net: ColoredPetriNet,
    initial: ColoredMarking,
    final_place: str = "o",
    state_limit: int = 100_000,
) -> bool:
    """Does every maximal run end in exactly one token on ``final_place``?

    The colored analogue of proper completion + deadlock freedom.
    """
    markings, truncated = colored_reachable_markings(net, initial, state_limit)
    if truncated:
        return False
    for marking in markings:
        if net.enabled_transitions(marking):
            continue
        if marking.total() != 1 or marking.total_at(final_place) != 1:
            return False
    return True


def constraint_set_to_colored_net(sc) -> Tuple[ColoredPetriNet, ColoredMarking]:
    """Colored translation of a guarded constraint set.

    Construction (per activity ``a``):

    * a guard activity gets one ``exec`` transition per outcome; each emits
      tokens **colored with the outcome** into a dedicated decision place
      ``outcome__g__a`` for every dependent ``a``, plus plain tokens into
      its outgoing constraint places;
    * a guarded activity's ``exec`` consumes its decision token with *its*
      outcome color; its ``skip`` consumes any other color (including
      ``SKIPPED``, emitted when the guard itself was skipped) — and both
      consume/produce the same constraint places, so joins always resolve;
    * unguarded activities are ordinary transitions over plain tokens.

    Supports one direct guard condition per activity, like the black-token
    translation.
    """
    from repro.core.constraints import SynchronizationConstraintSet

    if not isinstance(sc, SynchronizationConstraintSet):
        raise PetriNetError("expected a SynchronizationConstraintSet")
    if not sc.is_activity_set:
        raise PetriNetError("colored translation requires an activity set")

    net = ColoredPetriNet()
    net.add_place("i")
    net.add_place("o")

    incoming: Dict[str, List] = {a: [] for a in sc.activities}
    outgoing: Dict[str, List] = {a: [] for a in sc.activities}
    place_of = {}
    for constraint in sc:
        name = "p__%s__%s__%s" % (
            constraint.source,
            constraint.target,
            constraint.condition or "",
        )
        place_of[constraint] = name
        net.add_place(name)
        incoming[constraint.target].append(constraint)
        outgoing[constraint.source].append(constraint)

    # Decision places: one per (guard, dependent).
    dependents: Dict[str, List[Tuple[str, str]]] = {}
    own_guard: Dict[str, Optional[object]] = {}
    for activity in sc.activities:
        conditions = sc.guard_of(activity)
        if len(conditions) > 1:
            raise PetriNetError(
                "colored translation supports one direct guard per activity"
            )
        condition = next(iter(conditions), None)
        own_guard[activity] = condition
        if condition is not None:
            dependents.setdefault(condition.guard, []).append(
                (activity, condition.value)
            )
            net.add_place("outcome__%s__%s" % (condition.guard, activity))

    guard_names = set(dependents)
    for constraint in sc:
        if constraint.condition is not None:
            guard_names.add(constraint.source)
    unknown = guard_names - set(sc.activities)
    if unknown:
        raise PetriNetError("guards missing from the set: %s" % sorted(unknown))

    roots = [a for a in sc.activities if not incoming[a]]
    leaves = [a for a in sc.activities if not outgoing[a]]
    net.add_transition("t_in")
    net.add_input("t_in", InputArc.of("i", PLAIN))
    for activity in roots:
        net.add_place("init__%s" % activity)
        net.add_output("t_in", OutputArc("init__%s" % activity))
    net.add_transition("t_out")
    net.add_output("t_out", OutputArc("o"))
    for activity in leaves:
        net.add_place("fin__%s" % activity)
        net.add_input("t_out", InputArc.any("fin__%s" % activity))

    def wire_io(transition: str, activity: str) -> None:
        for constraint in incoming[activity]:
            net.add_input(transition, InputArc.any(place_of[constraint]))
        if not incoming[activity]:
            net.add_input(transition, InputArc.any("init__%s" % activity))
        for constraint in outgoing[activity]:
            net.add_output(transition, OutputArc(place_of[constraint], PLAIN))
        if not outgoing[activity]:
            net.add_output(transition, OutputArc("fin__%s" % activity))

    def emit_decisions(transition: str, guard: str, color: str) -> None:
        for dependent, _required in dependents.get(guard, ()):
            net.add_output(
                transition, OutputArc("outcome__%s__%s" % (guard, dependent), color)
            )

    for activity in sc.activities:
        condition = own_guard[activity]
        decision_place = (
            "outcome__%s__%s" % (condition.guard, activity) if condition else None
        )

        if activity in guard_names:
            for outcome in sorted(sc.domains.domain(activity)):
                transition = "exec__%s__%s" % (activity, outcome)
                net.add_transition(transition)
                wire_io(transition, activity)
                emit_decisions(transition, activity, outcome)
                if decision_place:
                    net.add_input(
                        transition, InputArc.of(decision_place, condition.value)
                    )
        else:
            transition = "exec__%s" % activity
            net.add_transition(transition)
            wire_io(transition, activity)
            if decision_place:
                net.add_input(
                    transition, InputArc.of(decision_place, condition.value)
                )

        if condition is not None:
            transition = "skip__%s" % activity
            net.add_transition(transition)
            wire_io(transition, activity)
            wrong_colors = (
                sc.domains.domain(condition.guard) - {condition.value}
            ) | {SKIPPED}
            net.add_input(transition, InputArc(decision_place, frozenset(wrong_colors)))
            if activity in guard_names:
                emit_decisions(transition, activity, SKIPPED)

    return net, ColoredMarking({("i", PLAIN): 1})
