"""Petri-net validation backend (Section 4.1: "The synchronization scheme
described in DSCL can be mapped to Petri Nets for validation").

* :mod:`repro.petri.net` — place/transition nets, markings, firing;
* :mod:`repro.petri.reachability` — reachability graphs, deadlock and
  boundedness analysis;
* :mod:`repro.petri.soundness` — workflow-net structure and behavioral
  soundness (option to complete, proper completion, no dead transitions);
* :mod:`repro.petri.from_constraints` — translation of a synchronization
  constraint set into a workflow net with dead-path-elimination skip
  transitions, so conditional processes complete properly on every branch;
* :mod:`repro.petri.colored` — the Colored Petri Net extension the paper
  invokes for multi-outcome control dependencies: branch outcomes become
  token colors, visible in every intermediate marking.
"""

from repro.petri.colored import (
    ColoredMarking,
    ColoredPetriNet,
    InputArc,
    OutputArc,
    colored_net_completes,
    constraint_set_to_colored_net,
)
from repro.petri.net import Arc, Marking, PetriNet, Place, Transition
from repro.petri.reachability import (
    ReachabilityGraph,
    build_reachability_graph,
    find_deadlocks,
)
from repro.petri.soundness import SoundnessReport, check_soundness, is_workflow_net
from repro.petri.from_constraints import constraint_set_to_petri_net

__all__ = [
    "Arc",
    "ColoredMarking",
    "ColoredPetriNet",
    "InputArc",
    "Marking",
    "OutputArc",
    "colored_net_completes",
    "constraint_set_to_colored_net",
    "PetriNet",
    "Place",
    "ReachabilityGraph",
    "SoundnessReport",
    "Transition",
    "build_reachability_graph",
    "check_soundness",
    "constraint_set_to_petri_net",
    "find_deadlocks",
    "is_workflow_net",
]
