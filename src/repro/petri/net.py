"""Place/transition Petri nets with weighted arcs.

A marking is an immutable multiset of tokens over places.  The net supports
the classic queries (preset/postset, enabledness) and firing; reachability
and soundness analyses live in sibling modules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.errors import NotEnabledError, PetriNetError


@dataclass(frozen=True, order=True)
class Place:
    """A place, identified by name."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, order=True)
class Transition:
    """A transition, identified by name, with an optional label.

    The label ties a transition back to the model element it represents
    (e.g. the activity it executes, or ``skip:<activity>`` for dead-path
    elimination transitions).
    """

    name: str
    label: str = ""

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Arc:
    """A weighted arc between a place and a transition (either direction)."""

    source: str
    target: str
    weight: int = 1

    def __post_init__(self) -> None:
        if self.weight < 1:
            raise PetriNetError("arc weight must be positive")


class Marking:
    """An immutable multiset of tokens over places."""

    __slots__ = ("_tokens", "_hash")

    def __init__(self, tokens: Optional[Mapping[str, int]] = None) -> None:
        cleaned = {
            place: count for place, count in (tokens or {}).items() if count > 0
        }
        for place, count in cleaned.items():
            if count < 0:
                raise PetriNetError("negative token count on %r" % place)
        object.__setattr__(self, "_tokens", dict(sorted(cleaned.items())))
        object.__setattr__(self, "_hash", hash(tuple(self._tokens.items())))

    def __setattr__(self, name: str, value) -> None:  # pragma: no cover
        raise AttributeError("Marking is immutable")

    def count(self, place: str) -> int:
        return self._tokens.get(place, 0)

    def places(self) -> List[str]:
        return list(self._tokens)

    def items(self) -> Iterator[Tuple[str, int]]:
        return iter(self._tokens.items())

    def total(self) -> int:
        return sum(self._tokens.values())

    def add(self, place: str, count: int = 1) -> "Marking":
        tokens = dict(self._tokens)
        tokens[place] = tokens.get(place, 0) + count
        return Marking(tokens)

    def remove(self, place: str, count: int = 1) -> "Marking":
        have = self._tokens.get(place, 0)
        if have < count:
            raise PetriNetError(
                "cannot remove %d token(s) from %r (has %d)" % (count, place, have)
            )
        tokens = dict(self._tokens)
        tokens[place] = have - count
        return Marking(tokens)

    def covers(self, other: "Marking") -> bool:
        """Does this marking have at least as many tokens everywhere?"""
        return all(self.count(place) >= count for place, count in other.items())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Marking):
            return NotImplemented
        return self._tokens == other._tokens

    def __hash__(self) -> int:
        return self._hash

    def __bool__(self) -> bool:
        return bool(self._tokens)

    def __repr__(self) -> str:
        inside = ", ".join(
            "%s%s" % (place, "" if count == 1 else ":%d" % count)
            for place, count in self._tokens.items()
        )
        return "[%s]" % inside


class PetriNet:
    """A P/T net: places, transitions and weighted arcs."""

    def __init__(self, name: str = "net") -> None:
        self.name = name
        self._places: Dict[str, Place] = {}
        self._transitions: Dict[str, Transition] = {}
        # transition -> {place: weight}
        self._inputs: Dict[str, Dict[str, int]] = {}
        self._outputs: Dict[str, Dict[str, int]] = {}

    # -- construction -------------------------------------------------------

    def add_place(self, name: str) -> Place:
        if name in self._transitions:
            raise PetriNetError("%r is already a transition" % name)
        place = self._places.get(name)
        if place is None:
            place = Place(name)
            self._places[name] = place
        return place

    def add_transition(self, name: str, label: str = "") -> Transition:
        if name in self._places:
            raise PetriNetError("%r is already a place" % name)
        transition = self._transitions.get(name)
        if transition is None:
            transition = Transition(name, label)
            self._transitions[name] = transition
            self._inputs[name] = {}
            self._outputs[name] = {}
        return transition

    def add_arc(self, source: str, target: str, weight: int = 1) -> None:
        """Add an arc; endpoints must be one place and one transition."""
        if source in self._places and target in self._transitions:
            self._inputs[target][source] = (
                self._inputs[target].get(source, 0) + weight
            )
        elif source in self._transitions and target in self._places:
            self._outputs[source][target] = (
                self._outputs[source].get(target, 0) + weight
            )
        else:
            raise PetriNetError(
                "arc %r -> %r must connect a place and a transition"
                % (source, target)
            )

    # -- queries -----------------------------------------------------------

    @property
    def places(self) -> List[Place]:
        return list(self._places.values())

    @property
    def transitions(self) -> List[Transition]:
        return list(self._transitions.values())

    def transition(self, name: str) -> Transition:
        try:
            return self._transitions[name]
        except KeyError:
            raise PetriNetError("no transition %r" % name) from None

    def preset(self, transition: str) -> Dict[str, int]:
        """Input places of a transition with arc weights."""
        return dict(self._inputs[transition])

    def postset(self, transition: str) -> Dict[str, int]:
        """Output places of a transition with arc weights."""
        return dict(self._outputs[transition])

    def place_preset(self, place: str) -> List[str]:
        """Transitions producing into ``place``."""
        return [t for t, outs in self._outputs.items() if place in outs]

    def place_postset(self, place: str) -> List[str]:
        """Transitions consuming from ``place``."""
        return [t for t, ins in self._inputs.items() if place in ins]

    # -- semantics ------------------------------------------------------------

    def is_enabled(self, transition: str, marking: Marking) -> bool:
        if transition not in self._transitions:
            raise PetriNetError("no transition %r" % transition)
        return all(
            marking.count(place) >= weight
            for place, weight in self._inputs[transition].items()
        )

    def enabled_transitions(self, marking: Marking) -> List[str]:
        return [
            name for name in self._transitions if self.is_enabled(name, marking)
        ]

    def fire(self, transition: str, marking: Marking) -> Marking:
        """Fire ``transition`` from ``marking``; returns the new marking."""
        if not self.is_enabled(transition, marking):
            raise NotEnabledError(
                "transition %r is not enabled in %r" % (transition, marking)
            )
        tokens = {place: count for place, count in marking.items()}
        for place, weight in self._inputs[transition].items():
            tokens[place] = tokens.get(place, 0) - weight
        for place, weight in self._outputs[transition].items():
            tokens[place] = tokens.get(place, 0) + weight
        return Marking(tokens)

    def fire_sequence(self, transitions: Iterable[str], marking: Marking) -> Marking:
        """Fire a sequence of transitions; raises on the first disabled one."""
        current = marking
        for transition in transitions:
            current = self.fire(transition, current)
        return current

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "PetriNet(%r, %d places, %d transitions)" % (
            self.name,
            len(self._places),
            len(self._transitions),
        )
