"""Cooperation dependencies (Section 3.2).

Cooperation dependencies are business constraints superimposed over the
data/control/service dimensions — "the invoice may only be sent once
production has been notified", "install the middleware before the
application" (Figure 6).  They cannot be inferred from design documents and
are supplied by a process analyst; this module provides a small registry
with provenance so the *source* of each constraint stays first-class, which
is the paper's core argument against sequencing constructs.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.deps.types import Dependency, DependencyKind
from repro.errors import DependencyError
from repro.model.process import BusinessProcess


class CooperationRegistry:
    """Analyst-supplied cooperation dependencies for one process.

    The registry validates endpoints against the process eagerly and keeps
    per-dependency rationales (who required it and why).
    """

    def __init__(self, process: BusinessProcess) -> None:
        self._process = process
        self._dependencies: List[Dependency] = []

    def require_before(
        self, source: str, target: str, rationale: str = "", analyst: str = ""
    ) -> Dependency:
        """Record "``source`` must happen before ``target``"."""
        self._process.activity(source)
        self._process.activity(target)
        note = rationale
        if analyst:
            note = "%s (analyst: %s)" % (rationale or "business requirement", analyst)
        dependency = Dependency(
            DependencyKind.COOPERATION, source, target, rationale=note
        )
        if any(d.key == dependency.key for d in self._dependencies):
            raise DependencyError(
                "cooperation dependency %s -> %s already recorded" % (source, target)
            )
        self._dependencies.append(dependency)
        return dependency

    def require_all_before(
        self, sources: Iterable[str], target: str, rationale: str = ""
    ) -> List[Dependency]:
        """Record one dependency per source, all preceding ``target``.

        This is the shape of the Purchasing requirement that *both*
        ``ShipSubprocess`` and ``ProductionSubprocess`` finish before the
        invoice is returned (six cooperation rows of Table 1).
        """
        return [self.require_before(source, target, rationale) for source in sources]

    @property
    def dependencies(self) -> List[Dependency]:
        return list(self._dependencies)

    def __len__(self) -> int:
        return len(self._dependencies)

    def __iter__(self):
        return iter(self._dependencies)
