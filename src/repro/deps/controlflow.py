"""Extraction of control dependencies (Section 3.1, Figures 3-4).

Two extraction paths are provided:

* :func:`extract_control_dependencies` works on a *declared* process model:
  every branch declaration yields one conditional edge from the guard to
  each member of each case, plus an unconditional ("NONE") edge from the
  guard to the declared join activity — reproducing the ten control rows of
  Table 1 for the Purchasing process.

* :func:`extract_control_dependencies_from_cfg` works on an arbitrary
  control-flow graph using the Ferrante-Ottenstein-Warren post-dominator
  criterion — reproducing Figure 4, where ``a7`` (which post-dominates the
  branch) is *not* control dependent on ``a1`` while ``a2..a6`` are.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.analysis.dominators import control_dependencies as _cfg_control_deps
from repro.analysis.graphs import DirectedGraph
from repro.deps.types import Dependency, DependencyKind
from repro.model.process import BusinessProcess


def extract_control_dependencies(process: BusinessProcess) -> List[Dependency]:
    """Control dependencies from the process's branch declarations."""
    dependencies: List[Dependency] = []
    seen: set = set()
    for branch in process.branches:
        for outcome, members in branch.cases.items():
            for member in members:
                dependency = Dependency(
                    DependencyKind.CONTROL,
                    branch.guard,
                    member,
                    condition=outcome,
                    rationale="%s executes only when %s evaluates to %s"
                    % (member, branch.guard, outcome),
                )
                if dependency.key not in seen:
                    seen.add(dependency.key)
                    dependencies.append(dependency)
        if branch.join is not None:
            dependency = Dependency(
                DependencyKind.CONTROL,
                branch.guard,
                branch.join,
                condition=None,
                rationale="%s is the join of the branch on %s (NONE edge)"
                % (branch.join, branch.guard),
            )
            if dependency.key not in seen:
                seen.add(dependency.key)
                dependencies.append(dependency)
    return dependencies


def extract_control_dependencies_from_cfg(
    cfg: DirectedGraph,
    entry: Hashable,
    exit_node: Hashable,
    branch_labels: Optional[Dict[Tuple[Hashable, Hashable], str]] = None,
    include_join_edges: bool = True,
) -> List[Dependency]:
    """Control dependencies of a control-flow graph.

    Applies the post-dominator criterion; when ``include_join_edges`` is
    true, an additional unconditional edge is added from every branch node
    to its immediate post-dominator (the paper's "NONE" edges, which keep
    join activities ordered after the guard in the synchronization scheme).

    Entry/exit sentinel nodes are skipped in the output.
    """
    from repro.analysis.dominators import postdominators

    sentinels = {entry, exit_node}
    triples = _cfg_control_deps(cfg, entry, exit_node, branch_labels or {})
    dependencies: List[Dependency] = []
    seen: set = set()
    for branch, dependent, label in triples:
        if branch in sentinels or dependent in sentinels:
            continue
        dependency = Dependency(
            DependencyKind.CONTROL,
            str(branch),
            str(dependent),
            condition=label,
            rationale="post-dominator criterion (FOW)",
        )
        if dependency.key not in seen:
            seen.add(dependency.key)
            dependencies.append(dependency)

    if include_join_edges:
        ipostdom = postdominators(cfg, exit_node)
        for node in cfg.nodes():
            if node in sentinels or cfg.out_degree(node) < 2:
                continue
            join = ipostdom.get(node)
            if join is None or join in sentinels or join == node:
                continue
            dependency = Dependency(
                DependencyKind.CONTROL,
                str(node),
                str(join),
                condition=None,
                rationale="%s is the join (immediate post-dominator) of %s"
                % (join, node),
            )
            if dependency.key not in seen:
                seen.add(dependency.key)
                dependencies.append(dependency)
    return dependencies
