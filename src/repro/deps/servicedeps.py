"""Extraction of service dependencies (Section 3.2, Table 1).

Service dependencies describe interactions *between* the process and a
remote service, and *within* a remote service.  They are derived from the
process model:

* every invoke activity precedes the port it calls
  (``invPurchase_po ->s Purchase1``);
* every (dummy) callback port precedes the receive activities listening on
  it (``Purchase_d ->s recPurchase_oi``);
* the service's internal orderings (state-aware sequential ports, request
  ports before the callback port) come from
  :meth:`repro.model.service.Service.internal_orderings`
  (``Purchase1 ->s Purchase2``, ``Purchase1 ->s Purchase_d`` ...).

Alternatively, service-internal orderings can be imported from WSCL
conversation documents (:mod:`repro.wscl`).
"""

from __future__ import annotations

from typing import List

from repro.deps.types import Dependency, DependencyKind
from repro.model.activity import ActivityKind
from repro.model.process import BusinessProcess


def extract_service_dependencies(process: BusinessProcess) -> List[Dependency]:
    """All service dependencies of ``process``, in Table 1's order per service.

    For each service: invocation bindings first, then the callback-delivery
    bindings, then the service-internal port orderings.  Endpoints that are
    ports use the port's display name (``Purchase1``, ``Purchase_d`` ...).
    """
    dependencies: List[Dependency] = []
    seen: set = set()

    def _add(dependency: Dependency) -> None:
        if dependency.key not in seen:
            seen.add(dependency.key)
            dependencies.append(dependency)

    for service in process.services:
        port_names = {port.name for port in service.all_ports}

        # Invocations into the service's request ports.
        for activity in process.activities:
            if activity.kind is not ActivityKind.INVOKE:
                continue
            if activity.port is None or activity.port.service != service.name:
                continue
            _add(
                Dependency(
                    DependencyKind.SERVICE,
                    activity.name,
                    activity.port.port,
                    rationale="%s invokes port %s of service %s"
                    % (activity.name, activity.port.port, service.name),
                )
            )

        # Service-internal orderings (sequential ports, request -> callback).
        for earlier, later in service.internal_orderings():
            _add(
                Dependency(
                    DependencyKind.SERVICE,
                    earlier.port,
                    later.port,
                    rationale="service %s orders port %s before %s"
                    % (service.name, earlier.port, later.port),
                )
            )

        # Callback deliveries to receive activities.
        for activity in process.activities:
            if activity.kind is not ActivityKind.RECEIVE:
                continue
            if activity.port is None or activity.port.service != service.name:
                continue
            if activity.port.port not in port_names:
                continue
            _add(
                Dependency(
                    DependencyKind.SERVICE,
                    activity.port.port,
                    activity.name,
                    rationale="callback of service %s delivers to %s"
                    % (service.name, activity.name),
                )
            )

    return dependencies
