"""Dependency kinds and the :class:`Dependency` record.

A dependency is a directed, optionally conditioned precedence between two
endpoints.  Endpoints are activity names for data/control/cooperation
dependencies; service dependencies may also have service *port* names as
endpoints (``invPurchase_po ->s Purchase1``, ``Purchase1 ->s Purchase2``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import DependencyError


class DependencyKind(enum.Enum):
    """The four dimensions of Section 3, printed with the paper's arrows."""

    DATA = "data"
    CONTROL = "control"
    SERVICE = "service"
    COOPERATION = "cooperation"

    @property
    def arrow(self) -> str:
        return {
            DependencyKind.DATA: "->d",
            DependencyKind.CONTROL: "->c",
            DependencyKind.SERVICE: "->s",
            DependencyKind.COOPERATION: "->o",
        }[self]


@dataclass(frozen=True, order=True)
class Dependency:
    """One dependency: ``source`` precedes ``target``.

    ``condition`` is only meaningful for control dependencies, where it is
    the guard outcome labeling the edge (``"T"``, ``"F"``, a case name) or
    ``None`` for the unconditional "NONE" edge to a branch's join activity
    (Table 1's ``if_au -> replyClient_oi``).

    ``rationale`` is free-text provenance ("why does this dependency
    exist?") — the information the paper argues sequencing constructs
    obfuscate.
    """

    kind: DependencyKind
    source: str
    target: str
    condition: Optional[str] = None
    rationale: str = ""

    def __post_init__(self) -> None:
        if not self.source or not self.target:
            raise DependencyError("dependency endpoints must be non-empty")
        if self.source == self.target:
            raise DependencyError(
                "self-dependency %r -> %r is not allowed" % (self.source, self.target)
            )
        if self.condition is not None and self.kind is not DependencyKind.CONTROL:
            raise DependencyError(
                "only control dependencies may carry a condition, got %s with %r"
                % (self.kind.value, self.condition)
            )

    @property
    def key(self) -> tuple:
        """Identity of the precedence itself, ignoring kind and rationale.

        Two dependencies of different kinds with the same key impose the
        same synchronization constraint — the redundancy the optimization
        of Section 4 removes.
        """
        return (self.source, self.target, self.condition)

    def __str__(self) -> str:
        arrow = self.kind.arrow
        if self.kind is DependencyKind.CONTROL:
            arrow = "->%s" % (self.condition if self.condition is not None else "NONE")
        return "%s %s %s" % (self.source, arrow, self.target)


def data(source: str, target: str, rationale: str = "") -> Dependency:
    """Shorthand constructor for a data dependency."""
    return Dependency(DependencyKind.DATA, source, target, rationale=rationale)


def control(
    source: str, target: str, condition: Optional[str], rationale: str = ""
) -> Dependency:
    """Shorthand constructor for a (possibly unconditional) control dependency."""
    return Dependency(DependencyKind.CONTROL, source, target, condition, rationale)


def service(source: str, target: str, rationale: str = "") -> Dependency:
    """Shorthand constructor for a service dependency."""
    return Dependency(DependencyKind.SERVICE, source, target, rationale=rationale)


def cooperation(source: str, target: str, rationale: str = "") -> Dependency:
    """Shorthand constructor for a cooperation dependency."""
    return Dependency(DependencyKind.COOPERATION, source, target, rationale=rationale)
