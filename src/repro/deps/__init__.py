"""Dependency categorization (Section 3 of the paper).

Four dimensions of synchronization dependencies:

* :data:`~repro.deps.types.DependencyKind.DATA` — definition-use pairs over
  process variables, extracted automatically (:mod:`repro.deps.dataflow`);
* :data:`~repro.deps.types.DependencyKind.CONTROL` — guard-to-activity edges
  labeled with the branch outcome, extracted from branch declarations or a
  control-flow graph (:mod:`repro.deps.controlflow`);
* :data:`~repro.deps.types.DependencyKind.SERVICE` — process-to-port and
  port-to-port constraints derived from service declarations or WSCL
  conversations (:mod:`repro.deps.servicedeps`);
* :data:`~repro.deps.types.DependencyKind.COOPERATION` — analyst-supplied
  business constraints (:mod:`repro.deps.cooperation`).

All four are collected in a :class:`~repro.deps.registry.DependencySet`,
which is the input of the DSCL compiler and the optimization pipeline.
"""

from repro.deps.types import Dependency, DependencyKind
from repro.deps.registry import DependencySet
from repro.deps.dataflow import extract_data_dependencies
from repro.deps.controlflow import (
    extract_control_dependencies,
    extract_control_dependencies_from_cfg,
)
from repro.deps.servicedeps import extract_service_dependencies
from repro.deps.cooperation import CooperationRegistry

__all__ = [
    "CooperationRegistry",
    "Dependency",
    "DependencyKind",
    "DependencySet",
    "extract_control_dependencies",
    "extract_control_dependencies_from_cfg",
    "extract_data_dependencies",
    "extract_service_dependencies",
]
