"""The :class:`DependencySet`: all dependencies of a process, by category.

This is the object printed as Table 1 of the paper and the input to the
merge step of Section 4.2.  It supports category queries, counting,
duplicate detection across categories (e.g. ``recPurchase_oi ->
replyClient_oi`` appearing both as a data and a cooperation dependency),
and validation against a process model.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set, Tuple

from repro.deps.types import Dependency, DependencyKind
from repro.errors import DependencyError
from repro.model.process import BusinessProcess


class DependencySet:
    """An ordered collection of dependencies across all four categories."""

    def __init__(self, dependencies: Iterable[Dependency] = ()) -> None:
        self._dependencies: List[Dependency] = []
        self._index: Set[Tuple[DependencyKind, Tuple]] = set()
        for dependency in dependencies:
            self.add(dependency)

    # -- construction ------------------------------------------------------

    def add(self, dependency: Dependency) -> "DependencySet":
        """Add a dependency; exact duplicates (same kind + key) are ignored."""
        identity = (dependency.kind, dependency.key)
        if identity not in self._index:
            self._index.add(identity)
            self._dependencies.append(dependency)
        return self

    def extend(self, dependencies: Iterable[Dependency]) -> "DependencySet":
        for dependency in dependencies:
            self.add(dependency)
        return self

    def union(self, other: "DependencySet") -> "DependencySet":
        merged = DependencySet(self._dependencies)
        merged.extend(other)
        return merged

    def remove(self, dependency: Dependency) -> None:
        identity = (dependency.kind, dependency.key)
        if identity not in self._index:
            raise DependencyError("dependency %s not in set" % dependency)
        self._index.discard(identity)
        self._dependencies = [
            d for d in self._dependencies if (d.kind, d.key) != identity
        ]

    # -- queries --------------------------------------------------------------

    def by_kind(self, kind: DependencyKind) -> List[Dependency]:
        return [d for d in self._dependencies if d.kind is kind]

    @property
    def data(self) -> List[Dependency]:
        return self.by_kind(DependencyKind.DATA)

    @property
    def control(self) -> List[Dependency]:
        return self.by_kind(DependencyKind.CONTROL)

    @property
    def service(self) -> List[Dependency]:
        return self.by_kind(DependencyKind.SERVICE)

    @property
    def cooperation(self) -> List[Dependency]:
        return self.by_kind(DependencyKind.COOPERATION)

    def counts(self) -> Dict[str, int]:
        """Per-category and total dependency counts (the shape of Table 2's
        "before" column)."""
        result = {kind.value: len(self.by_kind(kind)) for kind in DependencyKind}
        result["total"] = len(self._dependencies)
        return result

    def cross_category_duplicates(self) -> List[Tuple[Dependency, Dependency]]:
        """Pairs of dependencies from different categories imposing the same
        precedence (same source, target, condition).

        These are the within-merge redundancies of Section 4: the merge into
        a constraint set collapses each pair into a single constraint.
        """
        by_key: Dict[Tuple, List[Dependency]] = {}
        for dependency in self._dependencies:
            by_key.setdefault(dependency.key, []).append(dependency)
        duplicates: List[Tuple[Dependency, Dependency]] = []
        for group in by_key.values():
            for i in range(len(group)):
                for j in range(i + 1, len(group)):
                    duplicates.append((group[i], group[j]))
        return duplicates

    def endpoints(self) -> Set[str]:
        """Every endpoint name (activities and ports) mentioned by the set."""
        names: Set[str] = set()
        for dependency in self._dependencies:
            names.add(dependency.source)
            names.add(dependency.target)
        return names

    # -- validation -------------------------------------------------------------

    def validate_against(self, process: BusinessProcess) -> None:
        """Check every endpoint resolves to an activity or service port.

        Raises :class:`DependencyError` describing the first offending
        dependency.
        """
        known = set(process.activity_names) | set(process.port_names())
        for dependency in self._dependencies:
            for endpoint in (dependency.source, dependency.target):
                if endpoint not in known:
                    raise DependencyError(
                        "dependency %s mentions unknown endpoint %r"
                        % (dependency, endpoint)
                    )
            if dependency.kind is not DependencyKind.SERVICE:
                for endpoint in (dependency.source, dependency.target):
                    if not process.has_activity(endpoint):
                        raise DependencyError(
                            "%s dependency %s must connect activities, but %r is a port"
                            % (dependency.kind.value, dependency, endpoint)
                        )

    # -- presentation --------------------------------------------------------------

    def as_table(self) -> str:
        """A textual rendering in the style of Table 1."""
        lines: List[str] = []
        for kind in DependencyKind:
            group = self.by_kind(kind)
            if not group:
                continue
            lines.append("%s {%s}  (%d)" % (kind.value, kind.arrow, len(group)))
            for dependency in group:
                lines.append("    %s" % dependency)
        return "\n".join(lines)

    # -- dunder -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._dependencies)

    def __iter__(self) -> Iterator[Dependency]:
        return iter(self._dependencies)

    def __contains__(self, dependency: Dependency) -> bool:
        return (dependency.kind, dependency.key) in self._index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        counts = self.counts()
        return "DependencySet(%s)" % ", ".join(
            "%s=%d" % (kind.value, counts[kind.value]) for kind in DependencyKind
        )
