"""Automatic extraction of data dependencies (Section 3.1).

Business-process data dependencies are plain definition-use pairs: the
parameter passing to remote services is call-by-value and services cannot
mutate process state, so for every variable each *writer* happens-before
each *reader*.  When a variable has several writers (e.g. ``oi`` in the
Purchasing process, written by both ``recPurchase_oi`` and ``set_oi`` on the
two branches), one dependency per writer-reader pair is produced — exactly
as in Table 1.
"""

from __future__ import annotations

from typing import Dict, List

from repro.deps.types import Dependency, DependencyKind
from repro.model.process import BusinessProcess


def extract_data_dependencies(process: BusinessProcess) -> List[Dependency]:
    """Definition-use data dependencies of ``process``.

    The output order is deterministic: variables in registration order,
    writers before readers in activity registration order.
    """
    dependencies: List[Dependency] = []
    seen: set = set()
    for variable in process.variables:
        writers = process.writers_of(variable.name)
        readers = process.readers_of(variable.name)
        for writer in writers:
            for reader in readers:
                if writer.name == reader.name:
                    continue
                dependency = Dependency(
                    DependencyKind.DATA,
                    writer.name,
                    reader.name,
                    rationale="variable %r flows from %s to %s"
                    % (variable.name, writer.name, reader.name),
                )
                if dependency.key not in seen:
                    seen.add(dependency.key)
                    dependencies.append(dependency)
    return dependencies


def dataflow_summary(process: BusinessProcess) -> Dict[str, Dict[str, List[str]]]:
    """Per-variable writers/readers map, useful for diagnostics."""
    summary: Dict[str, Dict[str, List[str]]] = {}
    for variable in process.variables:
        summary[variable.name] = {
            "writers": [a.name for a in process.writers_of(variable.name)],
            "readers": [a.name for a in process.readers_of(variable.name)],
        }
    return summary
