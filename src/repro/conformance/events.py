"""Event and log model for conformance checking.

An :class:`Event` is one observed lifecycle transition of one activity in
one *case* (process instance): the activity started, finished (optionally
with a guard outcome) or was skipped by dead-path elimination.  An
:class:`EventLog` is a chronological sequence of events, possibly
interleaving many cases — exactly what a process engine's audit trail or
a message broker topic delivers.

Logs read and write three formats:

* **JSON Lines** — one event object per line; the native format, also what
  ``dscweaver simulate --record`` emits and ``dscweaver monitor`` consumes;
* **CSV** — ``case,activity,lifecycle,time,outcome`` with a header row
  (plus a JSON-encoded ``attrs`` column when any event carries extra
  attributes);
* **XES** (import only) — the IEEE standard process-mining interchange
  format; ``lifecycle:transition`` values ``start``/``complete`` map onto
  our ``start``/``finish``.

Events round-trip *unknown* attributes through both native formats: any
key that is not one of the reserved five lands in :attr:`Event.attrs`
(object-centric logs use this for ``object``/``role`` identities), and is
re-emitted on write — JSONL flattens them back into the event object, CSV
carries them in one JSON-encoded column.
"""

from __future__ import annotations

import csv
import io
import json
import xml.etree.ElementTree as ElementTree
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

#: The three observable lifecycle transitions.
START = "start"
FINISH = "finish"
SKIP = "skip"
LIFECYCLES = (START, FINISH, SKIP)

#: Keys with dedicated :class:`Event` fields; everything else is an attr.
RESERVED_KEYS = ("case", "activity", "lifecycle", "time", "outcome")


@dataclass(frozen=True)
class Event:
    """One observed lifecycle transition.

    ``outcome`` is only meaningful on ``finish`` events of guard
    activities; ``time`` is any monotonically non-decreasing clock (the
    simulator's virtual time, a wall-clock epoch, or a plain sequence
    number when the source log has no timestamps).  ``attrs`` holds every
    non-reserved attribute of the source record as a canonically sorted
    ``(key, value)`` tuple — hashable, so events stay usable as dict
    keys — and survives JSONL and CSV round trips.
    """

    case: str
    activity: str
    lifecycle: str
    time: float
    outcome: Optional[str] = None
    attrs: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.lifecycle not in LIFECYCLES:
            raise ValueError(
                "unknown lifecycle %r (expected one of %s)"
                % (self.lifecycle, ", ".join(LIFECYCLES))
            )
        pairs = (
            tuple(self.attrs.items())
            if isinstance(self.attrs, dict)
            else tuple((str(key), value) for key, value in self.attrs)
        )
        for key, _value in pairs:
            if key in RESERVED_KEYS:
                raise ValueError("attr key %r shadows a reserved event field" % key)
        object.__setattr__(self, "attrs", tuple(sorted(pairs)))

    def attr(self, key: str, default: Any = None) -> Any:
        for name, value in self.attrs:
            if name == key:
                return value
        return default

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "case": self.case,
            "activity": self.activity,
            "lifecycle": self.lifecycle,
            "time": self.time,
        }
        if self.outcome is not None:
            payload["outcome"] = self.outcome
        for key, value in self.attrs:
            payload[key] = value
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Event":
        return cls(
            case=str(payload["case"]),
            activity=str(payload["activity"]),
            lifecycle=str(payload["lifecycle"]),
            time=float(payload["time"]),
            outcome=payload.get("outcome"),
            attrs=tuple(
                (str(key), value)
                for key, value in payload.items()
                if key not in RESERVED_KEYS
            ),
        )

    def __str__(self) -> str:
        rendered = "%s %s@%.1f [%s]" % (
            self.lifecycle,
            self.activity,
            self.time,
            self.case,
        )
        if self.outcome is not None:
            rendered += " -> %s" % self.outcome
        return rendered


class EventLog:
    """An ordered multi-case event log."""

    def __init__(self, events: Iterable[Event] = ()) -> None:
        self.events: List[Event] = list(events)

    def append(self, event: Event) -> "EventLog":
        self.events.append(event)
        return self

    def extend(self, events: Iterable[Event]) -> "EventLog":
        self.events.extend(events)
        return self

    def cases(self) -> Dict[str, List[Event]]:
        """``case -> events`` preserving per-case order of appearance."""
        grouped: Dict[str, List[Event]] = {}
        for event in self.events:
            grouped.setdefault(event.case, []).append(event)
        return grouped

    def case_ids(self) -> List[str]:
        return list(self.cases())

    def activities(self) -> List[str]:
        """Every activity mentioned, in first-mention order."""
        seen: Dict[str, None] = {}
        for event in self.events:
            seen.setdefault(event.activity, None)
        return list(seen)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventLog):
            return NotImplemented
        return self.events == other.events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "EventLog(%d events, %d cases)" % (len(self.events), len(self.cases()))

    # -- JSON Lines --------------------------------------------------------

    def to_jsonl(self) -> str:
        lines = [json.dumps(event.to_dict(), sort_keys=True) for event in self.events]
        return "\n".join(lines) + ("\n" if lines else "")

    @classmethod
    def from_jsonl(cls, text: str) -> "EventLog":
        log = cls()
        for number, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError as error:
                raise ValueError("line %d: invalid JSON (%s)" % (number, error))
            try:
                log.append(Event.from_dict(payload))
            except (KeyError, TypeError, ValueError) as error:
                raise ValueError("line %d: invalid event (%s)" % (number, error))
        return log

    def save_jsonl(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())

    @classmethod
    def load_jsonl(cls, path: str) -> "EventLog":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_jsonl(handle.read())

    # -- CSV ---------------------------------------------------------------

    CSV_FIELDS: Tuple[str, ...] = ("case", "activity", "lifecycle", "time", "outcome")
    #: Extra-attribute column, emitted only when some event carries attrs so
    #: attr-free logs stay byte-identical to the historical format.
    CSV_ATTRS_FIELD = "attrs"

    def to_csv(self) -> str:
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        with_attrs = any(event.attrs for event in self.events)
        header = self.CSV_FIELDS + ((self.CSV_ATTRS_FIELD,) if with_attrs else ())
        writer.writerow(header)
        for event in self.events:
            row = [
                event.case,
                event.activity,
                event.lifecycle,
                repr(event.time),
                event.outcome or "",
            ]
            if with_attrs:
                row.append(
                    json.dumps(dict(event.attrs), sort_keys=True, ensure_ascii=False)
                    if event.attrs
                    else ""
                )
            writer.writerow(row)
        return buffer.getvalue()

    @classmethod
    def from_csv(cls, text: str) -> "EventLog":
        reader = csv.DictReader(io.StringIO(text))
        missing = set(cls.CSV_FIELDS[:4]) - set(reader.fieldnames or ())
        if missing:
            raise ValueError("CSV log missing column(s): %s" % ", ".join(sorted(missing)))
        log = cls()
        for number, row in enumerate(reader, start=2):
            raw_attrs = row.get(cls.CSV_ATTRS_FIELD)
            if raw_attrs:
                try:
                    decoded = json.loads(raw_attrs)
                except ValueError as error:
                    raise ValueError("row %d: invalid attrs JSON (%s)" % (number, error))
                if not isinstance(decoded, dict):
                    raise ValueError("row %d: attrs must decode to an object" % number)
                attrs = tuple((str(key), value) for key, value in decoded.items())
            else:
                attrs = ()
            log.append(
                Event(
                    case=row["case"],
                    activity=row["activity"],
                    lifecycle=row["lifecycle"],
                    time=float(row["time"]),
                    outcome=row.get("outcome") or None,
                    attrs=attrs,
                )
            )
        return log

    # -- XES import --------------------------------------------------------

    @classmethod
    def from_xes(cls, text: str) -> "EventLog":
        """Import an XES document (start/complete lifecycle transitions).

        ``concept:name`` supplies case and activity names; events without a
        ``lifecycle:transition`` default to ``complete`` (the common
        single-transition export style, treated as an instantaneous
        start+finish pair).  ``time:timestamp`` is optional — ordinal
        position is used when absent.  An ``outcome`` attribute on a
        completing event is carried onto the finish record (the
        guard-outcome channel dependency mining reads).
        """
        try:
            root = ElementTree.fromstring(text)
        except ElementTree.ParseError as error:
            raise ValueError("invalid XES document: %s" % error)
        log = cls()
        clock = 0.0
        for index, trace in enumerate(_xes_children(root, "trace")):
            case = _xes_attribute(trace, "concept:name") or ("case-%d" % (index + 1))
            for event_element in _xes_children(trace, "event"):
                activity = _xes_attribute(event_element, "concept:name")
                if activity is None:
                    continue
                transition = (
                    _xes_attribute(event_element, "lifecycle:transition") or "complete"
                ).lower()
                timestamp = _xes_timestamp(event_element)
                if timestamp is None:
                    clock += 1.0
                    timestamp = clock
                else:
                    clock = max(clock, timestamp)
                outcome = _xes_attribute(event_element, "outcome")
                if transition == "start":
                    log.append(Event(case, activity, START, timestamp))
                elif transition == "complete":
                    if not any(
                        e.case == case and e.activity == activity and e.lifecycle == START
                        for e in log.events
                    ):
                        log.append(Event(case, activity, START, timestamp))
                    log.append(Event(case, activity, FINISH, timestamp, outcome))
                # other transitions (suspend/resume/abort...) are out of scope
        return log


def _xes_children(element: ElementTree.Element, tag: str) -> List[ElementTree.Element]:
    """Children named ``tag``, namespace-agnostic."""
    return [
        child
        for child in element
        if child.tag == tag or child.tag.endswith("}" + tag)
    ]


def _xes_attribute(element: ElementTree.Element, key: str) -> Optional[str]:
    for child in element:
        if child.get("key") == key:
            return child.get("value")
    return None


def _xes_timestamp(element: ElementTree.Element) -> Optional[float]:
    value = _xes_attribute(element, "time:timestamp")
    if value is None:
        return None
    try:
        return float(value)
    except ValueError:
        pass
    # ISO-8601 wall-clock timestamps.
    from datetime import datetime

    try:
        return datetime.fromisoformat(value.replace("Z", "+00:00")).timestamp()
    except ValueError:
        return None
