"""Online conformance monitoring against synchronization constraint sets.

:func:`compile_monitor` turns an activity-level constraint set (plus the
dynamically-enforced fine-grained state constraints and ``Exclusive``
relations) into a :class:`MonitorProgram` — a per-activity **watcher
index**: every incoming event consults only the constraints incident to
its activity, so the per-event cost is ``O(degree)``, not ``O(|SC|)``.
The unindexed full-scan strategy is kept (``indexed=False``) as the
baseline the conformance benchmark compares against.

:class:`ConformanceMonitor` is the streaming state machine.  Each
obligation moves through an explicit lifecycle:

* **satisfied** — the source's required transition was observed before the
  target's;
* **violated** — the target transitioned first (a ``CONF001``/``CONF002``
  diagnostic);
* **vacuous** — the source was skipped, so dead-path elimination satisfies
  the obligation vacuously;
* **inactive** — a conditional constraint whose guard took the other
  branch;
* **pending** — a conditional obligation whose guard outcome is not yet
  known; resolved retroactively when the guard finishes or skips, and
  reported as *residue* (``CONF007``) if the case ends first.

Violations are emitted as :class:`~repro.lint.diagnostics.Diagnostic`
records with stable ``CONF00x`` codes, so the text/JSON/SARIF renderers
and severity gating of :mod:`repro.lint` apply unchanged.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

if TYPE_CHECKING:
    from repro.obs import Observability

from repro.analysis.conditions import Cond, ConditionDomains
from repro.core.constraints import SynchronizationConstraintSet
from repro.dscl.ast import Exclusive, HappenBefore
from repro.lint.diagnostics import (
    Diagnostic,
    Severity,
    SourceLocation,
    activity_location,
    constraint_location,
)
from repro.model.activity import ActivityState
from repro.conformance.events import FINISH, SKIP, START, Event

# Rule codes (metadata lives in repro.conformance.rules).
ORDER_VIOLATION = "CONF001"
STATE_ORDER_VIOLATION = "CONF002"
EXCLUSIVE_OVERLAP = "CONF003"
LIFECYCLE_VIOLATION = "CONF004"
UNKNOWN_ACTIVITY = "CONF005"
GUARD_VIOLATION = "CONF006"
OBLIGATION_RESIDUE = "CONF007"

#: Category letter for constraints we cannot attribute to a dependency.
UNCATEGORIZED = "u"


class Verdict(enum.Enum):
    """Final state of one obligation in one case."""

    SATISFIED = "satisfied"
    VIOLATED = "violated"
    VACUOUS = "vacuous"
    INACTIVE = "inactive"
    PENDING = "pending"
    UNOBSERVED = "unobserved"


@dataclass(frozen=True)
class WatchedConstraint:
    """One compiled activity-level happen-before ``source -> target``.

    ``category`` is the dependency-dimension letter used by the fitness
    statistics: ``d`` (data), ``T``/``F`` (control branches), ``c``
    (unconditional control), ``s`` (service), ``o`` (cooperation) or ``u``
    when the provenance is unknown.
    """

    source: str
    target: str
    condition: Optional[str] = None
    category: str = UNCATEGORIZED

    @property
    def key(self) -> Tuple[str, str, Optional[str]]:
        return (self.source, self.target, self.condition)

    def location(self) -> SourceLocation:
        return constraint_location(self.source, self.target, self.condition)

    def __str__(self) -> str:
        if self.condition is None:
            return "%s -> %s" % (self.source, self.target)
        return "%s ->%s %s" % (self.source, self.condition, self.target)


@dataclass(frozen=True)
class WatchedFineGrained:
    """A compiled state-level happen-before (e.g. ``S(a) -> F(b)``)."""

    left: str
    left_state: ActivityState
    right: str
    right_state: ActivityState
    condition: Optional[str] = None

    @property
    def left_requires_finish(self) -> bool:
        return self.left_state is ActivityState.FINISH

    @property
    def right_triggers_on_finish(self) -> bool:
        return self.right_state is ActivityState.FINISH

    def location(self) -> SourceLocation:
        return SourceLocation("constraint", str(self))

    def __str__(self) -> str:
        arrow = "->" if self.condition is None else "->[%s]" % self.condition
        return "%s(%s) %s %s(%s)" % (
            self.left_state.value,
            self.left,
            arrow,
            self.right_state.value,
            self.right,
        )


@dataclass(frozen=True)
class WatchedExclusive:
    """A compiled ``Exclusive``: the two run intervals must never overlap."""

    left: str
    right: str

    def partner_of(self, activity: str) -> str:
        return self.right if activity == self.left else self.left

    def location(self) -> SourceLocation:
        return SourceLocation("constraint", "%s O %s" % (self.left, self.right))


def categorize_constraints(
    sc: SynchronizationConstraintSet,
    dependencies=None,
    bridged: Iterable = (),
) -> Dict[Tuple[str, str, Optional[str]], str]:
    """Best-effort ``constraint key -> category letter`` map.

    Exact matches against a :class:`~repro.deps.registry.DependencySet`
    win; constraints introduced by service-dependency translation
    (``bridged``) are ``s``; leftover conditionals are control branches.
    """
    categories: Dict[Tuple[str, str, Optional[str]], str] = {}
    by_key: Dict[Tuple[str, str, Optional[str]], str] = {}
    if dependencies is not None:
        for dependency in dependencies:
            letter = {
                "data": "d",
                "control": "c",
                "service": "s",
                "cooperation": "o",
            }[dependency.kind.value]
            if dependency.kind.value == "control" and dependency.condition:
                letter = dependency.condition
            by_key.setdefault(dependency.key, letter)
    bridged_keys = {
        (c.source, c.target, c.condition) for c in bridged
    }
    for constraint in sc:
        key = (constraint.source, constraint.target, constraint.condition)
        if key in by_key:
            categories[key] = by_key[key]
        elif key in bridged_keys:
            categories[key] = "s"
        elif constraint.condition is not None:
            categories[key] = constraint.condition
        else:
            categories[key] = UNCATEGORIZED
    return categories


@dataclass
class MonitorProgram:
    """A compiled, immutable watcher index over one constraint set."""

    activities: FrozenSet[str]
    constraints: Tuple[WatchedConstraint, ...]
    fine_grained: Tuple[WatchedFineGrained, ...]
    exclusives: Tuple[WatchedExclusive, ...]
    guards: Dict[str, FrozenSet[Cond]]
    domains: ConditionDomains
    #: watcher indexes
    incoming: Dict[str, Tuple[WatchedConstraint, ...]] = field(default_factory=dict)
    fine_on_start: Dict[str, Tuple[WatchedFineGrained, ...]] = field(default_factory=dict)
    fine_on_finish: Dict[str, Tuple[WatchedFineGrained, ...]] = field(default_factory=dict)
    exclusive_index: Dict[str, Tuple[WatchedExclusive, ...]] = field(default_factory=dict)
    guard_dependents: Dict[str, FrozenSet[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        incoming: Dict[str, List[WatchedConstraint]] = {}
        for constraint in self.constraints:
            incoming.setdefault(constraint.target, []).append(constraint)
        self.incoming = {k: tuple(v) for k, v in incoming.items()}

        on_start: Dict[str, List[WatchedFineGrained]] = {}
        on_finish: Dict[str, List[WatchedFineGrained]] = {}
        for fine in self.fine_grained:
            bucket = on_finish if fine.right_triggers_on_finish else on_start
            bucket.setdefault(fine.right, []).append(fine)
        self.fine_on_start = {k: tuple(v) for k, v in on_start.items()}
        self.fine_on_finish = {k: tuple(v) for k, v in on_finish.items()}

        exclusive_index: Dict[str, List[WatchedExclusive]] = {}
        for exclusive in self.exclusives:
            exclusive_index.setdefault(exclusive.left, []).append(exclusive)
            exclusive_index.setdefault(exclusive.right, []).append(exclusive)
        self.exclusive_index = {k: tuple(v) for k, v in exclusive_index.items()}

        dependents: Dict[str, Set[str]] = {}
        for activity, conditions in self.guards.items():
            for condition in conditions:
                dependents.setdefault(condition.guard, set()).add(activity)
        self.guard_dependents = {k: frozenset(v) for k, v in dependents.items()}

    @property
    def size(self) -> int:
        """Total number of monitored obligations."""
        return len(self.constraints) + len(self.fine_grained) + len(self.exclusives)


def compile_monitor(
    sc: SynchronizationConstraintSet,
    fine_grained: Iterable[HappenBefore] = (),
    exclusives: Iterable[Exclusive] = (),
    categories: Optional[Mapping[Tuple[str, str, Optional[str]], str]] = None,
) -> MonitorProgram:
    """Compile an activity constraint set into a :class:`MonitorProgram`."""
    if not sc.is_activity_set:
        raise ValueError(
            "monitor requires an activity constraint set; run service "
            "dependency translation first"
        )
    categories = dict(categories or {})
    watched = tuple(
        WatchedConstraint(
            source=c.source,
            target=c.target,
            condition=c.condition,
            category=categories.get((c.source, c.target, c.condition), UNCATEGORIZED),
        )
        for c in sc
    )
    fine = tuple(
        WatchedFineGrained(
            left=hb.left.activity,
            left_state=hb.left.state,
            right=hb.right.activity,
            right_state=hb.right.state,
            condition=hb.condition,
        )
        for hb in fine_grained
    )
    watched_exclusives = tuple(
        WatchedExclusive(left=x.left.activity, right=x.right.activity)
        for x in exclusives
    )
    return MonitorProgram(
        activities=frozenset(sc.activities),
        constraints=watched,
        fine_grained=fine,
        exclusives=watched_exclusives,
        guards=dict(sc.guards),
        domains=sc.domains,
    )


@dataclass
class _Obligation:
    """A conditional obligation parked until its source/guard resolves."""

    kind: str  # "hb" | "fine" | "guard"
    source: str
    watcher: object  # WatchedConstraint | WatchedFineGrained | Cond
    target: str
    target_time: float


class _CaseState:
    """All monitor state of one case."""

    def __init__(self, case: str) -> None:
        self.case = case
        self.started: Dict[str, float] = {}
        self.finished: Dict[str, float] = {}
        self.skipped: Dict[str, float] = {}
        self.outcomes: Dict[str, str] = {}
        self.running: Set[str] = set()
        self.pending: Dict[str, List[_Obligation]] = {}
        self.verdicts: Dict[Tuple[str, str, Optional[str]], Verdict] = {}
        self.last_time: Optional[float] = None
        self.violations = 0

    def terminal(self, activity: str) -> bool:
        return activity in self.finished or activity in self.skipped

    def pending_count(self) -> int:
        return sum(len(obligations) for obligations in self.pending.values())


class ConformanceMonitor:
    """Streaming conformance checker over a :class:`MonitorProgram`.

    ``feed(event)`` returns the diagnostics *triggered by that event* (for
    online alerting); everything is also accumulated on ``diagnostics``.
    ``end_case``/``finish`` close cases and emit ``CONF007`` residue.

    ``indexed=False`` swaps the watcher index for a full scan of every
    watched constraint on every event — the naive ``O(|SC|)`` baseline.
    ``checks`` counts constraint inspections under either strategy.
    """

    def __init__(
        self,
        program: MonitorProgram,
        indexed: bool = True,
        obs: Optional["Observability"] = None,
    ) -> None:
        self._program = program
        self._indexed = indexed
        self._cases: Dict[str, _CaseState] = {}
        self.checks = 0
        self.events_fed = 0
        self.diagnostics: List[Diagnostic] = []
        self.verdict_counts: Dict[Verdict, int] = {v: 0 for v in Verdict}
        self.violations_by_category: Dict[str, int] = {}
        #: every case ever seen -> count of warning+ diagnostics (violations)
        self.violations_by_case: Dict[str, int] = {}
        self._obs = obs
        self._published = False
        if obs is not None:
            self._m_activated = obs.metrics.counter(
                "repro_conformance_obligations_activated_total",
                "Conditional obligations parked awaiting a guard resolution.",
            )

    # -- lookup helpers (indexed vs full scan) -----------------------------

    def _incoming_for(self, activity: str) -> Tuple[WatchedConstraint, ...]:
        if self._indexed:
            result = self._program.incoming.get(activity, ())
            self.checks += len(result)
            return result
        self.checks += len(self._program.constraints)
        return tuple(c for c in self._program.constraints if c.target == activity)

    def _fine_for(self, activity: str, on_finish: bool) -> Tuple[WatchedFineGrained, ...]:
        if self._indexed:
            index = (
                self._program.fine_on_finish if on_finish else self._program.fine_on_start
            )
            result = index.get(activity, ())
            self.checks += len(result)
            return result
        self.checks += len(self._program.fine_grained)
        return tuple(
            f
            for f in self._program.fine_grained
            if f.right == activity and f.right_triggers_on_finish == on_finish
        )

    def _exclusives_for(self, activity: str) -> Tuple[WatchedExclusive, ...]:
        if self._indexed:
            result = self._program.exclusive_index.get(activity, ())
            self.checks += len(result)
            return result
        self.checks += len(self._program.exclusives)
        return tuple(
            x for x in self._program.exclusives if activity in (x.left, x.right)
        )

    def _take_pending(self, state: _CaseState, source: str) -> List[_Obligation]:
        if self._indexed:
            obligations = state.pending.pop(source, [])
            self.checks += len(obligations)
            return obligations
        self.checks += state.pending_count()
        obligations = state.pending.pop(source, [])
        return obligations

    # -- public API --------------------------------------------------------

    def feed(self, event: Event) -> List[Diagnostic]:
        """Check one event; returns diagnostics it triggered."""
        self.events_fed += 1
        self.violations_by_case.setdefault(event.case, 0)
        state = self._cases.setdefault(event.case, _CaseState(event.case))
        found: List[Diagnostic] = []

        if state.last_time is not None and event.time < state.last_time:
            found.append(
                self._diagnostic(
                    LIFECYCLE_VIOLATION,
                    Severity.ERROR,
                    "time went backwards (%.1f after %.1f)"
                    % (event.time, state.last_time),
                    activity_location(event.activity),
                    state,
                    event,
                )
            )
        state.last_time = max(state.last_time or event.time, event.time)

        if event.activity not in self._program.activities:
            found.append(
                self._diagnostic(
                    UNKNOWN_ACTIVITY,
                    Severity.WARNING,
                    "event names activity %r not in the monitored constraint set"
                    % event.activity,
                    activity_location(event.activity),
                    state,
                    event,
                )
            )
            self._record(found, state)
            return found

        if event.lifecycle == START:
            found.extend(self._on_start(state, event))
        elif event.lifecycle == FINISH:
            found.extend(self._on_finish(state, event))
        elif event.lifecycle == SKIP:
            found.extend(self._on_skip(state, event))
        self._record(found, state)
        return found

    def replay_events(self, events: Iterable[Event]) -> List[Diagnostic]:
        """Feed a batch of events; residue is NOT emitted (call ``finish``)."""
        found: List[Diagnostic] = []
        for event in events:
            found.extend(self.feed(event))
        return found

    def end_case(self, case: str) -> List[Diagnostic]:
        """Close one case: resolve residue and fold verdict statistics."""
        state = self._cases.pop(case, None)
        if state is None:
            return []
        found: List[Diagnostic] = []
        residue: List[str] = []
        for source, obligations in sorted(state.pending.items()):
            for obligation in obligations:
                residue.append(
                    "unresolved: %s awaited by %s (case truncated before %s resolved)"
                    % (obligation.watcher, obligation.target, source)
                )
                self.verdict_counts[Verdict.PENDING] += 1
        for name in sorted(self._program.activities):
            if state.terminal(name):
                continue
            if name in state.started:
                residue.append("activity %s started but never finished" % name)
            else:
                residue.append(
                    "activity %s never observed (expected by the constraint set)"
                    % name
                )
        for constraint in self._program.constraints:
            if constraint.key in state.verdicts:
                continue
            if constraint.target in state.skipped:
                self.verdict_counts[Verdict.VACUOUS] += 1
            else:
                self.verdict_counts[Verdict.UNOBSERVED] += 1
        for verdict in state.verdicts.values():
            self.verdict_counts[verdict] += 1
        if residue:
            found.append(
                self._diagnostic(
                    OBLIGATION_RESIDUE,
                    Severity.INFO,
                    "case ended with %d unresolved obligation(s)" % len(residue),
                    SourceLocation("case", case),
                    state,
                    None,
                    evidence=tuple(residue),
                )
            )
        self.diagnostics.extend(found)
        return found

    def finish(self) -> List[Diagnostic]:
        """Close every open case and publish metrics (if observed)."""
        found: List[Diagnostic] = []
        for case in list(self._cases):
            found.extend(self.end_case(case))
        self.publish_metrics()
        return found

    def publish_metrics(self) -> None:
        """Fold the monitor's counters into the observability registry.

        Called by :meth:`finish`; publishing once keeps the counters
        cumulative-correct (a second call is a no-op).  The obligation
        lifecycle lands as ``repro_conformance_obligations_total`` labeled
        per verdict, diagnostics per ``CONF00x`` code.
        """
        if self._obs is None or self._published:
            return
        self._published = True
        registry = self._obs.metrics
        registry.counter(
            "repro_conformance_events_total", "Events fed to the monitor."
        ).inc(self.events_fed)
        registry.counter(
            "repro_conformance_inspections_total",
            "Constraint inspections while monitoring.",
        ).inc(self.checks)
        registry.counter(
            "repro_conformance_cases_total", "Cases observed by the monitor."
        ).inc(len(self.violations_by_case))
        obligations = registry.counter(
            "repro_conformance_obligations_total",
            "Obligations resolved, by final verdict.",
            ("verdict",),
        )
        for verdict in sorted(self.verdict_counts, key=lambda v: v.value):
            obligations.labels(verdict=verdict.value).inc(self.verdict_counts[verdict])
        diagnostics = registry.counter(
            "repro_conformance_diagnostics_total",
            "Diagnostics emitted, by CONF code.",
            ("code",),
        )
        for diagnostic in self.diagnostics:
            diagnostics.labels(code=diagnostic.code).inc()

    @property
    def open_cases(self) -> List[str]:
        return list(self._cases)

    def case_violations(self, case: str) -> int:
        state = self._cases.get(case)
        return state.violations if state else 0

    # -- event handlers ----------------------------------------------------

    def _on_start(self, state: _CaseState, event: Event) -> List[Diagnostic]:
        found: List[Diagnostic] = []
        name = event.activity
        if name in state.started or name in state.skipped:
            what = "started twice" if name in state.started else "started after being skipped"
            found.append(
                self._diagnostic(
                    LIFECYCLE_VIOLATION,
                    Severity.ERROR,
                    "activity %s %s" % (name, what),
                    activity_location(name),
                    state,
                    event,
                )
            )
            return found
        state.started[name] = event.time
        state.running.add(name)

        # Guard obligations: did a dead path execute? (CONF006)
        self.checks += len(self._program.guards.get(name, ()))
        for condition in sorted(self._program.guards.get(name, ())):
            guard = condition.guard
            if guard in state.skipped:
                found.append(self._guard_violation(state, event, condition, "was skipped"))
            elif guard in state.finished:
                outcome = state.outcomes.get(guard)
                if outcome is not None and outcome != condition.value:
                    found.append(
                        self._guard_violation(
                            state, event, condition, "evaluated to %s" % outcome
                        )
                    )
            else:
                state.pending.setdefault(guard, []).append(
                    _Obligation("guard", guard, condition, name, event.time)
                )
                if self._obs is not None:
                    self._m_activated.inc()

        # Activity-level happen-before constraints into this activity.
        for constraint in self._incoming_for(name):
            found.extend(self._check_incoming(state, event, constraint))

        # Fine-grained constraints gating this activity's start.
        for fine in self._fine_for(name, on_finish=False):
            found.extend(self._check_fine(state, event, fine))

        # Exclusive relations: is the partner currently running?
        for exclusive in self._exclusives_for(name):
            partner = exclusive.partner_of(name)
            if partner in state.running:
                found.append(
                    self._diagnostic(
                        EXCLUSIVE_OVERLAP,
                        Severity.ERROR,
                        "%s started while exclusive partner %s is running"
                        % (name, partner),
                        exclusive.location(),
                        state,
                        event,
                        related=(activity_location(name), activity_location(partner)),
                    )
                )
        return found

    def _on_finish(self, state: _CaseState, event: Event) -> List[Diagnostic]:
        found: List[Diagnostic] = []
        name = event.activity
        if name not in state.started or name in state.finished:
            what = (
                "finished twice" if name in state.finished else "finished without starting"
            )
            found.append(
                self._diagnostic(
                    LIFECYCLE_VIOLATION,
                    Severity.ERROR,
                    "activity %s %s" % (name, what),
                    activity_location(name),
                    state,
                    event,
                )
            )
            if name not in state.started:
                return found
        state.finished[name] = event.time
        state.running.discard(name)
        if event.outcome is not None:
            state.outcomes[name] = event.outcome
            domain = self._program.domains.domain(name)
            if event.outcome not in domain:
                found.append(
                    self._diagnostic(
                        GUARD_VIOLATION,
                        Severity.ERROR,
                        "guard %s produced outcome %r outside its domain {%s}"
                        % (name, event.outcome, ", ".join(sorted(domain))),
                        activity_location(name),
                        state,
                        event,
                    )
                )

        # Fine-grained constraints gating this activity's finish.
        for fine in self._fine_for(name, on_finish=True):
            found.extend(self._check_fine(state, event, fine))

        found.extend(self._resolve_pending(state, event, skipped=False))
        return found

    def _on_skip(self, state: _CaseState, event: Event) -> List[Diagnostic]:
        found: List[Diagnostic] = []
        name = event.activity
        if name in state.started or name in state.skipped:
            what = (
                "skipped after starting" if name in state.started else "skipped twice"
            )
            found.append(
                self._diagnostic(
                    LIFECYCLE_VIOLATION,
                    Severity.ERROR,
                    "activity %s %s" % (name, what),
                    activity_location(name),
                    state,
                    event,
                )
            )
            return found
        state.skipped[name] = event.time
        found.extend(self._resolve_pending(state, event, skipped=True))
        return found

    # -- obligation evaluation ---------------------------------------------

    def _check_incoming(
        self, state: _CaseState, event: Event, constraint: WatchedConstraint
    ) -> List[Diagnostic]:
        source = constraint.source
        if source in state.finished:
            outcome = state.outcomes.get(source)
            if constraint.condition is not None and outcome != constraint.condition:
                state.verdicts[constraint.key] = Verdict.INACTIVE
            else:
                state.verdicts[constraint.key] = Verdict.SATISFIED
            return []
        if source in state.skipped:
            state.verdicts[constraint.key] = Verdict.VACUOUS
            return []
        if constraint.condition is not None:
            # Guard outcome unknown: park the obligation until the source
            # finishes (violation if the branch turns out active) or skips.
            state.pending.setdefault(source, []).append(
                _Obligation("hb", source, constraint, event.activity, event.time)
            )
            if self._obs is not None:
                self._m_activated.inc()
            return []
        state.verdicts[constraint.key] = Verdict.VIOLATED
        return [self._order_violation(state, event, constraint)]

    def _check_fine(
        self, state: _CaseState, event: Event, fine: WatchedFineGrained
    ) -> List[Diagnostic]:
        left = fine.left
        reached = (
            left in state.finished
            if fine.left_requires_finish
            else left in state.started
        )
        if reached:
            return []
        if left in state.skipped:
            return []  # vacuous under dead-path elimination
        if fine.condition is not None and left not in state.finished:
            state.pending.setdefault(left, []).append(
                _Obligation("fine", left, fine, event.activity, event.time)
            )
            if self._obs is not None:
                self._m_activated.inc()
            return []
        return [self._state_order_violation(state, event, fine)]

    def _resolve_pending(
        self, state: _CaseState, event: Event, skipped: bool
    ) -> List[Diagnostic]:
        found: List[Diagnostic] = []
        name = event.activity
        outcome = state.outcomes.get(name)
        for obligation in self._take_pending(state, name):
            if obligation.kind == "guard":
                condition = obligation.watcher
                if skipped or (outcome is not None and outcome != condition.value):
                    reason = "was skipped" if skipped else "evaluated to %s" % outcome
                    found.append(
                        self._guard_violation(
                            state, event, condition, reason, dependent=obligation.target
                        )
                    )
                continue
            if obligation.kind == "hb":
                constraint = obligation.watcher
                if skipped:
                    state.verdicts[constraint.key] = Verdict.VACUOUS
                elif outcome is None or outcome == constraint.condition:
                    # The branch is active (or undeterminable and the source
                    # did finish after the target started): order violated.
                    state.verdicts[constraint.key] = Verdict.VIOLATED
                    found.append(
                        self._order_violation(
                            state, event, constraint, target_time=obligation.target_time
                        )
                    )
                else:
                    state.verdicts[constraint.key] = Verdict.INACTIVE
                continue
            # fine-grained
            fine = obligation.watcher
            if skipped:
                continue
            if outcome is None or outcome == fine.condition:
                found.append(
                    self._state_order_violation(
                        state, event, fine, target_time=obligation.target_time
                    )
                )
        return found

    # -- diagnostic builders -----------------------------------------------

    def _diagnostic(
        self,
        code: str,
        severity: Severity,
        message: str,
        location: SourceLocation,
        state: _CaseState,
        event: Optional[Event],
        related: Tuple[SourceLocation, ...] = (),
        evidence: Tuple[str, ...] = (),
    ) -> Diagnostic:
        details = list(evidence)
        details.append("case: %s" % state.case)
        if event is not None:
            details.append("event: %s %s at t=%.1f" % (event.lifecycle, event.activity, event.time))
        return Diagnostic(
            code=code,
            severity=severity,
            message="[%s] %s" % (state.case, message),
            location=location,
            related=related,
            evidence=tuple(details),
        )

    def _order_violation(
        self,
        state: _CaseState,
        event: Event,
        constraint: WatchedConstraint,
        target_time: Optional[float] = None,
    ) -> Diagnostic:
        started = target_time if target_time is not None else event.time
        self.violations_by_category[constraint.category] = (
            self.violations_by_category.get(constraint.category, 0) + 1
        )
        return self._diagnostic(
            ORDER_VIOLATION,
            Severity.ERROR,
            "%s started at t=%.1f before %s finished (violates %s)"
            % (constraint.target, started, constraint.source, constraint),
            constraint.location(),
            state,
            event,
            related=(
                activity_location(constraint.source),
                activity_location(constraint.target),
            ),
            evidence=("category: %s" % constraint.category,),
        )

    def _state_order_violation(
        self,
        state: _CaseState,
        event: Event,
        fine: WatchedFineGrained,
        target_time: Optional[float] = None,
    ) -> Diagnostic:
        reached = target_time if target_time is not None else event.time
        return self._diagnostic(
            STATE_ORDER_VIOLATION,
            Severity.ERROR,
            "%s(%s) reached at t=%.1f before %s(%s) (violates %s)"
            % (
                fine.right_state.value,
                fine.right,
                reached,
                fine.left_state.value,
                fine.left,
                fine,
            ),
            fine.location(),
            state,
            event,
            related=(activity_location(fine.left), activity_location(fine.right)),
        )

    def _guard_violation(
        self,
        state: _CaseState,
        event: Event,
        condition: Cond,
        reason: str,
        dependent: Optional[str] = None,
    ) -> Diagnostic:
        activity = dependent if dependent is not None else event.activity
        return self._diagnostic(
            GUARD_VIOLATION,
            Severity.ERROR,
            "%s executed although its guard %s %s (requires %s = %s)"
            % (activity, condition.guard, reason, condition.guard, condition.value),
            activity_location(activity),
            state,
            event,
            related=(activity_location(condition.guard),),
        )

    def _record(self, found: List[Diagnostic], state: _CaseState) -> None:
        self.diagnostics.extend(found)
        gating = sum(1 for d in found if d.severity.at_least(Severity.WARNING))
        state.violations += gating
        self.violations_by_case[state.case] = (
            self.violations_by_case.get(state.case, 0) + gating
        )
