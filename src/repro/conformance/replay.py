"""Batch replay of event logs and aggregate fitness reporting.

:func:`replay` drives a :class:`~repro.conformance.monitor.ConformanceMonitor`
over a whole :class:`~repro.conformance.events.EventLog` and aggregates the
result into a :class:`ReplayReport`: per-case verdicts, violation counts by
``CONF00x`` code and by dependency category (``d``/``T``/``F``/``s``/``o``),
obligation verdict totals, and the monitoring cost (constraint
inspections) — the empirical counterpart of the paper's claim that the
minimal set monitors at lower cost with identical outcomes.

:meth:`ReplayReport.to_lint_report` folds the findings into the
:mod:`repro.lint` reporting stack, so text/JSON/SARIF rendering and
severity gating (``exit_code``) come for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.conformance.events import EventLog
from repro.conformance.monitor import (
    ConformanceMonitor,
    MonitorProgram,
    Verdict,
)
from repro.lint.diagnostics import Diagnostic, LintReport, Severity

#: The conformance rule codes, in reporting order.
CONF_CODES = tuple("CONF%03d" % n for n in range(1, 8))


@dataclass
class ReplayReport:
    """Everything observed while replaying one log against one program."""

    cases: int
    events: int
    checks: int
    program_size: int
    diagnostics: Tuple[Diagnostic, ...]
    violations_by_case: Dict[str, int]
    violations_by_category: Dict[str, int]
    verdict_counts: Dict[Verdict, int] = field(default_factory=dict)

    @property
    def violations(self) -> Tuple[Diagnostic, ...]:
        """Diagnostics at warning or above (residue is informational)."""
        return tuple(
            d for d in self.diagnostics if d.severity.at_least(Severity.WARNING)
        )

    @property
    def clean(self) -> bool:
        return not self.violations

    @property
    def violated_cases(self) -> Tuple[str, ...]:
        return tuple(
            sorted(case for case, count in self.violations_by_case.items() if count)
        )

    def case_verdicts(self) -> Dict[str, bool]:
        """``case -> conformant?`` for every case in the log."""
        return {
            case: count == 0 for case, count in self.violations_by_case.items()
        }

    @property
    def fitness(self) -> float:
        """Fraction of cases that replayed violation-free (1.0 = perfect)."""
        if not self.violations_by_case:
            return 1.0
        clean = sum(1 for count in self.violations_by_case.values() if count == 0)
        return clean / len(self.violations_by_case)

    @property
    def checks_per_event(self) -> float:
        return self.checks / self.events if self.events else 0.0

    def counts_by_code(self) -> Dict[str, int]:
        counts = {code: 0 for code in CONF_CODES}
        for diagnostic in self.diagnostics:
            counts[diagnostic.code] = counts.get(diagnostic.code, 0) + 1
        return counts

    @property
    def residue(self) -> int:
        """Obligations left pending by truncated cases."""
        return self.verdict_counts.get(Verdict.PENDING, 0)

    def to_lint_report(self) -> LintReport:
        """The findings as a :class:`~repro.lint.diagnostics.LintReport`."""
        import repro.conformance.rules  # noqa: F401  (registers CONF rules)

        return LintReport.from_diagnostics(
            list(self.diagnostics), rules_run=CONF_CODES
        )

    def exit_code(self, fail_on: Severity = Severity.WARNING) -> int:
        """0 when no finding gates at ``fail_on``, 1 otherwise."""
        return self.to_lint_report().exit_code(fail_on)

    def summary(self) -> str:
        """Multi-line fitness summary (the text the CLI prints)."""
        lines = [
            "cases checked: %d (%d conformant, %d violated)"
            % (
                self.cases,
                sum(1 for ok in self.case_verdicts().values() if ok),
                len(self.violated_cases),
            ),
            "events: %d | monitored constraints: %d | checks: %d (%.2f per event)"
            % (self.events, self.program_size, self.checks, self.checks_per_event),
            "fitness: %.3f" % self.fitness,
        ]
        code_counts = {
            code: count for code, count in self.counts_by_code().items() if count
        }
        if code_counts:
            lines.append(
                "violations by code: "
                + ", ".join("%s=%d" % item for item in sorted(code_counts.items()))
            )
        if self.violations_by_category:
            lines.append(
                "order violations by category: "
                + ", ".join(
                    "%s=%d" % item
                    for item in sorted(self.violations_by_category.items())
                )
            )
        if self.verdict_counts:
            lines.append(
                "obligations: "
                + ", ".join(
                    "%s=%d" % (verdict.value, count)
                    for verdict, count in sorted(
                        self.verdict_counts.items(), key=lambda kv: kv[0].value
                    )
                    if count
                )
            )
        if self.residue:
            lines.append("obligation residue on truncated traces: %d" % self.residue)
        return "\n".join(lines)


def replay(
    log: EventLog,
    program: MonitorProgram,
    indexed: bool = True,
    obs=None,
) -> ReplayReport:
    """Replay ``log`` against ``program`` and aggregate the outcome.

    ``obs`` (an :class:`~repro.obs.Observability`) wraps the replay in a
    ``conformance.replay`` span and publishes the monitor's counters.
    """
    monitor = ConformanceMonitor(program, indexed=indexed, obs=obs)
    if obs is not None:
        with obs.tracer.span(
            "conformance.replay", events=len(log), constraints=program.size
        ):
            for event in log:
                monitor.feed(event)
            monitor.finish()
    else:
        for event in log:
            monitor.feed(event)
        monitor.finish()
    return ReplayReport(
        cases=len(monitor.violations_by_case),
        events=monitor.events_fed,
        checks=monitor.checks,
        program_size=program.size,
        diagnostics=tuple(monitor.diagnostics),
        violations_by_case=dict(monitor.violations_by_case),
        violations_by_category=dict(monitor.violations_by_category),
        verdict_counts=dict(monitor.verdict_counts),
    )


# The historical home of the monitor-compiling ``program_from_weave``; the
# canonical implementation (shared with repro.runtime) lives in
# :mod:`repro.programs` and defaults to ``target="monitor"``.
from repro.programs import program_from_weave  # noqa: E402,F401


def verdicts_agree(first: ReplayReport, second: ReplayReport) -> bool:
    """Did two replays of the same log reach identical per-case verdicts?

    This is the monitoring-level equivalence check for minimization: the
    individual diagnostics may differ (a violation of a redundant
    constraint surfaces through a different edge of the covering path in
    the minimal set) but every case must get the same clean/violated
    verdict.
    """
    return first.case_verdicts() == second.case_verdicts()
