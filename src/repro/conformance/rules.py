"""CONF00x rule metadata, registered with the :mod:`repro.lint` engine.

Conformance findings are produced by the *runtime* monitor, not by a
static check — but registering the codes here gives them the same
first-class treatment as the static rules: they appear in the SARIF
``tool.driver.rules`` table, honor ``--select``/``--ignore`` prefixes
(``CONF`` selects the group), and can surface through :func:`run_lint`
when a :class:`~repro.conformance.replay.ReplayReport` is attached to the
lint context (``context.replay = report``).
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.engine import LintContext, rule


def _replayed(context: LintContext, code: str) -> Iterable[Diagnostic]:
    report = getattr(context, "replay", None)
    if report is None:
        return ()
    return tuple(d for d in report.diagnostics if d.code == code)


@rule(
    "CONF001",
    "order-violation",
    "an activity started before a happen-before source finished",
    Severity.ERROR,
)
def check_order_violations(context: LintContext) -> Iterable[Diagnostic]:
    return _replayed(context, "CONF001")


@rule(
    "CONF002",
    "state-order-violation",
    "a fine-grained state-level happen-before was violated",
    Severity.ERROR,
)
def check_state_order_violations(context: LintContext) -> Iterable[Diagnostic]:
    return _replayed(context, "CONF002")


@rule(
    "CONF003",
    "exclusive-overlap",
    "two Exclusive activities ran concurrently",
    Severity.ERROR,
)
def check_exclusive_overlaps(context: LintContext) -> Iterable[Diagnostic]:
    return _replayed(context, "CONF003")


@rule(
    "CONF004",
    "lifecycle-violation",
    "an event broke the start/finish/skip lifecycle of its activity",
    Severity.ERROR,
)
def check_lifecycle_violations(context: LintContext) -> Iterable[Diagnostic]:
    return _replayed(context, "CONF004")


@rule(
    "CONF005",
    "unknown-activity",
    "an event names an activity outside the monitored constraint set",
    Severity.WARNING,
)
def check_unknown_activities(context: LintContext) -> Iterable[Diagnostic]:
    return _replayed(context, "CONF005")


@rule(
    "CONF006",
    "guard-violation",
    "an activity executed although its execution guard disabled it",
    Severity.ERROR,
)
def check_guard_violations(context: LintContext) -> Iterable[Diagnostic]:
    return _replayed(context, "CONF006")


@rule(
    "CONF007",
    "obligation-residue",
    "a case ended with unresolved (pending) obligations",
    Severity.INFO,
)
def check_obligation_residue(context: LintContext) -> Iterable[Diagnostic]:
    return _replayed(context, "CONF007")
