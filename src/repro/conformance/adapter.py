"""Adapters from scheduler output to conformance event logs.

The discrete-event engine (:mod:`repro.scheduler.engine`) notes every
start/finish/skip in :attr:`ExecutionTrace.log` in *exact causal order* —
including the ordering of transitions that share a timestamp (finishes are
processed before the starts they enable).  The adapter preserves that
order, so a log generated from a legal run always replays violation-free;
sorting by timestamp alone would fabricate ties and false positives.

:func:`events_from_trace` works from either a live
:class:`~repro.scheduler.events.ExecutionTrace` or one rehydrated via
:meth:`ExecutionTrace.from_jsonl` — the JSONL round-trip is the backbone
of log persistence.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Tuple

from repro.conformance.events import FINISH, SKIP, START, Event, EventLog
from repro.scheduler.events import ExecutionTrace


def events_from_trace(trace: ExecutionTrace, case: str) -> List[Event]:
    """Convert one execution trace into per-case events.

    Prefers the engine's chronological note log (exact causal order); falls
    back to reconstructing order from the activity records when a trace has
    no notes (e.g. hand-built in tests), breaking timestamp ties
    finish-before-start as the engine would.
    """
    events = _events_from_notes(trace, case)
    if events is not None:
        return events
    return _events_from_records(trace, case)


def _events_from_notes(trace: ExecutionTrace, case: str) -> Optional[List[Event]]:
    if not trace.log:
        return None
    events: List[Event] = []
    for time, message in trace.log:
        parts = message.split()
        if not parts:
            continue
        verb = parts[0]
        if verb not in ("start", "finish", "skip") or len(parts) < 2:
            continue  # callbacks and free-form notes are not activity events
        activity = parts[1]
        outcome = None
        if verb == "finish" and len(parts) >= 4 and parts[2] == "->":
            outcome = parts[3]
        lifecycle = {"start": START, "finish": FINISH, "skip": SKIP}[verb]
        events.append(Event(case, activity, lifecycle, time, outcome=outcome))
    return events or None


def _events_from_records(trace: ExecutionTrace, case: str) -> List[Event]:
    #: (time, phase, sequence): finishes sort before skips before starts at
    #: the same instant, except an activity's own start precedes its finish.
    keyed: List[Tuple[float, int, int, Event]] = []
    for sequence, record in enumerate(trace.records.values()):
        if record.skipped_at is not None:
            keyed.append(
                (record.skipped_at, 1, sequence, Event(case, record.name, SKIP, record.skipped_at))
            )
            continue
        if record.start is not None:
            start_phase = 2
            if record.finish is not None and record.finish == record.start:
                start_phase = 0  # zero-duration: keep start before its own finish
            keyed.append(
                (record.start, start_phase, sequence, Event(case, record.name, START, record.start))
            )
        if record.finish is not None:
            keyed.append(
                (
                    record.finish,
                    0 if record.finish != record.start else 1,
                    sequence,
                    Event(case, record.name, FINISH, record.finish, outcome=record.outcome),
                )
            )
    keyed.sort(key=lambda item: (item[0], item[1], item[2]))
    return [event for _time, _phase, _sequence, event in keyed]


def log_from_traces(traces: Mapping[str, ExecutionTrace]) -> EventLog:
    """Merge ``case -> trace`` into one multi-case log (cases concatenated)."""
    log = EventLog()
    for case, trace in traces.items():
        log.extend(events_from_trace(trace, case))
    return log


def log_from_results(results: Iterable, prefix: str = "case") -> EventLog:
    """Build a log from :class:`~repro.scheduler.engine.ExecutionResult`
    objects, numbering cases ``<prefix>-1``, ``<prefix>-2`` ..."""
    log = EventLog()
    for index, result in enumerate(results, start=1):
        log.extend(events_from_trace(result.trace, "%s-%d" % (prefix, index)))
    return log


def log_from_jsonl_trace(text: str, case: str) -> EventLog:
    """Rehydrate a serialized :class:`ExecutionTrace` and adapt it."""
    return EventLog(events_from_trace(ExecutionTrace.from_jsonl(text), case))
