"""Streaming event-log replay and online conformance monitoring.

The optimization story of the paper ends where execution begins: this
package checks *recorded or live streams* of activity events against a
woven (or minimized) synchronization constraint set.

* :mod:`repro.conformance.events` — the event/log model with JSONL, CSV
  and XES I/O;
* :mod:`repro.conformance.adapter` — scheduler traces to replayable logs;
* :mod:`repro.conformance.monitor` — the compiled per-activity watcher
  index and the streaming :class:`ConformanceMonitor` (``feed(event)``);
* :mod:`repro.conformance.replay` — batch replay with aggregate fitness
  statistics, rendered through the :mod:`repro.lint` stack;
* :mod:`repro.conformance.perturb` — known-violation corpora for tests
  and benchmarks.

Typical use::

    from repro.conformance import EventLog, program_from_weave, replay

    program = program_from_weave(weave_result, which="minimal")
    report = replay(EventLog.load_jsonl("audit.jsonl"), program)
    print(report.summary())
    exit(report.exit_code())
"""

from repro.conformance import rules  # noqa: F401  (registers CONF00x rules)
from repro.conformance.adapter import (
    events_from_trace,
    log_from_jsonl_trace,
    log_from_results,
    log_from_traces,
)
from repro.conformance.events import (
    FINISH,
    LIFECYCLES,
    SKIP,
    START,
    Event,
    EventLog,
)
from repro.conformance.monitor import (
    ConformanceMonitor,
    MonitorProgram,
    Verdict,
    WatchedConstraint,
    WatchedExclusive,
    WatchedFineGrained,
    categorize_constraints,
    compile_monitor,
)
from repro.conformance.perturb import (
    EXPECTED_CODES,
    PERTURBATION_KINDS,
    Perturbation,
    PerturbationError,
    perturb,
    perturbation_corpus,
)
from repro.conformance.replay import (
    CONF_CODES,
    ReplayReport,
    program_from_weave,
    replay,
    verdicts_agree,
)

__all__ = [
    "CONF_CODES",
    "ConformanceMonitor",
    "EXPECTED_CODES",
    "Event",
    "EventLog",
    "FINISH",
    "LIFECYCLES",
    "MonitorProgram",
    "PERTURBATION_KINDS",
    "Perturbation",
    "PerturbationError",
    "ReplayReport",
    "SKIP",
    "START",
    "Verdict",
    "WatchedConstraint",
    "WatchedExclusive",
    "WatchedFineGrained",
    "categorize_constraints",
    "compile_monitor",
    "events_from_trace",
    "log_from_jsonl_trace",
    "log_from_results",
    "log_from_traces",
    "perturb",
    "perturbation_corpus",
    "program_from_weave",
    "replay",
    "verdicts_agree",
]
