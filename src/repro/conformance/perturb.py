"""Synthetic log perturbations: known-violation corpora for testing.

Each perturbation kind injects one specific defect into an otherwise clean
event log and declares the ``CONF00x`` diagnostic it must trigger — the
ground truth the conformance tests and benchmarks check the monitor
against:

================  ===========================================  =========
kind              defect injected                              expected
================  ===========================================  =========
``swap``          target's start moved before source's finish  CONF001
``drop_finish``   a constraint source's finish event removed   CONF001
``duplicate``     a start event duplicated                     CONF004
``orphan_finish`` a start event removed (finish kept)          CONF004
``alien``         events of an unknown activity inserted       CONF005
``dead_branch``   a skipped activity executed anyway           CONF006
``truncate``      the tail of a case cut off                   CONF007
================  ===========================================  =========

Generation is deterministic given the seed.  ``truncate`` is the only
*benign* perturbation: a prefix of a clean stream stays order-conformant,
so it must yield only informational residue, not a violated verdict.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.conditions import Cond
from repro.conformance.events import FINISH, SKIP, START, Event, EventLog

PERTURBATION_KINDS = (
    "swap",
    "drop_finish",
    "duplicate",
    "orphan_finish",
    "alien",
    "dead_branch",
    "truncate",
)

#: kind -> the diagnostic code the monitor must emit for it.
EXPECTED_CODES: Dict[str, str] = {
    "swap": "CONF001",
    "drop_finish": "CONF001",
    "duplicate": "CONF004",
    "orphan_finish": "CONF004",
    "alien": "CONF005",
    "dead_branch": "CONF006",
    "truncate": "CONF007",
}


@dataclass(frozen=True)
class Perturbation:
    """What was injected where, and what the monitor must say about it."""

    kind: str
    case: str
    description: str
    expected_code: str


class PerturbationError(ValueError):
    """The log offers no injection site for the requested kind."""


ConstraintKey = Tuple[str, str, Optional[str]]


def _constraint_keys(constraints: Iterable) -> List[ConstraintKey]:
    keys: List[ConstraintKey] = []
    for constraint in constraints:
        keys.append(
            (constraint.source, constraint.target, getattr(constraint, "condition", None))
        )
    return keys


def _active_sites(
    events: Sequence[Event], constraints: Iterable, unconditional_only: bool = False
) -> List[Tuple[ConstraintKey, int, int]]:
    """``(constraint, finish index, start index)`` for constraints that are
    *active* in the log: source finished (on the required branch) before the
    target started within the same case."""
    sites: List[Tuple[ConstraintKey, int, int]] = []
    position: Dict[Tuple[str, str, str], int] = {}
    outcomes: Dict[Tuple[str, str], Optional[str]] = {}
    for index, event in enumerate(events):
        position.setdefault((event.case, event.activity, event.lifecycle), index)
        if event.lifecycle == FINISH:
            outcomes[(event.case, event.activity)] = event.outcome
    cases = {event.case for event in events}
    for key in _constraint_keys(constraints):
        source, target, condition = key
        if unconditional_only and condition is not None:
            continue
        for case in cases:
            finish_at = position.get((case, source, FINISH))
            start_at = position.get((case, target, START))
            if finish_at is None or start_at is None or finish_at >= start_at:
                continue
            if condition is not None and outcomes.get((case, source)) != condition:
                continue
            sites.append((key, finish_at, start_at))
    sites.sort(key=lambda site: (site[0], site[1]))
    return sites


def perturb(
    log: EventLog,
    kind: str,
    constraints: Iterable = (),
    guards: Optional[Mapping[str, FrozenSet[Cond]]] = None,
    seed: int = 0,
) -> Tuple[EventLog, Perturbation]:
    """Inject one ``kind`` defect into a copy of ``log``.

    ``constraints`` (any objects with ``source``/``target``/``condition``)
    are needed by ``swap`` and ``drop_finish`` to pick an ordering that is
    actually monitored; ``guards`` is needed by ``dead_branch`` to find a
    skipped activity whose execution would break its guard.
    """
    rng = random.Random(seed)
    events = list(log.events)
    if kind == "swap":
        sites = _active_sites(events, constraints)
        if not sites:
            raise PerturbationError("no active constraint to swap in this log")
        (source, target, condition), finish_at, start_at = sites[
            rng.randrange(len(sites))
        ]
        moved = events.pop(start_at)
        moved = Event(
            moved.case, moved.activity, moved.lifecycle, events[finish_at].time
        )
        events.insert(finish_at, moved)
        perturbation = Perturbation(
            kind,
            moved.case,
            "moved start of %s before finish of %s (breaks %s -> %s)"
            % (target, source, source, target),
            EXPECTED_CODES[kind],
        )
    elif kind == "drop_finish":
        sites = _active_sites(events, constraints, unconditional_only=True)
        if not sites:
            raise PerturbationError("no unconditional constraint active in this log")
        (source, target, _condition), finish_at, _start_at = sites[
            rng.randrange(len(sites))
        ]
        dropped = events.pop(finish_at)
        perturbation = Perturbation(
            kind,
            dropped.case,
            "dropped finish of %s (leaves %s -> %s unsatisfied)"
            % (source, source, target),
            EXPECTED_CODES[kind],
        )
    elif kind == "duplicate":
        starts = [i for i, e in enumerate(events) if e.lifecycle == START]
        if not starts:
            raise PerturbationError("log has no start event to duplicate")
        index = starts[rng.randrange(len(starts))]
        events.insert(index + 1, events[index])
        perturbation = Perturbation(
            kind,
            events[index].case,
            "duplicated start of %s" % events[index].activity,
            EXPECTED_CODES[kind],
        )
    elif kind == "orphan_finish":
        candidates = [
            i
            for i, e in enumerate(events)
            if e.lifecycle == START
            and any(
                o.case == e.case and o.activity == e.activity and o.lifecycle == FINISH
                for o in events
            )
        ]
        if not candidates:
            raise PerturbationError("log has no start/finish pair to orphan")
        index = candidates[rng.randrange(len(candidates))]
        dropped = events.pop(index)
        perturbation = Perturbation(
            kind,
            dropped.case,
            "dropped start of %s (finish becomes an orphan)" % dropped.activity,
            EXPECTED_CODES[kind],
        )
    elif kind == "alien":
        if not events:
            raise PerturbationError("cannot inject into an empty log")
        anchor = events[rng.randrange(len(events))]
        clock = max(event.time for event in events)
        events.append(Event(anchor.case, "alienActivity", START, clock))
        perturbation = Perturbation(
            kind,
            anchor.case,
            "injected events of unknown activity 'alienActivity'",
            EXPECTED_CODES[kind],
        )
    elif kind == "dead_branch":
        guards = guards or {}
        candidates = [
            i
            for i, e in enumerate(events)
            if e.lifecycle == SKIP and guards.get(e.activity)
        ]
        if not candidates:
            raise PerturbationError("log has no skipped guarded activity")
        index = candidates[rng.randrange(len(candidates))]
        skipped = events[index]
        events[index : index + 1] = [
            Event(skipped.case, skipped.activity, START, skipped.time),
            Event(skipped.case, skipped.activity, FINISH, skipped.time),
        ]
        perturbation = Perturbation(
            kind,
            skipped.case,
            "executed dead-path activity %s instead of skipping it"
            % skipped.activity,
            EXPECTED_CODES[kind],
        )
    elif kind == "truncate":
        cases = sorted({e.case for e in events})
        if not cases:
            raise PerturbationError("cannot truncate an empty log")
        case = cases[rng.randrange(len(cases))]
        indices = [i for i, e in enumerate(events) if e.case == case]
        if len(indices) < 2:
            raise PerturbationError("case %r too short to truncate" % case)
        cut = indices[len(indices) // 2]
        events = [e for i, e in enumerate(events) if e.case != case or i < cut]
        perturbation = Perturbation(
            kind,
            case,
            "truncated case %r at its midpoint" % case,
            EXPECTED_CODES[kind],
        )
    else:
        raise PerturbationError(
            "unknown perturbation kind %r (expected one of %s)"
            % (kind, ", ".join(PERTURBATION_KINDS))
        )
    return EventLog(events), perturbation


def perturbation_corpus(
    log: EventLog,
    constraints: Iterable = (),
    guards: Optional[Mapping[str, FrozenSet[Cond]]] = None,
    kinds: Sequence[str] = PERTURBATION_KINDS,
    seed: int = 0,
) -> List[Tuple[EventLog, Perturbation]]:
    """One perturbed copy of ``log`` per kind; kinds without an injection
    site in this log are silently skipped."""
    corpus: List[Tuple[EventLog, Perturbation]] = []
    constraints = list(constraints)
    for offset, kind in enumerate(kinds):
        try:
            corpus.append(
                perturb(
                    log, kind, constraints=constraints, guards=guards, seed=seed + offset
                )
            )
        except PerturbationError:
            continue
    return corpus
