"""Multi-case serving throughput: minimal vs full set, indexed vs naive.

The serving-side restatement of the paper's claim: minimizing the
synchronization constraint set is not only a design-time simplification —
it is runtime capacity.  Every admitted case evaluates its ready set
against the constraint program, so fewer constraints (minimal vs full
ASC) and cheaper lookups (per-activity index vs full scan) translate
directly into cases per second.  Three claims are pinned:

* serving the same case load against the minimal and the full set yields
  **identical per-case final states**, at strictly fewer constraint checks
  and higher throughput for the minimal set;
* the compiled per-activity index does strictly less evaluation work than
  the naive full scan, again with identical results;
* a run crashed mid-flight (journal fault injection) and recovered
  completes exactly the same case set as an uninterrupted run.

``BENCH_RUNTIME_CASES`` scales the concurrent-case count (default 1000;
CI's runtime-smoke job sets a small value).  Artifacts land in
``benchmarks/artifacts/runtime_*.txt``.
"""

from __future__ import annotations

import os

import pytest

from repro.core.pipeline import DSCWeaver, extract_all_dependencies
from repro.runtime import Runtime, SimulatedCrash, program_from_weave
from repro.workloads.purchasing import (
    build_purchasing_process,
    purchasing_cooperation_dependencies,
)
from repro.workloads.synthetic import SyntheticSpec, generate_dependency_set

CASES = int(os.environ.get("BENCH_RUNTIME_CASES", "1000"))
SHARDS = 8
ROUNDS = 3
WORKLOADS = ["purchasing", "synthetic"]


def _weave(workload: str):
    if workload == "purchasing":
        process = build_purchasing_process()
        dependencies = extract_all_dependencies(
            process, cooperation=purchasing_cooperation_dependencies(process)
        )
    else:
        process, dependencies = generate_dependency_set(
            SyntheticSpec(n_activities=40, n_services=4, n_branches=2, seed=11)
        )
    return DSCWeaver().weave(process, dependencies)


def _case_plans(program, count):
    """Outcome plans enumerating guard-domain combinations (mixed radix)."""
    guards = program.guard_names()
    domains = {guard: program.outcome_domain(guard) for guard in guards}
    plans = {}
    for index in range(count):
        plan = {}
        shift = index
        for guard in guards:
            domain = domains[guard]
            plan[guard] = domain[shift % len(domain)]
            shift //= len(domain)
        plans["case-%05d" % index] = plan
    return plans


def _serve(program, plans, **options):
    runtime = Runtime(program, shards=SHARDS, **options)
    runtime.submit_batch(plans)
    report = runtime.run()
    runtime.close()
    return report


def _best_of(program, plans, rounds=ROUNDS, **options):
    """(best wall seconds, last report) over ``rounds`` fresh runtimes."""
    best, report = None, None
    for _ in range(rounds):
        report = _serve(program, plans, **options)
        wall = report.metrics.wall_seconds
        best = wall if best is None else min(best, wall)
    return best, report


@pytest.fixture(scope="module")
def prepared():
    """``workload -> (minimal program, full program, case plans)``."""
    out = {}
    for workload in WORKLOADS:
        result = _weave(workload)
        minimal = program_from_weave(result, "minimal", target="runtime")
        full = program_from_weave(result, "full", target="runtime")
        out[workload] = (minimal, full, _case_plans(minimal, CASES))
    return out


@pytest.mark.parametrize("workload", WORKLOADS)
def test_minimal_vs_full_throughput(benchmark, prepared, workload, artifact_sink):
    minimal, full, plans = prepared[workload]

    report = benchmark.pedantic(
        _serve, args=(minimal, plans), rounds=ROUNDS, iterations=1
    )
    best_minimal, _ = _best_of(minimal, plans)
    best_full, full_report = _best_of(full, plans)
    # the paper's evaluation-work metric (checks per transition) is
    # measured on the object-walking reference evaluator; the mask fast
    # path counts only dirty-set re-checks, a different (smaller) unit
    ref_minimal = _serve(minimal, plans, fast=False)
    ref_full = _serve(full, plans, fast=False)

    assert report.metrics.completed == CASES
    assert full_report.metrics.completed == CASES
    # the acceptance property: identical per-case final states...
    assert report.final_states() == full_report.final_states()
    assert report.final_states() == ref_minimal.final_states()
    # ...at strictly less evaluation work and no less throughput
    assert ref_minimal.metrics.checks < ref_full.metrics.checks
    assert best_minimal <= best_full

    artifact_sink(
        "runtime_throughput_%s" % workload,
        "multi-case serving, minimal vs full set — %s, %d concurrent cases, "
        "%d shards\n"
        "constraints: full=%d minimal=%d\n"
        "checks/transition: full=%.2f minimal=%.2f\n"
        "throughput (best of %d): full=%.0f cases/sec, minimal=%.0f cases/sec "
        "(%.2fx)\n"
        "virtual latency (minimal): p50=%.1f p95=%.1f\n"
        "per-case final states identical: yes"
        % (
            workload,
            CASES,
            SHARDS,
            len(full.constraints),
            len(minimal.constraints),
            ref_full.metrics.checks_per_transition,
            ref_minimal.metrics.checks_per_transition,
            ROUNDS,
            CASES / best_full,
            CASES / best_minimal,
            best_full / best_minimal,
            report.metrics.latency_p50,
            report.metrics.latency_p95,
        ),
    )


@pytest.mark.parametrize("workload", WORKLOADS)
def test_indexed_vs_naive_evaluation(benchmark, prepared, workload, artifact_sink):
    minimal, _full, plans = prepared[workload]

    report = benchmark.pedantic(
        _serve, args=(minimal, plans), rounds=ROUNDS, iterations=1
    )
    best_indexed, _ = _best_of(minimal, plans)
    best_naive, naive_report = _best_of(minimal, plans, indexed=False)
    # inspection counts compared on the reference evaluator (see above);
    # naive is always on it, fast is forced off when indexed=False
    ref_indexed = _serve(minimal, plans, fast=False)

    assert naive_report.metrics.completed == CASES
    assert report.final_states() == naive_report.final_states()
    assert ref_indexed.metrics.checks < naive_report.metrics.checks

    artifact_sink(
        "runtime_index_%s" % workload,
        "ready-set evaluation, per-activity index vs naive scan — %s, "
        "%d cases\n"
        "constraint inspections: naive=%d indexed=%d (%.1fx fewer)\n"
        "wall (best of %d): naive=%.3fs indexed=%.3fs\n"
        "per-case final states identical: yes"
        % (
            workload,
            CASES,
            naive_report.metrics.checks,
            ref_indexed.metrics.checks,
            naive_report.metrics.checks / ref_indexed.metrics.checks,
            ROUNDS,
            best_naive,
            best_indexed,
        ),
    )


def test_crash_recovery_equivalence(benchmark, prepared, tmp_path, artifact_sink):
    """An interrupted-then-recovered run completes the same case set."""
    minimal, _full, plans = prepared["purchasing"]
    small = dict(list(plans.items())[: min(len(plans), 50)])
    baseline = _serve(
        minimal, small, journal_path=str(tmp_path / "baseline.jsonl")
    )
    # Crash late enough that some cases already completed (they get adopted
    # from the journal) while others are still mid-flight (they get resumed).
    crash_after = baseline.metrics.journal_records - len(small) // 2

    def crash_and_recover():
        path = str(tmp_path / "wal.jsonl")
        crashed = Runtime(
            minimal, shards=SHARDS, journal_path=path, crash_after=crash_after
        )
        try:
            crashed.submit_batch(small)
            crashed.run()
        except SimulatedCrash:
            pass
        finally:
            crashed.close()
        recovered = Runtime.recover(path, minimal, shards=SHARDS)
        for case, outcomes in small.items():
            if case not in recovered.known_cases:
                recovered.submit(case, outcomes)
        report = recovered.run()
        recovered.close()
        return report

    report = benchmark.pedantic(crash_and_recover, rounds=1, iterations=1)

    assert report.completed_cases() == tuple(sorted(small))
    assert report.final_states() == baseline.final_states()
    assert not report.diagnostics
    assert report.metrics.recovered > 0

    artifact_sink(
        "runtime_crash_recovery",
        "crash/recovery equivalence — purchasing, %d cases, crash after "
        "%d of %d journal records\n"
        "adopted completed cases: %d, resumed in-flight: %d\n"
        "completed-case set identical to uninterrupted run: yes\n"
        "per-case final states identical: yes"
        % (
            len(small),
            crash_after,
            baseline.metrics.journal_records,
            report.metrics.recovered,
            len(small) - report.metrics.recovered,
        ),
    )
