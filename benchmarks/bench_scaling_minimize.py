"""S1 — minimization cost scaling: naive Definition-6 loop vs. the
ancestor-pruned fast algorithm (reference frozenset path) vs. the interned
bitset kernel, over synthetic processes of growing size.

All paths produce identical minimal sets (property-tested in
``tests/test_core_kernel.py`` and asserted again here at n=40); the fast
algorithm prunes the equivalence check to the removed edge's source and its
ancestors, and the kernel additionally memoizes closures per node with
incremental invalidation, which is what lets it complete the n=200 and
n=300 rows that are impractical on the reference path.

``test_emit_bench_core_json`` writes the machine-readable scaling record to
``BENCH_core.json`` at the repository root (also uploaded by the CI
``core-perf-smoke`` job).
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro.core.closure import Semantics
from repro.core.kernel import KernelStats
from repro.core.minimize import minimize_fast, minimize_naive
from repro.workloads.synthetic import SyntheticSpec, generate_dependency_set

#: Sizes the reference (frozenset) paths are timed at.
SIZES = [40, 80, 120]
#: Sizes the kernel path is timed at — the 200/300 rows exist to show the
#: kernel completes where the reference becomes impractical.
KERNEL_SIZES = [40, 80, 120, 200, 300]

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_core.json"


def _translated_asc(n_activities: int):
    from repro.core.translation import (
        invoke_bindings_from_process,
        translate_service_dependencies,
    )
    from repro.dscl.compiler import compile_dependencies

    process, dependencies = generate_dependency_set(
        SyntheticSpec(
            n_activities=n_activities,
            n_services=4,
            n_branches=2,
            coop_density=0.8,
            seed=42,
        )
    )
    merged = compile_dependencies(process, dependencies).sc
    return translate_service_dependencies(
        merged, invoke_bindings_from_process(process)
    ).asc


@pytest.fixture(scope="module")
def translated_sets():
    return {n: _translated_asc(n) for n in KERNEL_SIZES}


@pytest.mark.benchmark(min_rounds=3, max_time=1.0)
@pytest.mark.parametrize("n_activities", KERNEL_SIZES)
def test_scaling_minimize_kernel(
    benchmark, translated_sets, n_activities, artifact_sink
):
    asc = translated_sets[n_activities]
    minimal = benchmark(minimize_fast, asc, Semantics.GUARD_AWARE)
    assert len(minimal) <= len(asc)
    artifact_sink(
        "s1_scaling_kernel_%d" % n_activities,
        "S1 bitset-kernel minimizer, n=%d activities: %d -> %d constraints"
        % (n_activities, len(asc), len(minimal)),
    )


@pytest.mark.benchmark(min_rounds=3, max_time=1.0)
@pytest.mark.parametrize("n_activities", SIZES)
def test_scaling_minimize_fast_reference(
    benchmark, translated_sets, n_activities, artifact_sink
):
    asc = translated_sets[n_activities]
    minimal = benchmark(minimize_fast, asc, Semantics.GUARD_AWARE, kernel=False)
    assert len(minimal) <= len(asc)
    artifact_sink(
        "s1_scaling_fast_%d" % n_activities,
        "S1 fast minimizer (reference path), n=%d activities: "
        "%d -> %d constraints" % (n_activities, len(asc), len(minimal)),
    )


@pytest.mark.benchmark(min_rounds=3, max_time=1.0)
@pytest.mark.parametrize("n_activities", SIZES[:2])
def test_scaling_minimize_naive(
    benchmark, translated_sets, n_activities, artifact_sink
):
    asc = translated_sets[n_activities]
    minimal = benchmark(minimize_naive, asc, Semantics.GUARD_AWARE)
    fast = minimize_fast(asc, Semantics.GUARD_AWARE)
    assert set(minimal.constraints) == set(fast.constraints)
    artifact_sink(
        "s1_scaling_naive_%d" % n_activities,
        "S1 naive minimizer, n=%d activities: %d -> %d constraints "
        "(identical set to fast)" % (n_activities, len(asc), len(minimal)),
    )


def test_kernel_reference_identical_n40(translated_sets):
    """The CI smoke assertion: kernel and reference agree at n=40."""
    asc = translated_sets[40]
    for semantics in (
        Semantics.STRICT,
        Semantics.GUARD_AWARE,
        Semantics.REACHABILITY,
    ):
        kernel = minimize_fast(asc, semantics, kernel=True)
        reference = minimize_fast(asc, semantics, kernel=False)
        assert kernel.constraints == reference.constraints


def _best_of(repeats, fn, *args, **kwargs):
    best = None
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn(*args, **kwargs)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def test_emit_bench_core_json(translated_sets):
    """Machine-readable S1 scaling record (see module docstring)."""
    rows = []
    for n_activities in KERNEL_SIZES:
        asc = translated_sets[n_activities]
        stats = KernelStats()
        kernel_seconds, kernel_minimal = _best_of(
            3, minimize_fast, asc, Semantics.GUARD_AWARE, kernel=True, stats=stats
        )
        # KernelStats accumulates across the repeats; normalize to one run.
        runs = 3
        row = {
            "n_activities": n_activities,
            "constraints": len(asc),
            "minimal": len(kernel_minimal),
            "kernel_seconds": round(kernel_seconds, 6),
            "reference_seconds": None,
            "speedup": None,
            "identical_minimal_sets": None,
            "kernel_stats": {
                "closures_computed": stats.closures_computed // runs,
                "closure_cache_hits": stats.closure_cache_hits // runs,
                "closure_cache_hit_rate": round(stats.closure_cache_hit_rate, 4),
                "subsumption_tests": stats.subsumption_tests // runs,
                "candidates": stats.candidates // runs,
                "removed": stats.removed // runs,
            },
        }
        if n_activities <= max(SIZES):
            reference_seconds, reference_minimal = _best_of(
                1, minimize_fast, asc, Semantics.GUARD_AWARE, kernel=False
            )
            row["reference_seconds"] = round(reference_seconds, 6)
            row["speedup"] = round(reference_seconds / kernel_seconds, 2)
            row["identical_minimal_sets"] = (
                kernel_minimal.constraints == reference_minimal.constraints
            )
            assert row["identical_minimal_sets"]
        rows.append(row)

    timed = [r for r in rows if r["speedup"] is not None]
    payload = {
        "benchmark": "S1 minimization scaling (bitset kernel vs reference)",
        "workload": (
            "synthetic: n_services=4, n_branches=2, coop_density=0.8, seed=42"
        ),
        "semantics": Semantics.GUARD_AWARE.value,
        "generated_by": (
            "benchmarks/bench_scaling_minimize.py::test_emit_bench_core_json"
        ),
        "reference_timed_up_to": max(SIZES),
        "min_speedup_timed": min(r["speedup"] for r in timed),
        "sizes": rows,
    }
    BENCH_JSON.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    # The tentpole acceptance bar: >= 5x over the reference at n=120.
    at_120 = next(r for r in rows if r["n_activities"] == 120)
    assert at_120["speedup"] >= 5.0
    # And the kernel completes the n=300 row.
    assert rows[-1]["n_activities"] == 300 and rows[-1]["minimal"] > 0
