"""S1 — minimization cost scaling: naive Definition-6 loop vs. the
ancestor-pruned fast algorithm, over synthetic processes of growing size.

Both algorithms produce identical minimal sets (property-tested); the fast
one prunes the equivalence check to the removed edge's source and its
ancestors and pre-filters with a single-source closure test.
"""

from __future__ import annotations

import pytest

from repro.core.closure import Semantics
from repro.core.minimize import minimize_fast, minimize_naive
from repro.core.pipeline import DSCWeaver
from repro.workloads.synthetic import SyntheticSpec, generate_dependency_set

SIZES = [40, 80, 120]


def _translated_asc(n_activities: int):
    from repro.core.translation import (
        invoke_bindings_from_process,
        translate_service_dependencies,
    )
    from repro.dscl.compiler import compile_dependencies

    process, dependencies = generate_dependency_set(
        SyntheticSpec(
            n_activities=n_activities,
            n_services=4,
            n_branches=2,
            coop_density=0.8,
            seed=42,
        )
    )
    merged = compile_dependencies(process, dependencies).sc
    return translate_service_dependencies(
        merged, invoke_bindings_from_process(process)
    ).asc


@pytest.fixture(scope="module")
def translated_sets():
    return {n: _translated_asc(n) for n in SIZES}


@pytest.mark.benchmark(min_rounds=3, max_time=1.0)
@pytest.mark.parametrize("n_activities", SIZES)
def test_scaling_minimize_fast(benchmark, translated_sets, n_activities, artifact_sink):
    asc = translated_sets[n_activities]
    minimal = benchmark(minimize_fast, asc, Semantics.GUARD_AWARE)
    assert len(minimal) <= len(asc)
    artifact_sink(
        "s1_scaling_fast_%d" % n_activities,
        "S1 fast minimizer, n=%d activities: %d -> %d constraints"
        % (n_activities, len(asc), len(minimal)),
    )


@pytest.mark.benchmark(min_rounds=3, max_time=1.0)
@pytest.mark.parametrize("n_activities", SIZES[:2])
def test_scaling_minimize_naive(
    benchmark, translated_sets, n_activities, artifact_sink
):
    asc = translated_sets[n_activities]
    minimal = benchmark(minimize_naive, asc, Semantics.GUARD_AWARE)
    fast = minimize_fast(asc, Semantics.GUARD_AWARE)
    assert set(minimal.constraints) == set(fast.constraints)
    artifact_sink(
        "s1_scaling_naive_%d" % n_activities,
        "S1 naive minimizer, n=%d activities: %d -> %d constraints "
        "(identical set to fast)" % (n_activities, len(asc), len(minimal)),
    )
