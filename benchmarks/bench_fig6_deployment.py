"""F6 — Figure 6: the Deployment process and its implicit cooperation
dependency.

The mid-before-app constraint has no data/control/service backing — it
exists because the middleware install creates the directory structure the
application lands in.  The benchmark times the deployment weave and the
artifact shows the constraint surviving minimization.
"""

from __future__ import annotations

from repro.core.pipeline import DSCWeaver, extract_all_dependencies
from repro.workloads.deployment import (
    build_deployment_process,
    deployment_cooperation,
)


def test_fig6_deployment_weave(benchmark, artifact_sink):
    process = build_deployment_process()
    dependencies = extract_all_dependencies(
        process, cooperation=deployment_cooperation(process).dependencies
    )
    weaver = DSCWeaver()

    result = benchmark(weaver.weave, process, dependencies)

    assert result.minimal.has_constraint(
        "invDeploy_midConfig", "invDeploy_appConfig"
    )

    lines = ["Figure 6 - the Deployment process", ""]
    lines.append("dependencies:")
    lines.append(dependencies.as_table())
    lines.append("")
    lines.append("minimal synchronization constraints:")
    for constraint in sorted(result.minimal.constraints):
        lines.append("   %s" % constraint)
    lines += [
        "",
        "the cooperation dependency invDeploy_midConfig -> invDeploy_appConfig",
        "survives minimization: nothing else implies it.",
    ]
    artifact_sink("fig6_deployment", "\n".join(lines))
