"""F2 — Figure 2: the sequencing-construct implementation and its diagnosis.

The paper's Section 2 analysis of Figure 2: the sequencing
``invProduction_po -> invProduction_ss`` is over-specified (no dependency
requires it), while ``invPurchase_po -> invPurchase_si`` — superficially
identical — is required by the Purchase service dependency.  The benchmark
times the specification analysis.
"""

from __future__ import annotations

from repro.constructs.specification import analyze_specification
from repro.workloads.purchasing_constructs import build_purchasing_constructs


def test_fig2_specification_analysis(benchmark, purchasing_result, artifact_sink):
    tree = build_purchasing_constructs()

    report = benchmark(analyze_specification, tree, purchasing_result.asc)

    assert ("invProduction_po", "invProduction_ss") in report.over_specified
    assert ("invPurchase_po", "invPurchase_si") in report.satisfied
    assert report.under_specified == ()

    lines = [
        "Figure 2 - Purchasing implemented in sequencing constructs",
        "",
        str(tree),
        "",
        "diagnosis (vs. the translated dependency requirements):",
        "   " + report.summary(),
        "",
        "over-specified orderings (lost concurrency):",
    ]
    for source, target in report.over_specified:
        lines.append("   %s -> %s" % (source, target))
    lines += [
        "",
        "note: invPurchase_po -> invPurchase_si is NOT over-specified -",
        "it is imposed by the state-aware Purchase service dependency.",
    ]
    artifact_sink("fig2_constructs", "\n".join(lines))
