"""S7 — dependency discovery: mining throughput and rediscovery quality
under noise.

For every bundled workload this bench simulates a jittered log (guard
outcomes enumerated over every branch combination), perturbs a fraction
of its cases with the PR 2 defect generators at rates {0, 0.05, 0.1},
and mines each log twice: with the strict default (``noise=0.0``, the
always-ordered criterion) and with a small noise budget (``noise=0.03``).
The curve the JSON records is the headline robustness story: strict
mining degrades gracefully as defects land, the noise budget recovers
precision = recall = 1.0 at both nonzero rates, and on clean logs both
configurations rediscover a transitively equivalent set.

``test_emit_bench_discover_json`` writes the machine-readable record to
``BENCH_discover.json`` at the repository root (uploaded by the CI
``discover-smoke`` job).  ``BENCH_DISCOVER_CASES`` scales the per-
workload case count (default 200, the acceptance-criterion size).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from repro.cli import _weave
from repro.discover.evaluate import perturb_log, round_trip, simulate_log
from repro.discover.mine import MinerConfig, mine
from repro.discover.stats import LogStatistics

WORKLOADS = ("purchasing", "deployment", "loan", "travel", "insurance")
RATES = (0.0, 0.05, 0.1)
CASES = int(os.environ.get("BENCH_DISCOVER_CASES", "200"))

CONFIGS = {
    "strict": MinerConfig(),
    "noise=0.03": MinerConfig(noise=0.03),
}

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_discover.json"


@pytest.fixture(scope="module")
def logs():
    """``(workload, rate) -> (process, reference, log)`` shared by rows."""
    prepared = {}
    for workload in WORKLOADS:
        process, reference = _weave(workload)
        clean = simulate_log(process, reference, cases=CASES, seed=0)
        for rate in RATES:
            if rate:
                log, _ = perturb_log(
                    clean,
                    rate,
                    seed=0,
                    constraints=list(reference.minimal),
                    guards=reference.minimal.guards,
                )
            else:
                log = clean
            prepared[(workload, rate)] = (process, reference, log)
    return prepared


@pytest.mark.benchmark(min_rounds=3, max_time=1.0)
@pytest.mark.parametrize("workload", WORKLOADS)
def test_mining_throughput(benchmark, logs, workload, artifact_sink):
    _, _, log = logs[(workload, 0.0)]

    def run():
        return mine(LogStatistics.from_log(log))

    result = benchmark(run)
    assert result.candidates
    artifact_sink(
        "s7_discover_throughput_%s" % workload,
        "S7 dependency discovery, %s: %d events across %d cases mined "
        "into %d candidates"
        % (workload, len(log), CASES, len(result.candidates)),
    )


def test_emit_bench_discover_json(logs, artifact_sink):
    """Machine-readable S7 quality/throughput record (module docstring)."""
    rows = []
    for workload in WORKLOADS:
        for rate in RATES:
            process, reference, log = logs[(workload, rate)]
            for label, config in CONFIGS.items():
                started = time.perf_counter()
                stats = LogStatistics.from_log(log)
                discovery = mine(stats, config=config)
                seconds = time.perf_counter() - started
                report = round_trip(discovery, process, reference, verify=False)
                rows.append(
                    {
                        "workload": workload,
                        "perturb_rate": rate,
                        "miner": label,
                        "noise": config.noise,
                        "cases": stats.case_count,
                        "events": stats.event_count,
                        "candidates": len(discovery.candidates),
                        "precision": round(report.precision, 4),
                        "recall": round(report.recall, 4),
                        "equivalent": report.equivalent,
                        "seconds": round(seconds, 6),
                        "events_per_second": round(
                            stats.event_count / seconds if seconds else 0.0, 1
                        ),
                    }
                )

    payload = {
        "benchmark": "discover_quality",
        "description": (
            "Entailment-level precision/recall of dependency rediscovery "
            "per workload and case-perturbation rate, mined strictly "
            "(noise=0.0) and with a 0.03 noise budget, plus mining "
            "throughput (stats pass + candidate mining)."
        ),
        "cases_per_workload": CASES,
        "rows": rows,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    summary = [
        "%-11s rate=%.2f %-10s P=%.3f R=%.3f eq=%s %.0f ev/s"
        % (
            r["workload"],
            r["perturb_rate"],
            r["miner"],
            r["precision"],
            r["recall"],
            "yes" if r["equivalent"] else "NO",
            r["events_per_second"],
        )
        for r in rows
    ]
    artifact_sink("s7_discover_quality", "\n".join(summary))

    # The acceptance bar: clean logs rediscover an equivalent set under
    # both configurations, and the noise budget recovers equivalence at
    # every nonzero rate.
    for row in rows:
        if row["perturb_rate"] == 0.0:
            assert row["precision"] == 1.0, row
            assert row["recall"] == 1.0, row
            assert row["equivalent"] is True, row
        elif row["miner"] == "noise=0.03":
            assert row["equivalent"] is True, row
