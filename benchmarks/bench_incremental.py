"""S6 — incremental evolution: adding a constraint to a minimal set vs.
re-minimizing from scratch.

The paper's adaptability story made quantitative: on an already-minimal
set, adding one dependency touches only the constraints bridging the new
edge's ancestors to its descendants.  Covered additions are detected
without modifying anything.
"""

from __future__ import annotations

import pytest

from repro.core.closure import Semantics
from repro.core.constraints import Constraint
from repro.core.equivalence import transitive_equivalent
from repro.core.incremental import add_constraint_incremental
from repro.core.minimize import minimize
from repro.core.pipeline import DSCWeaver
from repro.workloads.synthetic import SyntheticSpec, generate_dependency_set


@pytest.fixture(scope="module")
def big_minimal():
    process, dependencies = generate_dependency_set(
        SyntheticSpec(n_activities=80, n_services=4, n_branches=2, coop_density=0.8, seed=9)
    )
    result = DSCWeaver().weave(process, dependencies)
    return result.minimal


def test_incremental_add_new_requirement(benchmark, big_minimal, artifact_sink):
    activities = big_minimal.activities
    new = Constraint(activities[3], activities[-2])

    result = benchmark(
        add_constraint_incremental, big_minimal, new, Semantics.GUARD_AWARE
    )

    reference = big_minimal.copy()
    reference.add(new)
    assert transitive_equivalent(result, reference, Semantics.GUARD_AWARE)
    artifact_sink(
        "s6_incremental_add",
        "S6 incremental addition on n=80 minimal set (%d constraints)\n"
        "result: %d constraints, equivalent to full re-minimization"
        % (len(big_minimal), len(result)),
    )


def test_incremental_add_covered_is_noop(benchmark, big_minimal, artifact_sink):
    # Pick a covered ordering: any 2-step transitive pair.
    graph = big_minimal.as_graph()
    covered = None
    for constraint in big_minimal.constraints:
        for successor in graph.successors(constraint.target):
            covered = Constraint(constraint.source, successor)
            break
        if covered:
            break
    assert covered is not None

    result = benchmark(
        add_constraint_incremental, big_minimal, covered, Semantics.GUARD_AWARE
    )
    assert result is big_minimal
    artifact_sink(
        "s6_incremental_noop",
        "S6 covered addition detected as no-op (set object returned unchanged)",
    )


def test_full_reminimization_baseline(benchmark, big_minimal, artifact_sink):
    activities = big_minimal.activities
    new = Constraint(activities[3], activities[-2])
    grown = big_minimal.copy()
    grown.add(new)

    result = benchmark(minimize, grown, Semantics.GUARD_AWARE)
    assert transitive_equivalent(result, grown, Semantics.GUARD_AWARE)
    artifact_sink(
        "s6_full_baseline",
        "S6 full re-minimization baseline: %d -> %d constraints"
        % (len(grown), len(result)),
    )
