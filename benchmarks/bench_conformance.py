"""Conformance-monitoring cost: compiled watcher index vs naive scan,
full ASC vs minimal set.

The replay-level counterpart of ``bench_monitoring_cost``: instead of
counting the *scheduler's* constraint evaluations we count the *monitor's*
constraint inspections while replaying recorded event logs.  Two claims
are pinned:

* the compiled per-activity watcher index does strictly less work per
  event than the naive full-scan checker, with identical diagnostics;
* monitoring against the minimal set is cheaper than against the full
  translated ASC, with identical per-case verdicts — on clean logs and on
  the whole known-violation perturbation corpus.
"""

from __future__ import annotations

import pytest

from repro.conformance import (
    log_from_traces,
    perturbation_corpus,
    program_from_weave,
    replay,
    verdicts_agree,
)
from repro.core.pipeline import DSCWeaver, extract_all_dependencies
from repro.scheduler.engine import ConstraintScheduler
from repro.workloads.insurance import build_insurance_process, insurance_cooperation
from repro.workloads.purchasing import (
    build_purchasing_process,
    purchasing_cooperation_dependencies,
)

WORKLOADS = ["purchasing", "insurance"]
CASES_PER_LOG = 20


def _weave(workload: str):
    if workload == "purchasing":
        process = build_purchasing_process()
        cooperation = purchasing_cooperation_dependencies(process)
    else:
        process = build_insurance_process()
        cooperation = insurance_cooperation(process).dependencies
    dependencies = extract_all_dependencies(process, cooperation=cooperation)
    return process, DSCWeaver().weave(process, dependencies)


@pytest.fixture(scope="module")
def prepared():
    """``workload -> (log, minimal program, full program)``.

    Each log holds ``CASES_PER_LOG`` cases cycling through every guard
    outcome combination, so both branches of every guard are exercised.
    """
    out = {}
    for workload in WORKLOADS:
        process, weave = _weave(workload)
        guards = sorted(a.name for a in process.activities if a.is_guard)
        traces = {}
        for index in range(CASES_PER_LOG):
            outcomes = {
                guard: "T" if (index >> position) & 1 == 0 else "F"
                for position, guard in enumerate(guards)
            }
            run = ConstraintScheduler(process, weave.minimal).run(outcomes=outcomes)
            traces["case-%d" % (index + 1)] = run.trace
        out[workload] = (
            log_from_traces(traces),
            program_from_weave(weave, which="minimal"),
            program_from_weave(weave, which="full"),
        )
    return out


@pytest.mark.parametrize("workload", WORKLOADS)
def test_compiled_vs_naive(benchmark, prepared, workload, artifact_sink):
    log, minimal, _full = prepared[workload]

    report = benchmark(replay, log, minimal, True)

    naive = replay(log, minimal, indexed=False)
    assert report.clean and naive.clean
    assert verdicts_agree(report, naive)
    assert [d.message for d in report.diagnostics] == [
        d.message for d in naive.diagnostics
    ]
    assert report.checks < naive.checks

    speedup = naive.checks / report.checks
    artifact_sink(
        "conformance_index_%s" % workload,
        "compiled watcher index vs naive full scan — %s, %d cases, %d events\n"
        "checks per event: indexed=%.2f naive=%.2f (%.1fx fewer inspections)\n"
        "diagnostics identical: yes"
        % (
            workload,
            report.cases,
            report.events,
            report.checks_per_event,
            naive.checks_per_event,
            speedup,
        ),
    )


@pytest.mark.parametrize("workload", WORKLOADS)
def test_minimal_vs_full_monitoring(benchmark, prepared, workload, artifact_sink):
    log, minimal, full = prepared[workload]

    report = benchmark(replay, log, minimal)

    full_report = replay(log, full)
    assert report.clean and full_report.clean
    assert verdicts_agree(report, full_report)
    assert report.program_size < full_report.program_size
    assert report.checks < full_report.checks

    reduction = 1.0 - report.checks / full_report.checks
    artifact_sink(
        "conformance_sets_%s" % workload,
        "monitoring cost, minimal vs full ASC — %s, %d cases, %d events\n"
        "monitored constraints: full=%d minimal=%d\n"
        "checks: full=%d minimal=%d (%.0f%% less monitoring)\n"
        "verdicts identical: yes (fitness %.3f both)"
        % (
            workload,
            report.cases,
            report.events,
            full_report.program_size,
            report.program_size,
            full_report.checks,
            report.checks,
            reduction * 100,
            report.fitness,
        ),
    )


def test_perturbation_corpus_detection(benchmark, prepared, artifact_sink):
    log, minimal, full = prepared["purchasing"]
    corpus = perturbation_corpus(
        log, constraints=minimal.constraints, guards=minimal.guards
    )
    assert len(corpus) >= 5

    def check_corpus():
        return [
            (perturbation, replay(perturbed, minimal)) for perturbed, perturbation in corpus
        ]

    reports = benchmark(check_corpus)

    lines = ["perturbation corpus detection — purchasing, %d entries" % len(corpus)]
    for perturbation, report in reports:
        counts = report.counts_by_code()
        assert counts[perturbation.expected_code] >= 1, perturbation
        full_report = replay(
            next(p_log for p_log, p in corpus if p is perturbation), full
        )
        assert verdicts_agree(report, full_report), perturbation
        lines.append(
            "%-13s -> %s x%d (fitness %.3f, verdicts match full set)"
            % (
                perturbation.kind,
                perturbation.expected_code,
                counts[perturbation.expected_code],
                report.fitness,
            )
        )
    artifact_sink("conformance_perturbations", "\n".join(lines))
