"""F5 — Figure 5: the data + control dependency graph of Purchasing.

The figure's point (Section 3.1): data and control alone *under-specify*
the process — nothing orders the reply after the Ship/Production
subprocesses, and nothing sequences the Purchase ports.  The artifact
lists the graph and the two gaps; the benchmark times the extraction.
"""

from __future__ import annotations

from repro.deps.controlflow import extract_control_dependencies
from repro.deps.dataflow import extract_data_dependencies


def _extract_both(process):
    return extract_data_dependencies(process), extract_control_dependencies(process)


def test_fig5_data_control_graph(benchmark, purchasing, artifact_sink):
    process, _dependencies = purchasing

    data, control = benchmark(_extract_both, process)

    assert len(data) == 9
    assert len(control) == 10

    lines = ["Figure 5 - data and control dependency graph of Purchasing", ""]
    lines.append("data dependencies (dotted):")
    for dependency in map(str, data):
        lines.append("   %s" % dependency)
    lines.append("")
    lines.append("control dependencies (solid):")
    for dependency in map(str, control):
        lines.append("   %s" % dependency)
    lines += [
        "",
        "missing vs. the full specification (motivates Sections 3.2-3.3):",
        "   - replyClient_oi does not wait for Ship/Production subprocesses",
        "     (needs cooperation dependencies)",
        "   - invPurchase_po / invPurchase_si are not sequenced",
        "     (needs the Purchase service dependency)",
    ]
    artifact_sink("fig5_depgraph", "\n".join(lines))
