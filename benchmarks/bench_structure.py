"""S7 — structure recovery: minimal constraint set back into nested
constructs, exactly (Figure 2's skeleton with links instead of the
over-specified sequences)."""

from __future__ import annotations

from repro.bpel.structure import (
    emit_structured_bpel,
    recover_structure,
    runtime_required_pairs,
)
from repro.constructs.analysis import implied_orderings
from repro.constructs.ast import Sequence, Switch


def test_structure_recovery_purchasing(benchmark, purchasing, purchasing_result, artifact_sink):
    process, _dependencies = purchasing
    minimal = purchasing_result.minimal

    tree = benchmark(recover_structure, minimal)

    # Exactness: the tree implies precisely the runtime-required orderings.
    from repro.bpel.structure import co_executable

    implied = {
        pair for pair in implied_orderings(tree) if co_executable(minimal, *pair)
    }
    assert implied == runtime_required_pairs(minimal)
    assert isinstance(tree, Sequence)
    assert any(isinstance(child, Switch) for child in tree.children)

    xml = emit_structured_bpel(process, minimal)
    artifact_sink(
        "s7_structure_recovery",
        "S7 structure recovery (Purchasing minimal set)\n\n"
        "recovered construct tree:\n%s\n\n"
        "exact: implied orderings == runtime-required orderings\n\n"
        "structured BPEL (%d chars):\n%s" % (tree, len(xml), xml),
    )
