"""Observability overhead: the disabled path must cost (almost) nothing.

Three drivers over the identical case load:

* **reference** — a verbatim copy of the pre-instrumentation scheduling
  loop, driven externally over the runtime's shards (no ``obs`` branches
  in the loop body);
* **disabled** — ``Runtime(obs=None).run()``, the shipped hot path whose
  only residual cost is the ``if obs is None`` guards;
* **enabled** — ``Runtime(obs=Observability()).run()`` with spans and
  metrics collected.

The pinned contract (recorded in ``BENCH_obs.json`` at the repository
root and asserted by CI's ``obs-smoke`` job): the disabled path stays
within 5% of the reference loop, and all three modes produce identical
per-case final states.  ``BENCH_OBS_CASES`` / ``BENCH_OBS_ROUNDS`` scale
the load (defaults 600 cases, best of 5).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.core.pipeline import DSCWeaver, extract_all_dependencies
from repro.obs import Observability, span_forest
from repro.runtime import Runtime, program_from_weave
from repro.workloads.purchasing import (
    build_purchasing_process,
    purchasing_cooperation_dependencies,
)

CASES = int(os.environ.get("BENCH_OBS_CASES", "600"))
ROUNDS = int(os.environ.get("BENCH_OBS_ROUNDS", "5"))
SHARDS = 4
OVERHEAD_BUDGET_PCT = 5.0
BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_obs.json"


def _program():
    process = build_purchasing_process()
    dependencies = extract_all_dependencies(
        process, cooperation=purchasing_cooperation_dependencies(process)
    )
    result = DSCWeaver().weave(process, dependencies)
    return program_from_weave(result, "minimal", target="runtime")


def _case_plans(program, count):
    """Outcome plans enumerating guard-domain combinations (mixed radix)."""
    guards = program.guard_names()
    domains = {guard: program.outcome_domain(guard) for guard in guards}
    plans = {}
    for index in range(count):
        plan = {}
        shift = index
        for guard in guards:
            domain = domains[guard]
            plan[guard] = domain[shift % len(domain)]
            shift //= len(domain)
        plans["case-%05d" % index] = plan
    return plans


def _drive_reference(runtime):
    """The scheduling loop exactly as it was before instrumentation."""
    store = runtime._store
    batch_size = runtime._batch
    while store.any_runnable():
        for shard in store.shards:
            for instance in shard.take_batch(batch_size):
                if instance.advance():
                    shard.requeue(instance)
                else:
                    shard.retire(instance)
                    runtime._on_case_done(instance)


def _run(program, plans, mode):
    """One fresh serving run in ``mode``; ``(wall seconds, report, obs)``."""
    obs = Observability() if mode == "enabled" else None
    runtime = Runtime(program, shards=SHARDS, obs=obs)
    try:
        runtime.submit_batch(plans)
        started = time.perf_counter()
        if mode == "reference":
            _drive_reference(runtime)
        else:
            runtime.run()
        wall = time.perf_counter() - started
        report = runtime.report()
    finally:
        runtime.close()
    return wall, report, obs


def _measure(program, plans, rounds=ROUNDS):
    """Interleaved best-of-``rounds`` per mode.

    Interleaving (reference, disabled, enabled, reference, ...) instead of
    back-to-back blocks keeps allocator/cache drift from biasing one mode;
    an untimed warm-up run absorbs first-run effects.
    """
    _run(program, plans, "disabled")  # warm-up, untimed
    best = {}
    reports = {}
    observed = {}
    for _ in range(rounds):
        for mode in ("reference", "disabled", "enabled"):
            wall, report, obs = _run(program, plans, mode)
            best[mode] = wall if mode not in best else min(best[mode], wall)
            reports[mode] = report
            observed[mode] = obs
    return best, reports, observed


def test_emit_bench_obs_json(artifact_sink):
    """Measure the three modes, pin the budget, write ``BENCH_obs.json``."""
    program = _program()
    plans = _case_plans(program, CASES)

    best, reports, observed = _measure(program, plans)
    best_reference, best_disabled, best_enabled = (
        best["reference"],
        best["disabled"],
        best["enabled"],
    )
    reference_report = reports["reference"]
    disabled_report = reports["disabled"]
    enabled_report = reports["enabled"]
    obs = observed["enabled"]

    # acceptance property: instrumentation never changes outcomes
    assert reference_report.metrics.completed == CASES
    assert disabled_report.final_states() == reference_report.final_states()
    assert enabled_report.final_states() == reference_report.final_states()

    # the enabled run actually observed something
    forest = span_forest(obs.tracer.finished_spans())
    assert forest and forest[0][0] == "runtime.run"
    cases_counter = obs.metrics.get("repro_runtime_cases_total")
    assert cases_counter.value(status="completed") == CASES

    disabled_overhead_pct = (best_disabled - best_reference) / best_reference * 100
    enabled_overhead_pct = (best_enabled - best_reference) / best_reference * 100

    payload = {
        "benchmark": "observability overhead on multi-case serving",
        "workload": "purchasing, minimal set, %d cases, %d shards"
        % (CASES, SHARDS),
        "generated_by": (
            "benchmarks/bench_obs_overhead.py::test_emit_bench_obs_json"
        ),
        "rounds": ROUNDS,
        "overhead_budget_pct": OVERHEAD_BUDGET_PCT,
        "reference_seconds": round(best_reference, 6),
        "disabled_seconds": round(best_disabled, 6),
        "enabled_seconds": round(best_enabled, 6),
        "disabled_overhead_pct": round(disabled_overhead_pct, 2),
        "enabled_overhead_pct": round(enabled_overhead_pct, 2),
        "identical_final_states": True,
        "spans_recorded": len(obs.tracer.finished_spans()),
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    artifact_sink(
        "obs_overhead",
        "observability overhead — purchasing, %d cases, %d shards, best of %d\n"
        "reference (pre-instrumentation loop): %.3fs\n"
        "disabled (obs=None guards):           %.3fs (%+.2f%%)\n"
        "enabled (spans + metrics):            %.3fs (%+.2f%%)\n"
        "per-case final states identical across all modes: yes"
        % (
            CASES,
            SHARDS,
            ROUNDS,
            best_reference,
            best_disabled,
            disabled_overhead_pct,
            best_enabled,
            enabled_overhead_pct,
        ),
    )

    # the tentpole acceptance bar: disabled-path overhead under 5%
    assert disabled_overhead_pct < OVERHEAD_BUDGET_PCT
