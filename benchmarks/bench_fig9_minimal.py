"""F9 — Figure 9: the minimal synchronization constraint set (Definition 6).

17 constraints remain from the original 40 — the paper's Table 2 headline.
The benchmark times minimization of the translated ASC (the fast,
ancestor-pruned algorithm; S1 compares it against the naive one).
"""

from __future__ import annotations

from repro.core.closure import Semantics
from repro.core.equivalence import transitive_equivalent
from repro.core.minimize import minimize


def test_fig9_minimal_set(benchmark, purchasing_result, artifact_sink):
    asc = purchasing_result.asc

    minimal = benchmark(minimize, asc, Semantics.GUARD_AWARE)

    assert len(minimal) == 17
    assert transitive_equivalent(minimal, asc, Semantics.GUARD_AWARE)

    lines = [
        "Figure 9 - minimal synchronization constraints (17 edges)",
        "",
    ]
    for constraint in sorted(minimal.constraints):
        lines.append("   %s" % constraint)
    lines += [
        "",
        "properties:",
        "   - transitive-equivalent to the 30-constraint translated set",
        "   - no constraint can be removed without losing equivalence",
        "   - keeps recShip_si -> invPurchase_si (data), the Purchase port",
        "     sequencing (service) and the Production cooperation edges;",
        "     drops every redundant cooperation/control shortcut",
    ]
    artifact_sink("fig9_minimal", "\n".join(lines))
