"""S6 — symbolic verification cost: exhaustive state-space proofs over
synthetic processes of growing size.

The verifier's persistent-set reduction collapses the interleaving
explosion of coarse programs (only two-phase starts branch), so proving
deadlock-freedom for an n=200 woven program — the size where even the
bitset minimizer needs its kernel — completes in well under a second.
The antichain-frontier rows measure the VER005 migration sweep, where
every reachable prefix of the old program re-queries the shared state
space and memoized completability collapses supersets into subset tests.

``test_emit_bench_verify_json`` writes the machine-readable scaling
record to ``BENCH_verify.json`` at the repository root (uploaded by the
CI ``verify-smoke`` job).
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro.core.translation import (
    invoke_bindings_from_process,
    translate_service_dependencies,
)
from repro.dscl.compiler import compile_dependencies
from repro.runtime.program import compile_program
from repro.verify import StateSpace, migration_strands, verify_program
from repro.workloads.synthetic import SyntheticSpec, generate_dependency_set

SIZES = [40, 80, 120, 200]
#: The migration sweep re-explores one prefix per reachable state; keep it
#: at a size where the prefix count stays in the hundreds.
SWEEP_SIZE = 80

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_verify.json"


def _program(n_activities: int):
    process, dependencies = generate_dependency_set(
        SyntheticSpec(
            n_activities=n_activities,
            n_services=4,
            n_branches=2,
            coop_density=0.8,
            seed=42,
        )
    )
    merged = compile_dependencies(process, dependencies).sc
    asc = translate_service_dependencies(
        merged, invoke_bindings_from_process(process)
    ).asc
    return compile_program(process, asc)


@pytest.fixture(scope="module")
def programs():
    return {n: _program(n) for n in SIZES}


@pytest.mark.benchmark(min_rounds=3, max_time=1.0)
@pytest.mark.parametrize("n_activities", SIZES)
def test_scaling_verify(benchmark, programs, n_activities, artifact_sink):
    program = programs[n_activities]
    report = benchmark(verify_program, program)
    assert report.deadlock_free is True
    assert report.dead_activities == ()
    artifact_sink(
        "s6_scaling_verify_%d" % n_activities,
        "S6 symbolic verification, n=%d activities: %d states / %d "
        "transitions, proven deadlock-free in %.4fs (%.0f states/s)"
        % (
            n_activities,
            report.stats.states,
            report.stats.transitions,
            report.elapsed_seconds,
            report.states_per_second,
        ),
    )


@pytest.mark.benchmark(min_rounds=3, max_time=1.0)
def test_migration_sweep_with_memo(benchmark, programs, artifact_sink):
    program = programs[SWEEP_SIZE]
    report = benchmark(migration_strands, program, program)
    assert report.safe
    assert report.memo_hit_rate > 0.0
    artifact_sink(
        "s6_migration_sweep_%d" % SWEEP_SIZE,
        "S6 VER005 migration sweep, n=%d: %d prefixes checked, antichain "
        "memo hit rate %.3f"
        % (SWEEP_SIZE, report.prefixes_checked, report.memo_hit_rate),
    )


def _best_of(repeats, fn, *args, **kwargs):
    best = None
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn(*args, **kwargs)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def test_emit_bench_verify_json(programs):
    """Machine-readable S6 scaling record (see module docstring)."""
    rows = []
    for n_activities in SIZES:
        program = programs[n_activities]
        seconds, report = _best_of(3, verify_program, program)
        assert report.deadlock_free is True
        rows.append(
            {
                "n_activities": n_activities,
                "constraints": len(program.constraints),
                "states": report.stats.states,
                "transitions": report.stats.transitions,
                "terminals": report.stats.terminals,
                "distinct_finals": report.distinct_finals,
                "seconds": round(seconds, 6),
                "states_per_second": round(
                    report.stats.states / seconds if seconds else 0.0, 1
                ),
                "deadlock_free": report.deadlock_free,
                "inert_constraints": len(report.inert_constraints),
                "influence_analyzed": report.influence_analyzed,
            }
        )

    sweep_program = programs[SWEEP_SIZE]
    sweep_seconds, sweep = _best_of(
        2, migration_strands, sweep_program, sweep_program
    )
    payload = {
        "benchmark": "verify_scaling",
        "description": (
            "Exhaustive symbolic verification (VER001-VER004) of synthetic "
            "woven programs, plus the VER005 migration sweep exercising the "
            "antichain frontier."
        ),
        "rows": rows,
        "migration_sweep": {
            "n_activities": SWEEP_SIZE,
            "prefixes_checked": sweep.prefixes_checked,
            "stranded": len(sweep.stranded),
            "memo_hit_rate": round(sweep.memo_hit_rate, 4),
            "seconds": round(sweep_seconds, 6),
        },
    }
    BENCH_JSON.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    # The acceptance bar: n=200 verification completes in seconds.
    n200 = next(r for r in rows if r["n_activities"] == 200)
    assert n200["seconds"] < 10.0
    assert n200["deadlock_free"] is True


def test_verifier_agrees_with_petri_on_synthetic_minimal():
    """CI smoke assertion: the cross-check holds beyond the workloads."""
    from repro.errors import PetriNetError
    from repro.verify import petri_cross_check

    process, dependencies = generate_dependency_set(
        SyntheticSpec(
            n_activities=30,
            n_services=3,
            n_branches=1,
            coop_density=0.6,
            seed=7,
        )
    )
    merged = compile_dependencies(process, dependencies).sc
    asc = translate_service_dependencies(
        merged, invoke_bindings_from_process(process)
    ).asc
    try:
        cross = petri_cross_check(asc)
    except PetriNetError:
        pytest.skip("synthetic set not expressible as a workflow net")
    assert cross.agrees is not False


def test_state_space_reuse_across_queries(programs):
    """One StateSpace instance serves many explorations deterministically."""
    program = programs[40]
    space = StateSpace(program)
    first = space.explore(mode="full")
    second = space.explore(mode="full")
    assert first.stats.states == second.stats.states
    assert len(first.terminals) == len(second.terminals)
