"""F3/F4 — Figures 3-4: the toy process and its data/control dependency
graph, extracted from the control-flow graph with the post-dominator
criterion.

The signature property: ``a7`` dominates every path from ``a1`` to stop and
is therefore *not* control dependent on ``a1`` (it gets the unconditional
"NONE" join edge instead), while ``a2..a6`` are.
"""

from __future__ import annotations

from repro.deps.controlflow import extract_control_dependencies_from_cfg
from repro.deps.dataflow import extract_data_dependencies
from repro.workloads.figure3 import (
    ENTRY,
    EXIT,
    build_figure3_cfg,
    build_figure3_process,
)


def test_fig4_dependency_graph(benchmark, artifact_sink):
    process = build_figure3_process()
    cfg, labels = build_figure3_cfg()

    control = benchmark(
        extract_control_dependencies_from_cfg, cfg, ENTRY, EXIT, labels
    )
    data = extract_data_dependencies(process)

    rendered_control = {str(d) for d in control}
    assert "a1 ->T a2" in rendered_control
    assert "a1 ->F a5" in rendered_control
    assert "a1 ->NONE a7" in rendered_control
    conditional_on_a7 = {r for r in rendered_control if r.endswith("a7") and "NONE" not in r}
    assert not conditional_on_a7  # a7 post-dominates the branch

    lines = ["Figure 4 - data and control dependency graph of Figure 3", ""]
    lines.append("control dependencies (solid edges):")
    for dependency in sorted(map(str, control)):
        lines.append("   %s" % dependency)
    lines.append("")
    lines.append("data dependencies (dotted edges):")
    for dependency in sorted(map(str, data)):
        lines.append("   %s" % dependency)
    lines.append("")
    lines.append("a7 is NOT control dependent on a1 (it post-dominates the branch).")
    artifact_sink("fig4_toygraph", "\n".join(lines))
