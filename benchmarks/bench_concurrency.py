"""S2 — concurrency: makespan of the sequencing-construct baselines vs. the
dependency-minimal schedule ("removal of redundant dependencies ...
enables ... opportunities for concurrent execution").

Shape expected (and asserted):

* minimal and full (pre-minimization) sets give *identical* makespans —
  transitive equivalence preserves the schedule exactly;
* the Figure 2 construct encoding matches here (its over-specified edge is
  off the critical path) but a naive all-sequential implementation —
  common in practice — is strictly slower.
"""

from __future__ import annotations

import pytest

from repro.constructs.ast import Act, Sequence, Switch
from repro.scheduler.baseline import execute_constructs
from repro.scheduler.engine import ConstraintScheduler
from repro.scheduler.metrics import average_concurrency, max_concurrency
from repro.workloads.purchasing_constructs import build_purchasing_constructs


def _sequential_tree() -> Sequence:
    return Sequence(
        Act("recClient_po"),
        Act("invCredit_po"),
        Act("recCredit_au"),
        Switch(
            "if_au",
            cases={
                "T": Sequence(
                    Act("invShip_po"),
                    Act("recShip_si"),
                    Act("recShip_ss"),
                    Act("invPurchase_po"),
                    Act("invPurchase_si"),
                    Act("recPurchase_oi"),
                    Act("invProduction_po"),
                    Act("invProduction_ss"),
                ),
                "F": Act("set_oi"),
            },
        ),
        Act("replyClient_oi"),
    )


def test_concurrency_minimal_schedule(benchmark, purchasing, purchasing_result, artifact_sink):
    process, _ = purchasing
    scheduler = ConstraintScheduler(process, purchasing_result.minimal)

    run = benchmark(scheduler.run)

    full = ConstraintScheduler(process, purchasing_result.asc).run()
    figure2 = execute_constructs(process, build_purchasing_constructs())
    sequential = execute_constructs(process, _sequential_tree())

    assert run.makespan == full.makespan  # equivalence preserves timing
    assert sequential.makespan > run.makespan  # over-serialization costs

    rows = [
        ("dependency-minimal", run),
        ("full constraint set", full),
        ("Figure 2 constructs", figure2),
        ("all-sequential constructs", sequential),
    ]
    lines = [
        "S2 - concurrency comparison (Purchasing, if_au=T)",
        "",
        "%-28s %9s %6s %9s" % ("implementation", "makespan", "peak", "avg-conc"),
    ]
    for label, result in rows:
        lines.append(
            "%-28s %9.1f %6d %9.2f"
            % (
                label,
                result.makespan,
                max_concurrency(result.trace),
                average_concurrency(result.trace),
            )
        )
    lines += [
        "",
        "minimal == full makespan (transitive equivalence);",
        "all-sequential baseline is %.2fx slower."
        % (sequential.makespan / run.makespan),
    ]
    artifact_sink("s2_concurrency", "\n".join(lines))
