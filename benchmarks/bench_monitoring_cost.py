"""S3 — runtime constraint-monitoring cost, full vs. minimal set.

"These redundant constraints incur unnecessary maintenance and computation
costs if added to the scheduling engine."  We count every constraint
evaluation the engine performs across synthetic processes of growing size;
the minimal set consistently does less monitoring work, tracking the
constraint-count reduction.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import DSCWeaver
from repro.scheduler.engine import ConstraintScheduler
from repro.workloads.synthetic import SyntheticSpec, generate_dependency_set

SIZES = [40, 80, 120]


@pytest.fixture(scope="module")
def woven():
    results = {}
    for n in SIZES:
        process, dependencies = generate_dependency_set(
            SyntheticSpec(
                n_activities=n,
                n_services=4,
                n_branches=2,
                coop_density=0.8,
                seed=7,
            )
        )
        results[n] = (process, DSCWeaver().weave(process, dependencies))
    return results


@pytest.mark.parametrize("n_activities", SIZES)
def test_monitoring_cost(benchmark, woven, n_activities, artifact_sink):
    process, result = woven[n_activities]
    minimal_scheduler = ConstraintScheduler(process, result.minimal)

    run = benchmark(minimal_scheduler.run)

    full_run = ConstraintScheduler(process, result.asc).run()
    assert run.constraint_checks <= full_run.constraint_checks
    assert run.makespan == full_run.makespan

    reduction = 1.0 - run.constraint_checks / full_run.constraint_checks
    artifact_sink(
        "s3_monitoring_%d" % n_activities,
        "S3 monitoring cost, n=%d activities\n"
        "constraints: full=%d minimal=%d\n"
        "constraint checks per run: full=%d minimal=%d (%.0f%% less monitoring)\n"
        "makespan identical: %.1f"
        % (
            n_activities,
            len(result.asc),
            len(result.minimal),
            full_run.constraint_checks,
            run.constraint_checks,
            reduction * 100,
            run.makespan,
        ),
    )
