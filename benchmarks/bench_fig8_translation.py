"""F8 — Figure 8: service dependency translation (Section 4.3).

Paper-checked outcomes: ``Purchase1 ->s Purchase2`` translates to
``invPurchase_po -> invPurchase_si`` (the bold edge needing invoke-port
contraction), the async call/reply chains bridge into invoke-before-receive
edges, and the Production constraints vanish (no internal offspring).
The benchmark times the translation.
"""

from __future__ import annotations

from repro.core.translation import (
    invoke_bindings_from_process,
    translate_service_dependencies,
)
from repro.dscl.compiler import compile_dependencies

EXPECTED_BOLD_EDGES = {
    "invCredit_po -> recCredit_au",
    "invPurchase_po -> invPurchase_si",
    "invPurchase_po -> recPurchase_oi",
    "invPurchase_si -> recPurchase_oi",
    "invShip_po -> recShip_si",
    "invShip_po -> recShip_ss",
}


def test_fig8_service_translation(benchmark, purchasing, artifact_sink):
    process, dependencies = purchasing
    merged = compile_dependencies(process, dependencies).sc
    bindings = invoke_bindings_from_process(process)

    result = benchmark(translate_service_dependencies, merged, bindings)

    assert {str(c) for c in result.bridged} == EXPECTED_BOLD_EDGES
    assert len(result.asc) == 30
    assert not result.asc.has_constraint("invProduction_po", "invProduction_ss")

    lines = [
        "Figure 8 - dependency translation on service dependencies",
        "",
        "translated (bold) edges:",
    ]
    for edge in sorted(map(str, result.bridged)):
        lines.append("   %s" % edge)
    lines.append("")
    lines.append("dropped constraints (touched external ports):")
    for constraint in sorted(map(str, result.dropped)):
        lines.append("   %s" % constraint)
    lines += [
        "",
        "Production's service constraints vanish entirely: its ports have",
        "no internal offspring, so no ordering between invProduction_po and",
        "invProduction_ss is invented (Figure 2 over-specified exactly this).",
        "",
        "resulting ASC: %d constraints over internal activities only"
        % len(result.asc),
    ]
    artifact_sink("fig8_translation", "\n".join(lines))
