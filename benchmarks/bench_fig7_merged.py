"""F7 — Figure 7: the merged synchronization constraint set SC = {A, S, P}.

All four dependency dimensions represented uniformly as DSCL happen-before
constraints (Section 4.2): 39 unique constraints over 14 activities and 9
external ports.  The benchmark times the merge (dependency set -> DSCL ->
constraint set).
"""

from __future__ import annotations

from repro.dscl.compiler import compile_dependencies


def test_fig7_merged_constraints(benchmark, purchasing, artifact_sink):
    process, dependencies = purchasing

    compiled = benchmark(compile_dependencies, process, dependencies)

    merged = compiled.sc
    assert len(merged) == 39
    assert len(merged.activities) == 14
    assert len(merged.externals) == 9

    lines = [
        "Figure 7 - synchronization constraints for the Purchasing process",
        "SC = {A, S, P}: |A|=%d internal activities, |S|=%d service ports,"
        % (len(merged.activities), len(merged.externals)),
        "|P|=%d constraints (40 dependencies, one data/cooperation duplicate)"
        % len(merged),
        "",
        merged.pretty(),
    ]
    artifact_sink("fig7_merged", "\n".join(lines))
