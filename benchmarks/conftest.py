"""Shared fixtures and the artifact sink for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures (or one of
the extension experiments in DESIGN.md).  Besides timing the relevant
pipeline stage with ``pytest-benchmark``, each bench writes its artifact —
the rows/series the paper reports — to ``benchmarks/artifacts/<name>.txt``
so the reproduction can be inspected after a run.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.core.pipeline import DSCWeaver, extract_all_dependencies
from repro.workloads.purchasing import (
    build_purchasing_process,
    purchasing_cooperation_dependencies,
)

ARTIFACT_DIR = pathlib.Path(__file__).parent / "artifacts"


@pytest.fixture(scope="session")
def artifact_sink():
    ARTIFACT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        path = ARTIFACT_DIR / ("%s.txt" % name)
        path.write_text(text.rstrip() + "\n", encoding="utf-8")

    return write


@pytest.fixture(scope="session")
def purchasing():
    process = build_purchasing_process()
    dependencies = extract_all_dependencies(
        process, cooperation=purchasing_cooperation_dependencies(process)
    )
    return process, dependencies


@pytest.fixture(scope="session")
def purchasing_result(purchasing):
    process, dependencies = purchasing
    return DSCWeaver().weave(process, dependencies)
