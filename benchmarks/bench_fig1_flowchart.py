"""F1 — Figure 1: the Purchasing process flowchart (model structure).

Regenerates the structural content of the flowchart — activities grouped
by subprocess, the services they interact with, and the conditional
branch — and times model construction.
"""

from __future__ import annotations

from repro.workloads.purchasing import SUCCESS_BRANCH, build_purchasing_process


def test_fig1_process_structure(benchmark, artifact_sink):
    process = benchmark(build_purchasing_process)

    assert len(process.activities) == 14
    assert {s.name for s in process.services} == {
        "Credit",
        "Purchase",
        "Ship",
        "Production",
    }
    branch = process.branches[0]
    assert branch.guard == "if_au"
    assert set(branch.cases["T"]) == set(SUCCESS_BRANCH)

    lines = ["Figure 1 - the Purchasing process", ""]
    lines.append("services:")
    for service in process.services:
        flags = []
        if service.asynchronous:
            flags.append("async")
        if service.sequential:
            flags.append("state-aware/sequential")
        lines.append(
            "   %-11s ports=%s %s"
            % (
                service.name,
                [p.name for p in service.all_ports],
                " ".join(flags),
            )
        )
    lines.append("")
    lines.append("activities:")
    for activity in process.activities:
        port = " @%s" % activity.port.port if activity.port else ""
        io = []
        if activity.reads:
            io.append("reads %s" % ",".join(sorted(activity.reads)))
        if activity.writes:
            io.append("writes %s" % ",".join(sorted(activity.writes)))
        lines.append(
            "   %-18s %-8s%s  %s"
            % (activity.name, activity.kind.value, port, "; ".join(io))
        )
    lines.append("")
    lines.append(
        "branch on if_au: T -> {%s}; F -> {set_oi}; join replyClient_oi"
        % ", ".join(branch.cases["T"])
    )
    artifact_sink("fig1_flowchart", "\n".join(lines))
