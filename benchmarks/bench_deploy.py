"""Hot-redeploy benchmarks: incremental re-minimization, swap latency,
and crash-during-swap recovery.

Three fronts, all written to ``BENCH_deploy.json`` at the repository
root (uploaded by the CI ``deploy-smoke`` job):

* **rebase vs cold** — ``ProgramRegistry.redeploy`` on synthetic weaves
  at n ∈ {40, 120, 300}, three edit shapes.  Removing a redundant
  declared edge (the behavior-preserving edit of a zero-downtime
  redeploy) hits the session's replay fast path: the recorded pass
  already proved the edge redundant, so the minimal set and every other
  decision carry over with no closure work.  Additions and minimal-edge
  removals run the general two-tier region replay.
* **swap latency** — classify-and-apply cost of one v1 -> v2 hot swap
  with 10k in-flight purchasing cases, plus the migration counters.
* **recovery curve** — crash injection at increasing depths inside the
  swap window (after ``dep:begin``), each recovered via ``resume_swap``
  and driven to completion; every point must land on the uncrashed
  run's exact final states and version map.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro.core.constraints import Constraint
from repro.core.pipeline import DSCWeaver
from repro.deploy import MigrationEngine, ProgramRegistry, execute_swap, resume_swap
from repro.runtime.coordinator import Runtime
from repro.runtime.journal import SimulatedCrash, read_journal
from repro.workloads.synthetic import SyntheticSpec, generate_dependency_set

SIZES = [40, 120, 300]
IN_FLIGHT = 10_000
#: how deep into the swap window (records past dep:begin) each crash lands.
CRASH_DEPTHS = [1, 3, 6, 10]

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_deploy.json"

REDUNDANT_EDGE = Constraint("recClient_po", "invPurchase_po")


def _best_of(repeats, fn, *args, **kwargs):
    best = None
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn(*args, **kwargs)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


@pytest.fixture(scope="module")
def synthetic_weaves():
    weaves = {}
    for n_activities in SIZES:
        process, dependencies = generate_dependency_set(
            SyntheticSpec(
                n_activities=n_activities,
                n_services=4,
                n_branches=2,
                coop_density=0.8,
                seed=11,
            )
        )
        weaves[n_activities] = DSCWeaver().weave(process, dependencies)
    return weaves


def _edit_shapes(weave):
    """``label -> (added, removed)`` for one weave: the three edit kinds."""
    registry = ProgramRegistry.from_weave(weave)
    declared = registry.current.declared
    minimal_keys = {
        (c.source, c.target, c.condition) for c in registry.current.minimal.constraints
    }
    redundant = [
        c for c in declared.constraints
        if (c.source, c.target, c.condition) not in minimal_keys
    ]
    kept = [
        c for c in declared.constraints
        if (c.source, c.target, c.condition) in minimal_keys
    ]
    declared_keys = {(c.source, c.target, c.condition) for c in declared.constraints}
    names = list(declared.activities)
    addition = None
    for i, source in enumerate(names):
        for target in names[i + 1:]:
            if (source, target, None) not in declared_keys:
                addition = Constraint(source, target)
                break
        if addition is not None:
            break
    return {
        "remove_redundant": ((), (redundant[0],)),
        "remove_minimal": ((), (kept[len(kept) // 2],)),
        "add_edge": ((addition,), ()),
    }


def _redeploy_seconds(weave, added, removed, cold):
    best = None
    for _ in range(3):
        registry = ProgramRegistry.from_weave(weave)
        result = registry.redeploy(added=added, removed=removed, cold=cold)
        best = (
            result.minimize_seconds
            if best is None
            else min(best, result.minimize_seconds)
        )
    return best


def _rebase_rows(synthetic_weaves):
    rows = []
    for n_activities in SIZES:
        weave = synthetic_weaves[n_activities]
        for label, (added, removed) in _edit_shapes(weave).items():
            incremental = _redeploy_seconds(weave, added, removed, cold=False)
            cold = _redeploy_seconds(weave, added, removed, cold=True)
            rows.append(
                {
                    "n_activities": n_activities,
                    "edit": label,
                    "incremental_seconds": round(incremental, 6),
                    "cold_seconds": round(cold, 6),
                    "speedup": round(cold / incremental, 1),
                }
            )
    return rows


def _plans(count):
    return {
        "case-%05d" % i: {"if_au": "T" if i % 2 == 0 else "F"}
        for i in range(count)
    }


def _purchasing_versions(purchasing_result):
    registry = ProgramRegistry.from_weave(purchasing_result)
    result = registry.redeploy(removed=(REDUNDANT_EDGE,))
    return registry.version(1), result.version


def _swap_latency(purchasing_result, tmp_path):
    old, new = _purchasing_versions(purchasing_result)
    runtime = Runtime(old.program, journal_path=str(tmp_path / "latency.jsonl"))
    runtime.submit_batch(_plans(IN_FLIGHT))
    runtime.run_until_completed(1)
    in_flight = len(runtime.resident_cases())
    engine = MigrationEngine(old, new)
    started = time.perf_counter()
    plan = execute_swap(runtime, engine)
    swap_seconds = time.perf_counter() - started
    report = runtime.run()
    assert report.metrics.completed == IN_FLIGHT
    return {
        "in_flight_cases": in_flight,
        "swap_seconds": round(swap_seconds, 4),
        "cases_per_second": round(in_flight / swap_seconds, 1),
        "upgraded": plan.upgraded,
        "drained": plan.drained,
        "rejected": plan.rejected,
    }


def _recovery_curve(purchasing_result, tmp_path):
    old, new = _purchasing_versions(purchasing_result)
    cases = 200

    def serve(path, crash_after=None):
        runtime = Runtime(
            old.program, journal_path=path, crash_after=crash_after
        )
        runtime.submit_batch(_plans(cases))
        runtime.run_until_completed(cases // 3)
        plan = execute_swap(runtime, MigrationEngine(old, new))
        report = runtime.run()
        return plan, report

    clean_path = str(tmp_path / "clean.jsonl")
    _, clean = serve(clean_path)
    clean_states = {c: r.status for c, r in clean.results.items()}
    lines = pathlib.Path(clean_path).read_text().splitlines()
    begin_at = next(i for i, line in enumerate(lines) if '"rt":"dep"' in line)

    points = []
    for depth in CRASH_DEPTHS:
        path = str(tmp_path / ("crash-%d.jsonl" % depth))
        try:
            serve(path, crash_after=begin_at + depth)
        except SimulatedCrash:
            pass
        else:  # pragma: no cover - crash point must be inside the run
            raise AssertionError("crash at depth %d never fired" % depth)
        started = time.perf_counter()
        state = read_journal(path, strict=False)
        assert state.pending_deploy() is not None
        runtime = Runtime.recover(
            path,
            old.program,
            programs={old.version: old.program, new.version: new.program},
            state=state,
        )
        plan = resume_swap(runtime, MigrationEngine(old, new), state)
        report = runtime.run()
        recovery_seconds = time.perf_counter() - started
        assert {c: r.status for c, r in report.results.items()} == clean_states
        assert dict(report.versions) == dict(clean.versions)
        points.append(
            {
                "records_past_begin": depth,
                "journaled_decisions": sum(
                    1 for d in state.deploys if d.get("kind") == "assign"
                ),
                "recovered_decisions": len(plan.decisions) if plan else 0,
                "recovery_seconds": round(recovery_seconds, 4),
            }
        )
    return points


def test_emit_bench_deploy_json(synthetic_weaves, purchasing_result, tmp_path):
    """Machine-readable redeploy record (see module docstring)."""
    rows = _rebase_rows(synthetic_weaves)
    latency = _swap_latency(purchasing_result, tmp_path)
    curve = _recovery_curve(purchasing_result, tmp_path)
    payload = {
        "benchmark": "deploy_hot_swap",
        "description": (
            "Incremental redeploy re-minimization vs cold, one-swap latency "
            "at 10k in-flight purchasing cases, and crash-during-swap "
            "recovery depth curve."
        ),
        "rebase_vs_cold": rows,
        "swap_latency": latency,
        "recovery_curve": curve,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    # Acceptance bar: the behavior-preserving edit is >= 3x faster
    # incrementally than cold at n=120 (it rides the replay fast path).
    headline = next(
        r for r in rows
        if r["n_activities"] == 120 and r["edit"] == "remove_redundant"
    )
    assert headline["speedup"] >= 3.0, headline
    # Every crash depth recovered to the clean outcome (asserted above)
    # and every in-flight case was migrated or drained, none lost.
    assert latency["upgraded"] + latency["drained"] == latency["in_flight_cases"]
    assert latency["rejected"] == 0
