"""S8 — object-centric serving: co-sharded vs random-sharded fan-out,
and recovery time for partially satisfied cross-case barriers.

The orders workload fans each order object out into ``1 + fan_out``
cases tied together by the ``all:item.pack_item->order.ship_order``
barrier.  Two placements serve identical loads:

* **co-sharded** — every family (order parent plus its items) lands on
  one shard via the shared crc32 shard key, so barrier traffic stays
  shard-local;
* **random-sharded** — cases hash by case id, splitting families across
  shards and routing every obligation through the cross-shard wait
  index.

Both must produce bit-identical final states and per-object obligation
counters (placement is never allowed to change results); the record
pins that co-sharding is at least as fast at every fan-out.  The
recovery rows crash a journaled run at increasing depths and time
``Runtime.recover`` + re-run back to the baseline states.

``test_emit_bench_objects_json`` writes the machine-readable record to
``BENCH_objects.json`` at the repository root (uploaded by the CI
``objects-smoke`` job).  ``BENCH_OBJECTS_FAN_OUTS`` (default
``10,100,1000``) and ``BENCH_OBJECTS_ORDERS`` (default 4) scale the
sweep; CI runs a small configuration.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from repro.core.pipeline import DSCWeaver
from repro.runtime import Runtime, SimulatedCrash, program_from_weave
from repro.workloads.orders import (
    build_orders_process,
    orders_dependency_set,
    orders_object_spec,
    orders_plans,
)

FAN_OUTS = tuple(
    int(raw)
    for raw in os.environ.get("BENCH_OBJECTS_FAN_OUTS", "10,100,1000").split(",")
)
ORDERS = int(os.environ.get("BENCH_OBJECTS_ORDERS", "4"))
SHARDS = 4
ROUNDS = int(os.environ.get("BENCH_OBJECTS_ROUNDS", "7"))
RECOVERY_FRACTIONS = (0.25, 0.5, 0.75)

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_objects.json"


@pytest.fixture(scope="module")
def program():
    result = DSCWeaver().weave(build_orders_process(), orders_dependency_set())
    return program_from_weave(result, "minimal", target="runtime")


def _serve(program, fan_out, co_shard, **options):
    plans, bindings = orders_plans(ORDERS, fan_out)
    runtime = Runtime(
        program,
        objects=orders_object_spec(),
        co_shard=co_shard,
        shards=SHARDS,
        **options,
    )
    runtime.submit_batch(plans, bindings=bindings)
    report = runtime.run()
    counters = runtime.object_counters()
    runtime.close()
    return report, counters


def _paired_best(program, fan_out, rounds=ROUNDS):
    """Interleaved best-of walls for both placements.

    Alternating co-sharded and random-sharded rounds (after one warmup
    each) keeps cache/allocator drift from biasing either side; the
    per-placement minimum over ``rounds`` is the stable wall estimate.
    Returns ``(best_co, co_report, co_counters, best_rand, rand_report,
    rand_counters)``.
    """
    _serve(program, fan_out, co_shard=True)
    _serve(program, fan_out, co_shard=False)
    best_co = best_rand = None
    co_report = co_counters = rand_report = rand_counters = None
    for _ in range(rounds):
        co_report, co_counters = _serve(program, fan_out, co_shard=True)
        rand_report, rand_counters = _serve(program, fan_out, co_shard=False)
        co_wall = co_report.metrics.wall_seconds
        rand_wall = rand_report.metrics.wall_seconds
        best_co = co_wall if best_co is None else min(best_co, co_wall)
        best_rand = rand_wall if best_rand is None else min(best_rand, rand_wall)
    return best_co, co_report, co_counters, best_rand, rand_report, rand_counters


@pytest.mark.benchmark(min_rounds=3, max_time=2.0)
def test_co_sharded_serving_throughput(benchmark, program, artifact_sink):
    fan_out = FAN_OUTS[0]

    def run():
        return _serve(program, fan_out, co_shard=True)

    report, _counters = benchmark(run)
    cases = ORDERS * (fan_out + 1)
    assert report.metrics.completed == cases
    assert report.metrics.barriers_released == ORDERS
    artifact_sink(
        "s8_objects_throughput",
        "S8 object-centric serving, co-sharded — %d orders x fan-out %d "
        "-> %d cases on %d shards, %d barriers released"
        % (ORDERS, fan_out, cases, SHARDS, report.metrics.barriers_released),
    )


def test_emit_bench_objects_json(program, tmp_path, artifact_sink):
    """Machine-readable S8 placement/recovery record (module docstring)."""
    rows = []
    for fan_out in FAN_OUTS:
        cases = ORDERS * (fan_out + 1)
        best_co, co_report, co_counters, best_rand, rand_report, rand_counters = (
            _paired_best(program, fan_out)
        )

        assert co_report.metrics.completed == cases
        assert rand_report.metrics.completed == cases
        # placement must never change results
        assert co_report.final_states() == rand_report.final_states()
        assert co_counters == rand_counters
        # co-sharding keeps every family whole; random splits at least one
        assert all(
            assigned % (fan_out + 1) == 0
            for assigned in co_report.metrics.shard_assigned
        )

        rows.append(
            {
                "fan_out": fan_out,
                "orders": ORDERS,
                "cases": cases,
                "shards": SHARDS,
                "co_wall_seconds": round(best_co, 6),
                "random_wall_seconds": round(best_rand, 6),
                "co_cases_per_second": round(cases / best_co, 1),
                "random_cases_per_second": round(cases / best_rand, 1),
                "speedup": round(best_rand / best_co, 3),
                "latency_p95": co_report.metrics.latency_p95,
                "barriers_released": co_report.metrics.barriers_released,
                "identical_final_states": True,
                "identical_counters": True,
            }
        )

    # Recovery-time curve at the smallest fan-out: crash a journaled run
    # at increasing depths, then time recover + re-run to completion.
    fan_out = FAN_OUTS[0]
    baseline_path = str(tmp_path / "baseline.jsonl")
    baseline, baseline_counters = _serve(
        program, fan_out, co_shard=True, journal_path=baseline_path
    )
    records = baseline.metrics.journal_records
    admits = ORDERS * (fan_out + 1)
    recovery = []
    for fraction in RECOVERY_FRACTIONS:
        crash_after = max(admits + 1, int(records * fraction))
        path = str(tmp_path / ("crash-%d.jsonl" % crash_after))
        crashing = Runtime(
            program,
            objects=orders_object_spec(),
            co_shard=True,
            shards=SHARDS,
            journal_path=path,
            crash_after=crash_after,
        )
        plans, bindings = orders_plans(ORDERS, fan_out)
        crashing.submit_batch(plans, bindings=bindings)
        with pytest.raises(SimulatedCrash):
            crashing.run()

        started = time.perf_counter()
        recovered = Runtime.recover(
            path, program, objects=orders_object_spec(), shards=SHARDS
        )
        report = recovered.run()
        seconds = time.perf_counter() - started
        counters = recovered.object_counters()
        recovered.close()

        assert report.final_states() == baseline.final_states()
        assert counters == baseline_counters
        recovery.append(
            {
                "crash_after_records": crash_after,
                "journal_records": records,
                "crash_fraction": round(crash_after / records, 3),
                "recovery_seconds": round(seconds, 6),
                "identical_final_states": True,
                "identical_counters": True,
            }
        )

    payload = {
        "benchmark": "objects_placement",
        "description": (
            "Co-sharded vs random-sharded serving of the orders fan-out "
            "(identical final states and per-object obligation counters "
            "under both placements), plus the recovery-time curve for "
            "journaled runs crashed mid fan-out."
        ),
        "orders": ORDERS,
        "shards": SHARDS,
        "rounds": ROUNDS,
        "rows": rows,
        "recovery": recovery,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    summary = [
        "fan-out=%-5d cases=%-6d co=%.0f cases/s random=%.0f cases/s "
        "(%.2fx) p95=%.1f"
        % (
            r["fan_out"],
            r["cases"],
            r["co_cases_per_second"],
            r["random_cases_per_second"],
            r["speedup"],
            r["latency_p95"],
        )
        for r in rows
    ] + [
        "recover@%.2f (%d of %d records) -> %.3fs"
        % (
            r["crash_fraction"],
            r["crash_after_records"],
            r["journal_records"],
            r["recovery_seconds"],
        )
        for r in recovery
    ]
    artifact_sink("s8_objects_placement", "\n".join(summary))

    # The acceptance bar: co-sharding is at least as fast at every
    # fan-out, and every recovery lands on the baseline states/counters.
    for row in rows:
        assert row["co_cases_per_second"] >= row["random_cases_per_second"], row
    for row in recovery:
        assert row["identical_final_states"] and row["identical_counters"]
