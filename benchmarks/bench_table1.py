"""T1 — Table 1: the categorized dependency set of the Purchasing process.

Paper values: 9 data + 10 control + 6 cooperation + 15 service = 40
dependencies.  The benchmark times the full four-dimension extraction.
"""

from __future__ import annotations

from repro.core.pipeline import extract_all_dependencies
from repro.workloads.purchasing import (
    build_purchasing_process,
    purchasing_cooperation_dependencies,
)


def test_table1_dependency_extraction(benchmark, artifact_sink):
    process = build_purchasing_process()
    cooperation = purchasing_cooperation_dependencies(process)

    dependencies = benchmark(
        extract_all_dependencies, process, cooperation=cooperation
    )

    counts = dependencies.counts()
    assert counts == {
        "data": 9,
        "control": 10,
        "service": 15,
        "cooperation": 6,
        "total": 40,
    }
    artifact_sink(
        "table1",
        "Table 1 - The Purchasing process dependencies\n"
        "(paper: 9 data, 10 control, 6 cooperative, 15 service)\n\n"
        + dependencies.as_table(),
    )
