"""S4 — Petri-net validation cost and outcomes.

Times the constraint-set -> workflow-net translation plus the full
behavioral soundness check (reachability-graph exploration) on each paper
workload and on growing synthetic processes.  Every woven minimal set must
validate sound; the purchasing state space has 166 reachable markings and
is identical for the full and minimal sets.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import DSCWeaver, extract_all_dependencies
from repro.petri.from_constraints import constraint_set_to_petri_net
from repro.petri.soundness import check_soundness
from repro.workloads.loan import build_loan_process, loan_cooperation
from repro.workloads.synthetic import SyntheticSpec, generate_dependency_set
from repro.workloads.travel import build_travel_process, travel_cooperation


def _validate(sc):
    net, _marking = constraint_set_to_petri_net(sc)
    return check_soundness(net)


def test_petri_validation_purchasing(benchmark, purchasing_result, artifact_sink):
    report = benchmark(_validate, purchasing_result.minimal)
    assert report.is_sound
    assert report.reachable_markings == 166

    full_report = _validate(purchasing_result.asc)
    artifact_sink(
        "s4_petri_purchasing",
        "S4 Petri validation (Purchasing)\n"
        "minimal: sound=%s, markings=%d\n"
        "full:    sound=%s, markings=%d (identical behavior)"
        % (
            report.is_sound,
            report.reachable_markings,
            full_report.is_sound,
            full_report.reachable_markings,
        ),
    )


@pytest.mark.parametrize(
    "name,builder,cooperation",
    [
        ("loan", build_loan_process, loan_cooperation),
        ("travel", build_travel_process, travel_cooperation),
    ],
)
def test_petri_validation_workloads(benchmark, name, builder, cooperation, artifact_sink):
    process = builder()
    result = DSCWeaver().weave(
        process,
        extract_all_dependencies(process, cooperation=cooperation(process).dependencies),
    )
    report = benchmark(_validate, result.minimal)
    assert report.is_sound
    artifact_sink(
        "s4_petri_%s" % name,
        "S4 Petri validation (%s): sound=%s, markings=%d, constraints=%d"
        % (name, report.is_sound, report.reachable_markings, len(result.minimal)),
    )


@pytest.mark.parametrize("n_activities", [14, 18])
def test_petri_validation_synthetic(benchmark, n_activities, artifact_sink):
    """Exhaustive soundness checking is exponential in the process's genuine
    parallelism, so the synthetic sweep stays at sizes whose full state
    space fits the explorer; dense cooperation keeps interleavings bounded."""
    process, dependencies = generate_dependency_set(
        SyntheticSpec(
            n_activities=n_activities,
            n_services=2,
            n_branches=1,
            branch_width=4,
            coop_density=1.2,
            seed=5,
        )
    )
    result = DSCWeaver().weave(process, dependencies)
    report = benchmark(_validate, result.minimal)
    assert report.is_sound
    artifact_sink(
        "s4_petri_synthetic_%d" % n_activities,
        "S4 Petri validation (synthetic n=%d): sound=%s, markings=%d"
        % (n_activities, report.is_sound, report.reachable_markings),
    )
