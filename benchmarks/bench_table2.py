"""T2 — Table 2: dependency counts before and after optimization.

Paper values: 40 original constraints (Table 1), 23 removed.  Our pipeline
additionally reports the intermediate stages: 39 after the uniform DSCL
merge (one data/cooperation duplicate), 30 after service translation, 17
minimal.  The benchmark times the complete weave.
"""

from __future__ import annotations

from repro.core.pipeline import DSCWeaver


def test_table2_full_weave(benchmark, purchasing, artifact_sink):
    process, dependencies = purchasing
    weaver = DSCWeaver()

    result = benchmark(weaver.weave, process, dependencies)

    report = result.report
    assert report.raw_total == 40
    assert report.merged == 39
    assert report.translated == 30
    assert report.minimal == 17
    assert report.removed == 23  # the paper's headline number

    artifact_sink(
        "table2",
        "Table 2 - constraints before/after dependency inference\n"
        "(paper: 23 constraints removed from the original 40)\n\n"
        + report.as_table(),
    )
