"""S9 — runtime scale: mask-compiled serving and multi-process workers.

The ``BENCH_runtime.json`` trajectory (ROADMAP item 1).  Four fronts,
all asserting bit-identical final states between configurations:

* **mask vs object** — the dirty-set bitmask fast path
  (``Runtime(fast=True)``, the default) against the object-walking
  reference evaluator on the same loads.  The gap widens with process
  width: the reference fixpoint re-walks every activity per pass while
  the mask path re-checks only activities incident to a state change.
* **worker scaling** — one case load served by ``WorkerPool`` at
  increasing worker counts (fork-based processes, no journal), pinned
  against the single-process runtime's states.  The record carries
  ``cpu_count``: wall-clock speedup is only asserted when the box has
  more than one core (on a single core the pin is bounded overhead).
* **big run** — a 100k-concurrent-case load (CI runs a small config)
  over 4 workers, reporting throughput and virtual p50/p95 latency.
* **recovery curves** — a journaled multi-worker run crashed at
  25/50/75% depth, then recovered sequentially (``processes=False``)
  and in parallel, timing both against the uninterrupted states.

Group-commit rows time ``flush_every`` 1/8/64 on a journaled
single-process run (satellite of the same PR).

``test_emit_bench_runtime_json`` writes the machine-readable record to
``BENCH_runtime.json`` at the repository root (uploaded by the CI
``runtime-perf-smoke`` job).  Scale knobs: ``BENCH_RUNTIME_SCALE_CASES``
(default 1000), ``BENCH_RUNTIME_SCALE_BIG`` (default 100000),
``BENCH_RUNTIME_SCALE_WORKERS`` (default ``1,2,4``),
``BENCH_RUNTIME_SCALE_ROUNDS`` (default 3).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from repro.core.pipeline import DSCWeaver, extract_all_dependencies
from repro.runtime import Runtime, SimulatedCrash, WorkerPool, program_from_weave
from repro.workloads.purchasing import (
    build_purchasing_process,
    purchasing_cooperation_dependencies,
)
from repro.workloads.synthetic import SyntheticSpec, generate_dependency_set

CASES = int(os.environ.get("BENCH_RUNTIME_SCALE_CASES", "1000"))
BIG_CASES = int(os.environ.get("BENCH_RUNTIME_SCALE_BIG", "100000"))
WORKER_COUNTS = tuple(
    int(raw)
    for raw in os.environ.get("BENCH_RUNTIME_SCALE_WORKERS", "1,2,4").split(",")
)
ROUNDS = int(os.environ.get("BENCH_RUNTIME_SCALE_ROUNDS", "3"))
SHARDS = 8
RECOVERY_FRACTIONS = (0.25, 0.5, 0.75)
FLUSH_SIZES = (1, 8, 64)

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_runtime.json"

#: workload -> (n_activities, case divisor).  Wider synthetic processes
#: amplify the full-scan cost of the reference evaluator; their loads are
#: scaled down so the object-path rounds stay tractable.
MASK_WORKLOADS = (
    ("purchasing", None, 1),
    ("synthetic-40", 40, 1),
    ("synthetic-160", 160, 5),
)


def _program(workload: str, n_activities):
    if workload == "purchasing":
        process = build_purchasing_process()
        dependencies = extract_all_dependencies(
            process, cooperation=purchasing_cooperation_dependencies(process)
        )
    else:
        process, dependencies = generate_dependency_set(
            SyntheticSpec(
                n_activities=n_activities, n_services=4, n_branches=2, seed=11
            )
        )
    result = DSCWeaver().weave(process, dependencies)
    return program_from_weave(result, "minimal", target="runtime")


def _case_plans(program, count):
    """Outcome plans enumerating guard-domain combinations (mixed radix)."""
    guards = program.guard_names()
    domains = {guard: program.outcome_domain(guard) for guard in guards}
    plans = {}
    for index in range(count):
        plan = {}
        shift = index
        for guard in guards:
            domain = domains[guard]
            plan[guard] = domain[shift % len(domain)]
            shift //= len(domain)
        plans["case-%05d" % index] = plan
    return plans


def _serve(program, plans, **options):
    runtime = Runtime(program, shards=SHARDS, **options)
    runtime.submit_batch(plans)
    report = runtime.run()
    runtime.close()
    return report


def _best_of(program, plans, rounds=ROUNDS, **options):
    best, report = None, None
    for _ in range(rounds):
        report = _serve(program, plans, **options)
        wall = report.metrics.wall_seconds
        best = wall if best is None else min(best, wall)
    return best, report


@pytest.fixture(scope="module")
def purchasing_program():
    return _program("purchasing", None)


@pytest.fixture(scope="module")
def purchasing_plans(purchasing_program):
    return _case_plans(purchasing_program, CASES)


@pytest.mark.benchmark(min_rounds=3, max_time=2.0)
def test_mask_path_throughput(benchmark, purchasing_program, purchasing_plans):
    """The headline timing: mask-compiled serving of the default workload."""
    report = benchmark.pedantic(
        _serve, args=(purchasing_program, purchasing_plans), rounds=ROUNDS,
        iterations=1,
    )
    assert report.metrics.completed == CASES


def test_worker_pool_matches_single_process(purchasing_program, purchasing_plans):
    """Partitioned multi-process serving never changes results."""
    single = _serve(purchasing_program, purchasing_plans)
    pool = WorkerPool(purchasing_program, workers=2)
    report = pool.serve(purchasing_plans)
    assert report.metrics.completed == CASES
    assert report.final_states() == single.final_states()


def test_emit_bench_runtime_json(tmp_path, purchasing_program, artifact_sink):
    summary = []

    # -- mask vs object reference, per workload ------------------------------
    mask_rows = []
    for label, n_activities, divisor in MASK_WORKLOADS:
        program = (
            purchasing_program
            if label == "purchasing"
            else _program(label, n_activities)
        )
        plans = _case_plans(program, max(50, CASES // divisor))
        best_fast, fast_report = _best_of(program, plans)
        best_ref, ref_report = _best_of(program, plans, fast=False)
        assert fast_report.metrics.completed == len(plans)
        assert fast_report.final_states() == ref_report.final_states()
        # identical transition counts: the fast path replays the exact
        # event sequence, it only finds it with less work
        assert fast_report.metrics.transitions == ref_report.metrics.transitions
        mask_rows.append(
            {
                "workload": label,
                "activities": len(program.activities),
                "cases": len(plans),
                "mask_wall_seconds": round(best_fast, 6),
                "object_wall_seconds": round(best_ref, 6),
                "mask_cases_per_second": round(len(plans) / best_fast, 1),
                "object_cases_per_second": round(len(plans) / best_ref, 1),
                "speedup": round(best_ref / best_fast, 2),
                "identical_final_states": True,
            }
        )
        summary.append(
            "mask vs object %-14s %4d acts: %.0f vs %.0f cases/s (%.2fx)"
            % (
                label,
                len(program.activities),
                len(plans) / best_fast,
                len(plans) / best_ref,
                best_ref / best_fast,
            )
        )

    # -- worker-count scaling ------------------------------------------------
    cpu_count = os.cpu_count() or 1
    scale_program = _program("synthetic-80", 80)
    scale_plans = _case_plans(scale_program, CASES)
    single = _serve(scale_program, scale_plans)
    worker_rows = []
    for workers in WORKER_COUNTS:
        best = None
        report = None
        for _ in range(ROUNDS):
            pool = WorkerPool(scale_program, workers=workers)
            started = time.perf_counter()
            report = pool.serve(scale_plans)
            wall = time.perf_counter() - started
            best = wall if best is None else min(best, wall)
        assert report is not None and best is not None
        assert report.metrics.completed == len(scale_plans)
        assert report.final_states() == single.final_states()
        worker_rows.append(
            {
                "workers": workers,
                "cases": len(scale_plans),
                "wall_seconds": round(best, 6),
                "cases_per_second": round(len(scale_plans) / best, 1),
                "identical_final_states": True,
            }
        )
        summary.append(
            "workers=%d: %.0f cases/s (%.3fs) [%d cpu(s)]"
            % (workers, len(scale_plans) / best, best, cpu_count)
        )
    base_rate = worker_rows[0]["cases_per_second"]
    for row in worker_rows:
        row["speedup_vs_1"] = round(row["cases_per_second"] / base_rate, 2)

    # -- the big run ---------------------------------------------------------
    big_plans = _case_plans(purchasing_program, BIG_CASES)
    big_pool = WorkerPool(purchasing_program, workers=4)
    started = time.perf_counter()
    big_report = big_pool.serve(big_plans)
    big_wall = time.perf_counter() - started
    assert big_report.metrics.completed == BIG_CASES
    big_row = {
        "cases": BIG_CASES,
        "workers": 4,
        "wall_seconds": round(big_wall, 3),
        "cases_per_second": round(BIG_CASES / big_wall, 1),
        "latency_p50": big_report.metrics.latency_p50,
        "latency_p95": big_report.metrics.latency_p95,
        "transitions": big_report.metrics.transitions,
    }
    summary.append(
        "big run: %d cases over 4 workers in %.1fs (%.0f cases/s, "
        "p50=%.1f p95=%.1f)"
        % (
            BIG_CASES,
            big_wall,
            BIG_CASES / big_wall,
            big_report.metrics.latency_p50,
            big_report.metrics.latency_p95,
        )
    )
    del big_plans, big_report

    # -- recovery curves: sequential vs parallel segment recovery ------------
    recovery_cases = max(200, CASES)
    recovery_plans = _case_plans(purchasing_program, recovery_cases)
    recovery_workers = 2
    baseline_dir = str(tmp_path / "baseline")
    baseline_pool = WorkerPool(
        purchasing_program, workers=recovery_workers, journal_dir=baseline_dir
    )
    baseline = baseline_pool.serve(recovery_plans)
    segment_records = []
    for index in range(recovery_workers):
        path = pathlib.Path(baseline_dir) / ("journal.%d.jsonl" % index)
        lines = path.read_text(encoding="utf-8").splitlines()
        segment_records.append(
            (len(lines), sum(1 for line in lines if '"rt":"admit"' in line))
        )
    recovery_rows = []
    for fraction in RECOVERY_FRACTIONS:
        # one crash depth per worker: the whole-box power-loss model, past
        # every admit record so no case is lost to the WAL window
        crash_after = {
            index: max(admits + 1, int(records * fraction))
            for index, (records, admits) in enumerate(segment_records)
        }
        for mode, processes in (("sequential", False), ("parallel", True)):
            crash_dir = str(tmp_path / ("crash-%d-%s" % (fraction * 100, mode)))
            crashing = WorkerPool(
                purchasing_program,
                workers=recovery_workers,
                journal_dir=crash_dir,
                crash_after=crash_after,
            )
            with pytest.raises(SimulatedCrash):
                crashing.serve(recovery_plans)
            started = time.perf_counter()
            report = WorkerPool.recover(
                crash_dir, purchasing_program, processes=processes
            )
            seconds = time.perf_counter() - started
            assert report.final_states() == baseline.final_states()
            recovery_rows.append(
                {
                    "crash_fraction": fraction,
                    "mode": mode,
                    "workers": recovery_workers,
                    "recovery_seconds": round(seconds, 6),
                    "identical_final_states": True,
                }
            )
            summary.append(
                "recover@%.2f %s: %.3fs" % (fraction, mode, seconds)
            )

    # -- journal group commit ------------------------------------------------
    commit_rows = []
    commit_reference = None
    for flush_every in FLUSH_SIZES:
        path = str(tmp_path / ("flush-%d.jsonl" % flush_every))
        best, report = _best_of(
            purchasing_program,
            recovery_plans,
            journal_path=path,
            flush_every=flush_every,
        )
        if commit_reference is None:
            commit_reference = report.final_states()
        else:
            assert report.final_states() == commit_reference
        commit_rows.append(
            {
                "flush_every": flush_every,
                "cases": recovery_cases,
                "wall_seconds": round(best, 6),
                "cases_per_second": round(recovery_cases / best, 1),
                "journal_records": report.metrics.journal_records,
            }
        )
        summary.append(
            "group commit flush_every=%-3d: %.0f cases/s"
            % (flush_every, recovery_cases / best)
        )

    payload = {
        "benchmark": "runtime_scale",
        "description": (
            "Mask-compiled serving vs the object-walking reference "
            "evaluator, multi-process worker scaling, a big concurrent "
            "run with latency quantiles, sequential-vs-parallel "
            "segmented-journal recovery, and journal group commit — "
            "identical final states asserted in every configuration."
        ),
        "cases": CASES,
        "shards": SHARDS,
        "rounds": ROUNDS,
        "cpu_count": cpu_count,
        "mask_vs_object": mask_rows,
        "worker_scaling": worker_rows,
        "big_run": big_row,
        "recovery": recovery_rows,
        "group_commit": commit_rows,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    artifact_sink("s9_runtime_scale", "\n".join(summary))

    # Acceptance: the widest workload shows the order-of-magnitude class
    # win (>=5x locally; >=3x floor absorbs CI noise).  Adding workers
    # must speed up the pool when the box has cores to scale onto; on a
    # single core, partitioning the same compute across processes cannot
    # beat one process, so the pin is bounded pool overhead instead.
    assert max(row["speedup"] for row in mask_rows) >= 3.0, mask_rows
    if len(worker_rows) > 1:
        if cpu_count > 1:
            fastest = max(row["cases_per_second"] for row in worker_rows[1:])
            assert fastest > base_rate, worker_rows
        else:
            slowest = min(row["cases_per_second"] for row in worker_rows[1:])
            assert slowest >= base_rate * 0.5, worker_rows
