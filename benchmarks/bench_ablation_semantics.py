"""S5 — ablations: equivalence semantics and translation variants.

1. **Equivalence semantics.**  Minimal-set sizes for the Purchasing
   process under the three closure semantics: strict (the paper's
   Definitions 3-5 taken literally) keeps 21 constraints; guard-aware (the
   mode that reproduces Table 2) keeps 17; pure reachability also lands on
   17 here because every conditional fact in this process is implied by an
   execution guard.
2. **Translation variants.**  With invoke-port contraction disabled (plain
   path bridging only), the Figure 8 edge ``invPurchase_po ->
   invPurchase_si`` is lost and the Purchase port protocol goes
   unenforced — visible as an under-specification against the full
   requirements.
"""

from __future__ import annotations

import pytest

from repro.core.closure import Semantics
from repro.core.minimize import minimize
from repro.core.translation import translate_service_dependencies
from repro.dscl.compiler import compile_dependencies
from repro.validation.coverage import compare_constraint_sets


@pytest.mark.parametrize(
    "semantics,expected",
    [
        (Semantics.STRICT, 21),
        (Semantics.GUARD_AWARE, 17),
        (Semantics.REACHABILITY, 17),
    ],
)
def test_ablation_semantics(
    benchmark, purchasing_result, semantics, expected, artifact_sink
):
    asc = purchasing_result.asc
    minimal = benchmark(minimize, asc, semantics)
    assert len(minimal) == expected
    artifact_sink(
        "s5_semantics_%s" % semantics.value.replace("-", "_"),
        "S5 semantics ablation (%s): %d -> %d constraints\n"
        "(guard-aware reproduces the paper's Table 2: 17 minimal, 23 removed)"
        % (semantics.value, len(asc), len(minimal)),
    )


def test_ablation_translation_without_contraction(
    benchmark, purchasing, purchasing_result, artifact_sink
):
    process, dependencies = purchasing
    merged = compile_dependencies(process, dependencies).sc

    result = benchmark(translate_service_dependencies, merged)  # no bindings

    assert not result.asc.has_constraint("invPurchase_po", "invPurchase_si")
    coverage = compare_constraint_sets(result.asc, purchasing_result.asc)
    assert ("invPurchase_po", "invPurchase_si") in coverage.missing

    artifact_sink(
        "s5_translation_bridging_only",
        "S5 translation ablation: plain bridging (no port contraction)\n"
        "constraints after translation: %d (with contraction: %d)\n"
        "missing requirements vs. the full translation: %s\n"
        "-> the state-aware Purchase protocol would be violated at runtime"
        % (
            len(result.asc),
            len(purchasing_result.asc),
            ", ".join("%s->%s" % pair for pair in coverage.missing),
        ),
    )
