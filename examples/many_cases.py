"""Serve thousands of concurrent cases through the sharded runtime.

The paper optimizes the constraint set of *one* process definition; this
example shows why that matters operationally: every admitted process
instance evaluates its ready set against the shared constraint program,
so a smaller set is directly more serving capacity.  The tour:

1. weave the Purchasing process and compile runtime programs for the
   minimal set and the full (pre-minimization) ASC;
2. admit a batch of cases with admission control engaged — excess offers
   wait in a bounded queue, overflow is shed with ``RT002`` warnings;
3. serve the same load against both programs: identical per-case final
   states, fewer constraint checks and more cases/sec for the minimal set;
4. crash the runtime mid-flight (journal fault injection) and recover:
   completed cases are adopted from the write-ahead journal, in-flight
   cases are re-executed deterministically, and the recovered run
   completes exactly the same case set;
5. serve over a lossy service channel with retry-with-timeout policies.

Run with::

    python examples/many_cases.py
"""

import os
import tempfile

from repro import DSCWeaver, extract_all_dependencies
from repro.runtime import (
    RetryPolicies,
    RetryPolicy,
    Runtime,
    SimulatedCrash,
    program_from_weave,
    read_journal,
)
from repro.workloads.purchasing import (
    build_purchasing_process,
    purchasing_cooperation_dependencies,
)

CASES = 2000


def case_plans(count):
    """Half the cases approve the purchase order, half decline it."""
    return {
        "order-%05d" % index: {"if_au": "T" if index % 2 == 0 else "F"}
        for index in range(count)
    }


def main() -> None:
    # 1. Weave once, compile one shared program per constraint set.
    process = build_purchasing_process()
    dependencies = extract_all_dependencies(
        process, cooperation=purchasing_cooperation_dependencies(process)
    )
    result = DSCWeaver().weave(process, dependencies)
    minimal = program_from_weave(result, "minimal", target="runtime")
    full = program_from_weave(result, "full", target="runtime")
    print(
        "compiled programs: minimal=%d constraints, full=%d constraints"
        % (len(minimal.constraints), len(full.constraints))
    )
    print()

    # 2. Admission control: bounded in-flight, bounded queue, load shedding.
    print("=== admission control (50 offers, 8 slots, queue of 20) ===")
    bounded = Runtime(minimal, shards=2, max_in_flight=8, max_queue=20)
    rejected = bounded.submit_batch(case_plans(50))
    report = bounded.run()
    print(
        "admitted %d, queued at peak %d, shed %d offer(s) with RT002"
        % (
            report.metrics.admitted,
            report.metrics.peak_queue_depth,
            len(rejected),
        )
    )
    print()

    # 3. The same load against both sets: same states, different cost.
    print("=== minimal vs full set, %d concurrent cases ===" % CASES)
    plans = case_plans(CASES)
    reports = {}
    throughput = {}
    for which, program in (("minimal", minimal), ("full", full)):
        best = None
        for _attempt in range(3):  # best-of-3 to smooth wall-clock noise
            runtime = Runtime(program, shards=8)
            runtime.submit_batch(plans)
            reports[which] = runtime.run()
            rate = reports[which].metrics.cases_per_second
            best = rate if best is None else max(best, rate)
        throughput[which] = best
    assert reports["minimal"].final_states() == reports["full"].final_states()
    for which, rep in reports.items():
        print(
            "%-7s  %6.0f cases/sec  %.2f checks/transition  p95 latency %.1f"
            % (
                which,
                throughput[which],
                rep.metrics.checks_per_transition,
                rep.metrics.latency_p95,
            )
        )
    print("per-case final states identical: yes")
    print()

    # 4. Crash mid-flight, then recover from the write-ahead journal.
    print("=== crash and recovery (200 cases) ===")
    small = case_plans(200)
    journal_path = os.path.join(tempfile.mkdtemp(), "wal.jsonl")
    crashed = Runtime(minimal, shards=4, journal_path=journal_path, crash_after=5000)
    try:
        crashed.submit_batch(small)
        crashed.run()
    except SimulatedCrash as crash:
        print("crashed after %d journal records" % crash.records_written)
    state = read_journal(journal_path)
    print(
        "journal: %d case(s) completed before the crash, %d in flight"
        % (len(state.completed()), len(state.in_flight()))
    )
    recovered = Runtime.recover(journal_path, minimal, shards=4)
    for case, outcomes in small.items():
        if case not in recovered.known_cases:
            recovered.submit(case, outcomes)
    report = recovered.run()
    recovered.close()
    assert report.completed_cases() == tuple(sorted(small))
    print(
        "recovered: adopted %d completed case(s), finished all %d "
        "with identical final states" % (report.metrics.recovered, len(small))
    )
    print()

    # 5. Lossy services: deterministic loss, retry-with-timeout, RT001.
    print("=== lossy channel (30% loss, 6 attempts, 500 cases) ===")
    policies = RetryPolicies(
        default=RetryPolicy(failure_rate=0.3, timeout=1.0, max_attempts=6)
    )
    lossy = Runtime(minimal, shards=8, policies=policies, seed=42)
    lossy.submit_batch(case_plans(500))
    lossy_report = lossy.run()
    print(
        "completed %d/%d with %d retries; p95 latency %.1f (vs %.1f lossless)"
        % (
            lossy_report.metrics.completed,
            500,
            lossy_report.metrics.retries,
            lossy_report.metrics.latency_p95,
            reports["minimal"].metrics.latency_p95,
        )
    )
    for diagnostic in lossy_report.diagnostics:
        print("  %s" % diagnostic.render())


if __name__ == "__main__":
    main()
