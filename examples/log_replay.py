"""Record, perturb and replay event logs through the conformance monitor.

The optimization story of the paper ends where execution begins: this
example closes the loop by checking *recorded executions* against the
woven constraint set:

1. weave the Purchasing process and compile conformance monitors for the
   full ASC and the minimal set;
2. record a two-case event log (one case per authorization branch) from
   simulator runs;
3. replay the clean log: both monitors agree the log is conformant, the
   minimal one at lower cost;
4. inject every supported perturbation kind and show each defect flagged
   with its expected ``CONF00x`` code;
5. feed a violating stream event-by-event, the way ``dscweaver monitor``
   consumes a live audit trail.

Run with::

    python examples/log_replay.py
"""

from repro import DSCWeaver, extract_all_dependencies
from repro.conformance import (
    ConformanceMonitor,
    log_from_traces,
    perturbation_corpus,
    program_from_weave,
    replay,
    verdicts_agree,
)
from repro.scheduler.engine import ConstraintScheduler
from repro.workloads.purchasing import (
    build_purchasing_process,
    purchasing_cooperation_dependencies,
)


def main() -> None:
    # 1. Weave and compile the monitors.
    process = build_purchasing_process()
    dependencies = extract_all_dependencies(
        process, cooperation=purchasing_cooperation_dependencies(process)
    )
    result = DSCWeaver().weave(process, dependencies)
    minimal = program_from_weave(result, which="minimal")
    full = program_from_weave(result, which="full")
    print(
        "compiled monitors: minimal=%d obligations, full=%d obligations"
        % (minimal.size, full.size)
    )
    print()

    # 2. Record one case per authorization branch.
    traces = {}
    for case, outcome in (("order-approved", "T"), ("order-rejected", "F")):
        run = ConstraintScheduler(process, result.minimal).run(
            outcomes={"if_au": outcome}
        )
        traces[case] = run.trace
    log = log_from_traces(traces)
    print(
        "recorded %d events across %d cases (JSONL: %d bytes)"
        % (len(log), len(log.cases()), len(log.to_jsonl()))
    )
    print()

    # 3. Clean replay: identical verdicts, cheaper minimal monitoring.
    minimal_report = replay(log, minimal)
    full_report = replay(log, full)
    print("=== clean replay ===")
    print(minimal_report.summary())
    print(
        "verdicts vs full set: %s | checks: minimal=%d full=%d"
        % (
            "identical" if verdicts_agree(minimal_report, full_report) else "DIFFERENT",
            minimal_report.checks,
            full_report.checks,
        )
    )
    print()

    # 4. Every perturbation kind is caught with its declared code.
    print("=== perturbation corpus ===")
    corpus = perturbation_corpus(
        log, constraints=minimal.constraints, guards=minimal.guards
    )
    for perturbed, perturbation in corpus:
        report = replay(perturbed, minimal)
        hits = report.counts_by_code()[perturbation.expected_code]
        print(
            "%-13s %-9s x%d  %s"
            % (perturbation.kind, perturbation.expected_code, hits, perturbation.description)
        )
    print()

    # 5. Online monitoring, one event at a time.
    print("=== streaming a swapped log ===")
    broken, _ = corpus[0]
    monitor = ConformanceMonitor(minimal)
    for event in broken:
        for diagnostic in monitor.feed(event):
            print("live alert at t=%.1f: %s" % (event.time, diagnostic.render()))
    monitor.finish()
    print(
        "monitored %d events with %d constraint inspections"
        % (monitor.events_fed, monitor.checks)
    )


if __name__ == "__main__":
    main()
