"""Quickstart: weave the paper's Purchasing process end to end.

Reproduces, in one script, the whole vertical flow of the paper on its
running example:

1. build the process model (Figure 1);
2. extract and categorize all four dependency dimensions (Table 1);
3. merge them into DSCL synchronization constraints (Figure 7);
4. translate service dependencies onto internal activities (Figure 8);
5. minimize (Figure 9 / Table 2: 40 -> 17 constraints, 23 removed);
6. validate through Petri-net soundness;
7. emit BPEL and execute both branches in the simulator.

Run with::

    python examples/quickstart.py
"""

from repro import DSCWeaver, extract_all_dependencies
from repro.petri.soundness import check_soundness
from repro.scheduler.engine import ConstraintScheduler
from repro.scheduler.metrics import max_concurrency
from repro.workloads.purchasing import (
    build_purchasing_process,
    purchasing_cooperation_dependencies,
)


def main() -> None:
    # 1-2. The process model and its categorized dependencies.
    process = build_purchasing_process()
    dependencies = extract_all_dependencies(
        process, cooperation=purchasing_cooperation_dependencies(process)
    )
    print("=== Table 1: categorized dependencies ===")
    print(dependencies.as_table())
    print()

    # 3-5. Merge, translate, minimize.
    result = DSCWeaver().weave(process, dependencies)
    print("=== Table 2: reduction report ===")
    print(result.report.as_table())
    print()

    print("=== Figure 8: translated service constraints (bold edges) ===")
    for constraint in result.translation.bridged:
        print("   ", constraint)
    print()

    print("=== Figure 9: the minimal synchronization constraint set ===")
    for constraint in sorted(result.minimal.constraints):
        print("   ", constraint)
    print()

    # 6. Petri-net validation.
    net, _marking = result.to_petri_net()
    report = check_soundness(net)
    print(
        "Petri-net validation: workflow net=%s, sound=%s, %d reachable markings"
        % (report.is_workflow_net, report.is_sound, report.reachable_markings)
    )
    print()

    # 7. Execute both authorization outcomes.
    for outcome in ("T", "F"):
        run = ConstraintScheduler(process, result.minimal).run(
            outcomes={"if_au": outcome}
        )
        print(
            "execution with if_au=%s: makespan=%.1f, peak concurrency=%d, "
            "constraint checks=%d, skipped=%d"
            % (
                outcome,
                run.makespan,
                max_concurrency(run.trace),
                run.constraint_checks,
                len(run.trace.skipped()),
            )
        )

    # The generated BPEL is what a real engine would deploy.
    print()
    print("BPEL output: %d characters (see result.to_bpel())" % len(result.to_bpel()))


if __name__ == "__main__":
    main()
