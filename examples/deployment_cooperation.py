"""Figure 6: the Deployment process and implicit cooperation dependencies.

The middleware and application packages are installed by two invocations of
the same Deploy service.  They exchange no data and share no control
structure — yet the middleware install *must* come first because it creates
the directory structure the application lands in (the servlet under
Tomcat's ``$Tomcat/webapp``).  No automatic extractor can see that; it is a
*cooperation* dependency supplied by the deployment engineer, and the
weaver treats it as first-class.

The script shows (a) that without the cooperation dependency the two
installs run concurrently, and (b) that with it the ordering is enforced
and survives minimization (nothing else implies it).

Run with::

    python examples/deployment_cooperation.py
"""

from repro import DSCWeaver, extract_all_dependencies
from repro.scheduler.engine import ConstraintScheduler
from repro.workloads.deployment import (
    build_deployment_process,
    deployment_cooperation,
)


def main() -> None:
    process = build_deployment_process()

    # Without the analyst's knowledge: the installs are concurrent.
    bare = DSCWeaver().weave(process, extract_all_dependencies(process))
    bare_run = ConstraintScheduler(process, bare.minimal).run()
    mid = bare_run.trace.records["invDeploy_midConfig"]
    app = bare_run.trace.records["invDeploy_appConfig"]
    print("without the cooperation dependency:")
    print(
        "   invDeploy_midConfig runs %.1f..%.1f, invDeploy_appConfig runs %.1f..%.1f"
        % (mid.start, mid.finish, app.start, app.finish)
    )
    print(
        "   -> concurrent: %s (the application may land in a missing directory!)"
        % (app.start < mid.finish)
    )

    # With it: ordering enforced, and kept by the minimizer.
    registry = deployment_cooperation(process)
    woven = DSCWeaver().weave(
        process, extract_all_dependencies(process, cooperation=registry.dependencies)
    )
    print("\nwith the cooperation dependency:")
    for dependency in registry:
        print("   %s\n      rationale: %s" % (dependency, dependency.rationale))
    kept = woven.minimal.has_constraint("invDeploy_midConfig", "invDeploy_appConfig")
    print("   survives minimization (nothing else implies it): %s" % kept)

    run = ConstraintScheduler(process, woven.minimal).run()
    print(
        "   execution order correct: %s"
        % run.trace.happened_before("invDeploy_midConfig", "invDeploy_appConfig")
    )
    print("\nreduction report:")
    print(woven.report.as_table())


if __name__ == "__main__":
    main()
