"""Importing dependencies from a UML activity diagram (Section 3.1).

The paper lists UML activity diagrams among the design documents that
dependency information "is available in".  This script builds the Figure 3
toy process as an activity diagram, serializes it to XML (what a modeling
tool would export), parses it back, extracts data and control dependencies
— reproducing Figure 4 — and feeds them to the optimizer.

Run with::

    python examples/uml_import.py
"""

from repro.core.minimize import minimize
from repro.dscl.compiler import compile_program, dependencies_to_program
from repro.uml.extract import diagram_dependencies
from repro.uml.model import ActivityDiagram, NodeKind
from repro.uml.xmlio import diagram_from_xml, diagram_to_xml


def build_diagram() -> ActivityDiagram:
    """The Figure 3 process as an activity diagram."""
    diagram = ActivityDiagram("Figure3")
    diagram.add_node("start", NodeKind.INITIAL)
    diagram.add_node("stop", NodeKind.FINAL)
    for action in ("a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7"):
        diagram.action(action)
    diagram.add_node("decision", NodeKind.DECISION)
    diagram.add_node("merge", NodeKind.MERGE)
    diagram.flow("start", "a0")
    diagram.flow("a0", "a1")
    diagram.flow("a1", "decision")
    diagram.flow("decision", "a2", guard="T")
    diagram.flow("a2", "a3")
    diagram.flow("a3", "a4")
    diagram.flow("a4", "merge")
    diagram.flow("decision", "a5", guard="F")
    diagram.flow("a5", "a6")
    diagram.flow("a6", "merge")
    diagram.flow("merge", "a7")
    diagram.flow("a7", "stop")
    diagram.object_flow("a2", "a3", "y")
    return diagram


def main() -> None:
    diagram = build_diagram()
    xml = diagram_to_xml(diagram)
    print("=== the diagram as a modeling tool would export it ===")
    print(xml)
    print()

    # Round-trip through XML, as a real import would.
    imported = diagram_from_xml(xml)
    dependencies = diagram_dependencies(imported)
    print("=== extracted dependencies (Figure 4) ===")
    print(dependencies.as_table())
    print()
    print(
        "note: a7 is NOT control dependent on the decision's guard a1 — it"
        "\npost-dominates the branch and receives only the NONE join edge."
    )
    print()

    # The extracted dependencies enter the usual optimization pipeline.
    program = dependencies_to_program(dependencies)
    compiled = compile_program(
        program, activities=["a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7"]
    )
    sc = compiled.sc.with_guards(compiled.sc.derive_guards_from_constraints())
    minimal = minimize(sc)
    print("=== after minimization: %d of %d constraints remain ===" % (
        len(minimal), len(sc)))
    for constraint in sorted(minimal.constraints):
        print("   ", constraint)


if __name__ == "__main__":
    main()
