"""Concurrency gains and the fault mode of missing service dependencies.

Two experiments on live simulations:

1. **Concurrency.**  The same Purchasing process executed three ways —
   a naive all-sequential implementation, the Figure 2 construct encoding,
   and the dependency-minimal schedule — showing how the dependency-driven
   schedule extracts the parallelism the constructs hide.

2. **Faults.**  What happens if the Purchase service's ordering constraint
   is *not* modeled: the scheduler, left free to reorder, invokes the
   shipping-invoice port before the purchase-order port and the state-aware
   service raises a protocol fault — the concrete failure the service
   dependency exists to prevent.

Run with::

    python examples/concurrency_and_faults.py
"""

from repro import DSCWeaver, extract_all_dependencies
from repro.constructs.ast import Act, Sequence, Switch
from repro.core.constraints import Constraint
from repro.errors import ProtocolViolation
from repro.scheduler.baseline import execute_constructs
from repro.scheduler.engine import ConstraintScheduler
from repro.scheduler.metrics import average_concurrency, max_concurrency
from repro.workloads.purchasing import (
    SUCCESS_BRANCH,
    build_purchasing_process,
    purchasing_cooperation_dependencies,
)
from repro.workloads.purchasing_constructs import build_purchasing_constructs


def sequential_implementation() -> Sequence:
    """The lazy implementation: everything in one big sequence."""
    return Sequence(
        Act("recClient_po"),
        Act("invCredit_po"),
        Act("recCredit_au"),
        Switch(
            "if_au",
            cases={
                "T": Sequence(
                    Act("invShip_po"),
                    Act("recShip_si"),
                    Act("recShip_ss"),
                    Act("invPurchase_po"),
                    Act("invPurchase_si"),
                    Act("recPurchase_oi"),
                    Act("invProduction_po"),
                    Act("invProduction_ss"),
                ),
                "F": Act("set_oi"),
            },
        ),
        Act("replyClient_oi"),
    )


def main() -> None:
    process = build_purchasing_process()
    result = DSCWeaver().weave(
        process,
        extract_all_dependencies(
            process, cooperation=purchasing_cooperation_dependencies(process)
        ),
    )

    print("=== experiment 1: concurrency ===")
    runs = {
        "all-sequential constructs": execute_constructs(
            process, sequential_implementation()
        ),
        "Figure 2 constructs": execute_constructs(
            process, build_purchasing_constructs()
        ),
        "dependency-minimal schedule": ConstraintScheduler(
            process, result.minimal
        ).run(),
    }
    print("%-30s %9s %6s %8s %7s" % ("implementation", "makespan", "peak", "avg-conc", "checks"))
    for label, run in runs.items():
        print(
            "%-30s %9.1f %6d %8.2f %7d"
            % (
                label,
                run.makespan,
                max_concurrency(run.trace),
                average_concurrency(run.trace),
                run.constraint_checks,
            )
        )

    print("\n=== experiment 2: the missing service dependency ===")
    broken = result.minimal.without(
        Constraint("invPurchase_po", "invPurchase_si")
    )
    # Make the purchase-order invocation slow so the unordered
    # shipping-invoice invocation overtakes it.
    from repro.model.activity import Activity
    from repro.model.process import BusinessProcess

    slow = BusinessProcess(process.name)
    for service in process.services:
        slow.add_service(service)
    for activity in process.activities:
        if activity.name == "invPurchase_po":
            activity = Activity(
                name=activity.name,
                kind=activity.kind,
                reads=activity.reads,
                port=activity.port,
                duration=10.0,
            )
        slow.add_activity(activity)
    for branch in process.branches:
        slow.add_branch(branch)

    print("dropped constraint: invPurchase_po -> invPurchase_si")
    try:
        ConstraintScheduler(slow, broken).run()
        print("no fault (unexpected)")
    except ProtocolViolation as fault:
        print("ProtocolViolation raised by the Purchase service:")
        print("   %s" % fault)

    lenient = ConstraintScheduler(slow, broken, strict_services=False).run()
    print("lenient mode recorded: %s" % lenient.violations)


if __name__ == "__main__":
    main()
