"""A tour of the workflow patterns expressible in DSCL (Section 4.1).

The paper claims DSCL covers "sequence, parallel split, synchronization,
interleave parallel routing, and milestone".  This script builds each
pattern with :mod:`repro.dscl.patterns`, compiles it, runs it in the
scheduling engine and prints the observed behavior.

Run with::

    python examples/workflow_patterns_tour.py
"""

from repro.dscl.ast import Program
from repro.dscl.compiler import compile_program
from repro.dscl.patterns import (
    exclusive_choice,
    interleaved_parallel_routing,
    milestone,
    parallel_split,
    sequence,
    simple_merge,
    synchronization,
)
from repro.dscl.printer import to_text
from repro.model.builder import ProcessBuilder
from repro.scheduler.engine import ConstraintScheduler
from repro.scheduler.metrics import max_concurrency


def run(title, process, statements, outcomes=None):
    program = Program(list(statements))
    compiled = compile_program(
        program, activities=[a.name for a in process.activities]
    )
    sc = compiled.sc.with_guards(compiled.sc.derive_guards_from_constraints())
    scheduler = ConstraintScheduler(
        process,
        sc,
        fine_grained=compiled.fine_grained,
        exclusives=compiled.exclusives,
    )
    result = scheduler.run(outcomes=outcomes)
    print("== %s ==" % title)
    print(to_text(program, include_provenance=False), end="")
    print(
        "-> makespan=%.1f, peak concurrency=%d"
        % (result.makespan, max_concurrency(result.trace))
    )
    for record in result.trace.executed():
        print("   %5.1f .. %5.1f  %s" % (record.start, record.finish, record.name))
    skipped = result.trace.skipped()
    if skipped:
        print("   skipped: %s" % ", ".join(skipped))
    print()
    return result


def main() -> None:
    # WP-1 Sequence.
    process = ProcessBuilder("seq").compute("a").compute("b").compute("c").build()
    run("sequence", process, sequence(["a", "b", "c"]))

    # WP-2/WP-3 Parallel split + synchronization (fork/join diamond).
    process = (
        ProcessBuilder("diamond")
        .compute("split")
        .compute("left")
        .compute("right")
        .compute("join")
        .build()
    )
    run(
        "parallel split + synchronization",
        process,
        parallel_split("split", ["left", "right"])
        + synchronization(["left", "right"], "join"),
    )

    # WP-4/WP-5 Exclusive choice + simple merge.
    process = (
        ProcessBuilder("xor")
        .receive("start", writes=["v"])
        .guard("decide", reads=["v"])
        .compute("approve")
        .compute("reject")
        .compute("archive")
        .build()
    )
    run(
        "exclusive choice + simple merge (decide=F)",
        process,
        sequence(["start", "decide"])
        + exclusive_choice("decide", [("T", "approve"), ("F", "reject")])
        + simple_merge(["approve", "reject"], "archive"),
        outcomes={"decide": "F"},
    )

    # WP-17 Interleaved parallel routing.
    process = (
        ProcessBuilder("interleave")
        .compute("auditA", duration=2.0)
        .compute("auditB", duration=2.0)
        .compute("auditC", duration=2.0)
        .build()
    )
    run(
        "interleaved parallel routing (never concurrent, any order)",
        process,
        interleaved_parallel_routing(["auditA", "auditB", "auditC"]),
    )

    # WP-18 Milestone: the survey must start while the order is closing —
    # the paper's collectSurvey/closeOrder fine-granularity example.
    process = (
        ProcessBuilder("milestone")
        .compute("closeOrder", duration=5.0)
        .compute("collectSurvey", duration=1.0)
        .build()
    )
    run(
        "milestone (collectSurvey within closeOrder's life span)",
        process,
        milestone("closeOrder", "collectSurvey"),
    )


if __name__ == "__main__":
    main()
