"""Process evolution: adding and removing constraints without surgery.

The paper's core maintainability argument: with sequencing constructs
"there is no easy way to add or delete a constraint in a process without
over-specifying necessary constraints or invalidating existing ones."
With explicit dependencies, evolution is: edit the dependency list,
re-weave, redeploy.

Three scenarios on the Purchasing process:

1. a new business rule (fraud review before any shipping) is added as one
   cooperation dependency — the weaver decides whether it changes anything;
2. the Production-before-invoice requirement is dropped — the weaver
   releases exactly the affected edges and the reply gets faster;
3. an analyst accidentally adds a constraint that contradicts the data
   flow — the weaver rejects it at design time with a cycle report.

Run with::

    python examples/evolving_process.py
"""

from repro import DSCWeaver, Dependency, DependencyKind, extract_all_dependencies
from repro.deps.cooperation import CooperationRegistry
from repro.errors import CycleError
from repro.scheduler.engine import ConstraintScheduler
from repro.workloads.purchasing import (
    build_purchasing_process,
    purchasing_cooperation_dependencies,
)


def weave_with(process, cooperation):
    return DSCWeaver().weave(
        process, extract_all_dependencies(process, cooperation=cooperation)
    )


def main() -> None:
    process = build_purchasing_process()
    baseline_cooperation = purchasing_cooperation_dependencies(process)
    baseline = weave_with(process, baseline_cooperation)
    baseline_run = ConstraintScheduler(process, baseline.minimal).run()
    print(
        "baseline: %d minimal constraints, makespan %.1f"
        % (len(baseline.minimal), baseline_run.makespan)
    )

    # --- 1. add a constraint -------------------------------------------------
    fraud_rule = Dependency(
        DependencyKind.COOPERATION,
        "recCredit_au",
        "invShip_po",
        rationale="fraud team must see the authorization before anything ships",
    )
    evolved = weave_with(process, list(baseline_cooperation) + [fraud_rule])
    unchanged = set(map(str, evolved.minimal.constraints)) == set(
        map(str, baseline.minimal.constraints)
    )
    print(
        "\n1. added %r\n   -> minimal set unchanged: %s "
        "(already implied by recCredit_au -> if_au -> invShip_po)"
        % (str(fraud_rule), unchanged)
    )

    # --- 2. drop a requirement -------------------------------------------------
    registry = CooperationRegistry(process)
    registry.require_all_before(
        ["recPurchase_oi", "invShip_po", "recShip_si", "recShip_ss"],
        "replyClient_oi",
        rationale="production no longer gates the invoice",
    )
    relaxed = weave_with(process, registry.dependencies)
    relaxed_run = ConstraintScheduler(process, relaxed.minimal).run()
    print(
        "\n2. dropped the Production-before-invoice rule\n"
        "   -> minimal constraints: %d (was %d)\n"
        "   -> invProduction_ss -> replyClient_oi kept: %s\n"
        "   -> makespan: %.1f (was %.1f)"
        % (
            len(relaxed.minimal),
            len(baseline.minimal),
            relaxed.minimal.has_constraint("invProduction_ss", "replyClient_oi"),
            relaxed_run.makespan,
            baseline_run.makespan,
        )
    )

    # --- 3. a contradictory constraint is rejected at design time ------------------
    contradictory = Dependency(
        DependencyKind.COOPERATION,
        "replyClient_oi",
        "invCredit_po",
        rationale="(mistake) invoice before authorization",
    )
    print("\n3. adding %r" % str(contradictory))
    try:
        weave_with(process, list(baseline_cooperation) + [contradictory])
    except CycleError as error:
        print("   -> rejected at design time: %s" % error)


if __name__ == "__main__":
    main()
