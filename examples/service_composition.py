"""Automatic service composition from WSCL documents (Section 1's vision).

Each remote service publishes a WSCL conversation describing the allowed
sequencing of its document exchanges; the scheduling engine merges the
conversations of *all* participating services with the process's own
data/control/cooperation dependencies and infers the global synchronization
scheme — no hand-coded sequencing constructs anywhere.

The highlight: the state-aware Purchase service requires sequential
invocation of its two ports.  Rather than "passively relying on the correct
implementation of a process", the service submits that constraint in its
WSCL document and the weaver schedules ``invPurchase_po`` before
``invPurchase_si`` automatically.

Run with::

    python examples/service_composition.py
"""

from repro import DSCWeaver, DependencySet
from repro.deps.controlflow import extract_control_dependencies
from repro.deps.dataflow import extract_data_dependencies
from repro.deps.servicedeps import extract_service_dependencies
from repro.workloads.purchasing import (
    build_purchasing_process,
    purchasing_cooperation_dependencies,
)
from repro.wscl.derive import (
    conversation_for_service,
    service_dependencies_from_conversation,
)
from repro.wscl.xmlio import conversation_to_xml


def main() -> None:
    process = build_purchasing_process()

    # Every service publishes its conversation document.
    print("=== WSCL documents published by the services ===")
    conversations = {}
    for service in process.services:
        conversation = conversation_for_service(service)
        conversations[service.name] = conversation
        xml = conversation_to_xml(conversation)
        print("--- %s (%d transitions) ---" % (service.name, len(conversation.transitions)))
        print(xml)
        print()

    # The composition engine merges process-side and service-side knowledge.
    dependencies = DependencySet()
    dependencies.extend(extract_data_dependencies(process))
    dependencies.extend(extract_control_dependencies(process))
    dependencies.extend(purchasing_cooperation_dependencies(process))
    for conversation in conversations.values():
        dependencies.extend(service_dependencies_from_conversation(conversation))
    # Binding rows (which process activity talks to which port) come from
    # the process model itself.
    ports = set(process.port_names())
    for dependency in extract_service_dependencies(process):
        if not (dependency.source in ports and dependency.target in ports):
            dependencies.add(dependency)

    result = DSCWeaver().weave(process, dependencies)
    print("=== Inferred global synchronization scheme ===")
    print(result.report.as_table())
    print()
    print(
        "Purchase's WSCL ordering became: invPurchase_po -> invPurchase_si : %s"
        % result.minimal.has_constraint("invPurchase_po", "invPurchase_si")
    )
    print(
        "No spurious Production ordering was invented              : %s"
        % (not result.minimal.has_constraint("invProduction_po", "invProduction_ss"))
    )


if __name__ == "__main__":
    main()
