"""Candidate mining over handcrafted statistics: thresholds, noise
tolerance, guard conditioning and every DIS001-004 finding."""

from __future__ import annotations

import pytest

from repro.analysis.conditions import Cond
from repro.conformance.events import FINISH, SKIP, START, Event
from repro.discover.mine import (
    AMBIGUOUS_DIRECTION,
    CONTRADICTORY_CONDITIONING,
    INEXPRESSIBLE_DEPENDENCY,
    SUBTHRESHOLD_EVIDENCE,
    Candidate,
    MinerConfig,
    mine,
)
from repro.discover.stats import LogStatistics
from repro.lint.diagnostics import Severity


def _interval(case, activity, start, finish, outcome=None):
    return [
        Event(case, activity, START, start),
        Event(case, activity, FINISH, finish, outcome),
    ]


def _sequential_cases(count, *activities, reverse_in=(), prefix="c"):
    """``count`` cases running the activities strictly sequentially,
    with the order reversed in the case indices listed."""
    events = []
    for index in range(count):
        order = list(activities)
        if index in reverse_in:
            order.reverse()
        clock = 0.0
        for activity in order:
            events.extend(
                _interval("%s%03d" % (prefix, index), activity, clock, clock + 1.0)
            )
            clock += 10.0
    return events


def _guarded_cases(count, outcomes=("T", "F"), execute_under=("T",), guard="g"):
    """Cases alternating guard outcomes; ``x`` executes only under
    ``execute_under`` and is skipped otherwise."""
    events = []
    for index in range(count):
        case = "g%03d" % index
        outcome = outcomes[index % len(outcomes)]
        events.extend(_interval(case, guard, 0.0, 1.0, outcome=outcome))
        if outcome in execute_under:
            events.extend(_interval(case, "x", 5.0, 6.0))
        else:
            events.append(Event(case, "x", SKIP, 1.0))
    return events


def _nested_guard_cases(count):
    """g1=T enables g2; g2=T enables x (dead-path skips otherwise)."""
    events = []
    for index in range(count):
        case = "c%03d" % index
        g1 = "T" if index % 2 == 0 else "F"
        events.extend(_interval(case, "g1", 0.0, 1.0, outcome=g1))
        if g1 == "T":
            g2 = "T" if index % 4 == 0 else "F"
            events.extend(_interval(case, "g2", 2.0, 3.0, outcome=g2))
            if g2 == "T":
                events.extend(_interval(case, "x", 4.0, 5.0))
            else:
                events.append(Event(case, "x", SKIP, 3.0))
        else:
            events.append(Event(case, "g2", SKIP, 1.0))
            events.append(Event(case, "x", SKIP, 1.0))
    return events


def _mine(events, **config_kwargs):
    return mine(LogStatistics.from_events(events), MinerConfig(**config_kwargs))


def _codes(result):
    return [d.code for d in result.diagnostics]


class TestMinerConfig:
    def test_defaults_validate(self):
        MinerConfig().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_support": 0},
            {"min_confidence": 0.5},
            {"min_confidence": 1.1},
            {"noise": -0.01},
            {"noise": 0.5},
        ],
    )
    def test_out_of_range_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MinerConfig(**kwargs).validate()


class TestPrecedenceMining:
    def test_always_ordered_pair_becomes_cooperation_candidate(self):
        result = _mine(_sequential_cases(8, "a", "b"))
        [candidate] = result.candidates
        assert (candidate.source, candidate.target) == ("a", "b")
        assert candidate.condition is None
        assert candidate.support == 8
        assert candidate.confidence == 1.0
        assert candidate.annotation == frozenset()
        assert result.counts() == {"control": 0, "cooperation": 1, "total": 1}

    def test_single_violation_excludes_pair_at_zero_noise(self):
        result = _mine(_sequential_cases(100, "a", "b", reverse_in=(37,)))
        assert result.candidates == ()

    def test_noise_budget_readmits_rarely_violated_pair(self):
        events = _sequential_cases(100, "a", "b", reverse_in=(37,))
        result = _mine(events, noise=0.02)
        [candidate] = result.candidates
        assert (candidate.source, candidate.target) == ("a", "b")
        assert candidate.confidence == pytest.approx(0.99)

    def test_confidence_floor_still_applies_under_large_noise(self):
        # 60/40 split: 4 violations fit a 0.45 noise budget, but the
        # confidence bar must still reject the pair.
        result = _mine(
            _sequential_cases(10, "a", "b", reverse_in=(0, 1, 2, 3)), noise=0.45
        )
        assert result.candidates == ()

    def test_dis002_confident_but_undersupported(self):
        result = _mine(_sequential_cases(3, "a", "b"))
        assert result.candidates == ()
        assert _codes(result) == [SUBTHRESHOLD_EVIDENCE]
        assert result.diagnostics[0].severity is Severity.INFO
        assert "precedence a -> b" in result.diagnostics[0].message

    def test_dis001_inconsistent_direction(self):
        # 70/30 ordering split, never concurrent: sequential but ambiguous.
        result = _mine(_sequential_cases(10, "a", "b", reverse_in=(0, 1, 2)))
        assert result.candidates == ()
        findings = [d for d in result.diagnostics if d.code == AMBIGUOUS_DIRECTION]
        assert len(findings) == 1  # flagged once, not once per direction
        assert findings[0].severity is Severity.WARNING
        assert "direction is inconsistent" in findings[0].message

    def test_concurrent_pair_neither_candidate_nor_ambiguous(self):
        events = []
        for index in range(10):
            case = "c%03d" % index
            events.extend(_interval(case, "a", 0.0, 10.0))
            events.extend(_interval(case, "b", 5.0, 15.0))
        result = _mine(events)
        assert result.candidates == ()
        assert AMBIGUOUS_DIRECTION not in _codes(result)


class TestConditionMining:
    def test_branch_activity_mined_as_control_candidate(self):
        result = _mine(_guarded_cases(10))
        [candidate] = result.candidates
        assert (candidate.source, candidate.target) == ("g", "x")
        assert candidate.condition == "T"
        assert candidate.support == 5
        assert candidate.confidence == 1.0
        assert candidate.annotation == frozenset({Cond("g", "T")})
        assert result.guards == {"x": frozenset({Cond("g", "T")})}

    def test_conditioned_pair_not_doubly_emitted_as_cooperation(self):
        result = _mine(_guarded_cases(10))
        assert len(result.candidates) == 1
        assert result.counts()["control"] == 1

    def test_dis002_single_outcome_guard(self):
        result = _mine(_guarded_cases(10, outcomes=("T",)))
        singles = [
            d
            for d in result.diagnostics
            if d.code == SUBTHRESHOLD_EVIDENCE and "only ever produced" in d.message
        ]
        assert len(singles) == 1
        assert singles[0].severity is Severity.INFO
        # Without a discriminating outcome, g->x is plain precedence.
        [candidate] = result.candidates
        assert candidate.condition is None

    def test_dis003_contradictory_conditioning(self):
        events = _guarded_cases(10)
        # One case where x is *skipped* under the dominant outcome T.
        events.extend(_interval("c900", "g", 0.0, 1.0, outcome="T"))
        events.append(Event("c900", "x", SKIP, 1.0))
        result = _mine(events)
        findings = [
            d for d in result.diagnostics if d.code == CONTRADICTORY_CONDITIONING
        ]
        assert len(findings) == 1
        assert "does not determine" in findings[0].message
        # The pair degrades to an unconditional precedence candidate:
        # whenever x did execute, g had finished first.
        [candidate] = result.candidates
        assert (candidate.source, candidate.target) == ("g", "x")
        assert candidate.condition is None

    def test_dis003_suppressed_when_nested_guard_explains_the_skip(self):
        # x skips under g1=T exactly when the inner guard g2 said F; the
        # successful (g2, x) conditioning explains it — no contradiction.
        result = _mine(_nested_guard_cases(12), min_support=3)
        assert CONTRADICTORY_CONDITIONING not in _codes(result)

    def test_dis004_disjunctive_dependency_inexpressible(self):
        result = _mine(
            _guarded_cases(12, outcomes=("a", "b", "c"), execute_under=("a", "b"))
        )
        findings = [
            d for d in result.diagnostics if d.code == INEXPRESSIBLE_DEPENDENCY
        ]
        assert len(findings) == 1
        assert "inexpressible" in findings[0].message
        assert findings[0].severity is Severity.WARNING
        # Only the unconditional fallback candidate survives.
        [candidate] = result.candidates
        assert candidate.condition is None

    def test_nested_guards_mined_through_the_guard_chain(self):
        # x is mined as conditioned on the *innermost* guard only — the
        # skip under g1=T (when g2=F) blocks direct conditioning on g1 —
        # and g2 on g1, so x's effective guard {g1=T, g2=T} is reachable
        # through the guard chain, exactly as guard-aware closure reads it.
        result = _mine(_nested_guard_cases(12), min_support=3)
        conditions = {
            (c.source, c.target, c.condition)
            for c in result.candidates
            if c.condition is not None
        }
        assert conditions == {("g1", "g2", "T"), ("g2", "x", "T")}
        assert result.guards["x"] == frozenset({Cond("g2", "T")})
        assert result.guards["g2"] == frozenset({Cond("g1", "T")})

    def test_conditioning_requires_order_agreement(self):
        # x executes only under g=T but *before* g finishes: no candidate.
        events = []
        for index in range(10):
            case = "c%03d" % index
            outcome = "T" if index % 2 == 0 else "F"
            events.extend(_interval(case, "g", 5.0, 6.0, outcome=outcome))
            if outcome == "T":
                events.extend(_interval(case, "x", 0.0, 1.0))
            else:
                events.append(Event(case, "x", SKIP, 6.0))
        result = _mine(events)
        assert not any(c.condition == "T" for c in result.candidates)


class TestDiscoveryResult:
    def test_constraint_set_is_standalone(self):
        result = _mine(_guarded_cases(10) + _sequential_cases(10, "p", "q"))
        sc = result.constraint_set()
        assert set(sc.activities) == {"g", "x", "p", "q"}
        assert len(sc.constraints) == len(result.candidates) == 2
        assert sc.guards["x"] == frozenset({Cond("g", "T")})
        assert sc.domains.domain("g") == frozenset({"F", "T"})
        # The standalone set minimizes without a process model.
        from repro.core.minimize import minimize

        minimal = minimize(sc)
        assert len(minimal.constraints) == 2

    def test_dependency_set_round_trips_candidates(self):
        result = _mine(_sequential_cases(10, "a", "b"))
        deps = result.dependency_set()
        assert [d.source for d in deps] == ["a"]

    def test_summary_lines_mention_thresholds_and_anomalies(self):
        events = _sequential_cases(10, "a", "b")
        events.append(Event("c000", "a", FINISH, 99.0))  # duplicate finish
        result = _mine(events)
        text = "\n".join(result.summary_lines())
        assert "support >= 5" in text
        assert "tolerated 1 malformed record(s)" in text

    def test_candidate_str_shows_arrow_and_score(self):
        result = _mine(_guarded_cases(10))
        [candidate] = result.candidates
        assert isinstance(candidate, Candidate)
        rendered = str(candidate)
        assert "[T]" in rendered
        assert "support=5" in rendered

    def test_obs_counters_by_kind(self):
        from repro.obs import Observability

        obs = Observability()
        stats = LogStatistics.from_events(
            _guarded_cases(10) + _sequential_cases(10, "p", "q")
        )
        mine(stats, obs=obs)
        counter = obs.metrics.counter(
            "repro_discover_candidates_total", "", labelnames=("kind",)
        )
        assert counter.value(kind="control") == 1
        assert counter.value(kind="cooperation") == 1
