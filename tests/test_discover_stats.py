"""The streaming statistics pass behind dependency mining.

Handcrafted miniature logs pin the semantics the miner relies on:
interval (not event-order) precedence with the log-position tie-break,
overlap as concurrency evidence, guard-outcome conditioning counters,
and tolerance of malformed records.
"""

from __future__ import annotations

from repro.conformance.events import FINISH, SKIP, START, Event, EventLog
from repro.discover.stats import MAX_ANOMALIES, LogStatistics


def _interval(case, activity, start, finish, outcome=None):
    return [
        Event(case, activity, START, start),
        Event(case, activity, FINISH, finish, outcome),
    ]


def _sequence(case, *activities, step=10.0):
    """Strictly sequential instantaneous-ish executions: a then b then c."""
    events = []
    clock = 0.0
    for activity in activities:
        events.extend(_interval(case, activity, clock, clock + 1.0))
        clock += step
    return events


class TestPrecedenceCounting:
    def test_strict_interval_order(self):
        stats = LogStatistics.from_events(_sequence("c1", "a", "b"))
        assert stats.case_count == 1
        assert stats.cooccur[("a", "b")] == 1
        assert stats.ordered[("a", "b")] == 1
        assert stats.ordered.get(("b", "a"), 0) == 0
        # b finished and a started, so the reverse pair co-occurred too.
        assert stats.cooccur[("b", "a")] == 1
        assert stats.confidence("a", "b") == 1.0
        assert stats.confidence("b", "a") == 0.0

    def test_equal_timestamps_tie_broken_by_log_position(self):
        # finish(a) and start(b) at the same instant: the scheduler emits
        # the enabling finish first, so log position decides.
        events = [
            Event("c1", "a", START, 0.0),
            Event("c1", "a", FINISH, 5.0),
            Event("c1", "b", START, 5.0),
            Event("c1", "b", FINISH, 9.0),
        ]
        stats = LogStatistics.from_events(events)
        assert stats.ordered[("a", "b")] == 1
        assert stats.direct[("a", "b")] == 1
        # Reversed positions at the same instant: no longer ordered.
        events = [
            Event("c1", "b", START, 5.0),
            Event("c1", "a", START, 0.0),
            Event("c1", "a", FINISH, 5.0),
            Event("c1", "b", FINISH, 9.0),
        ]
        stats = LogStatistics.from_events(events)
        assert stats.ordered.get(("a", "b"), 0) == 0

    def test_overlapping_intervals_count_as_concurrency(self):
        events = _interval("c1", "a", 0.0, 10.0) + _interval("c1", "b", 5.0, 15.0)
        stats = LogStatistics.from_events(events)
        assert stats.ordered.get(("a", "b"), 0) == 0
        assert stats.overlap[("a", "b")] == 1
        assert stats.overlap[("b", "a")] == 1

    def test_confidence_aggregates_across_cases(self):
        events = []
        for index in range(4):
            events.extend(_sequence("c%d" % index, "a", "b"))
        events.extend(_sequence("c4", "b", "a"))
        stats = LogStatistics.from_events(events)
        assert stats.cooccur[("a", "b")] == 5
        assert stats.ordered[("a", "b")] == 4
        assert stats.confidence("a", "b") == 0.8

    def test_interleaved_cases_do_not_cross_pollinate(self):
        # Two cases interleaved in arrival order, with opposite orders.
        events = (
            _interval("c1", "a", 0.0, 1.0)
            + _interval("c2", "b", 0.0, 1.0)
            + _interval("c1", "b", 2.0, 3.0)
            + _interval("c2", "a", 2.0, 3.0)
        )
        stats = LogStatistics.from_events(events)
        assert stats.cooccur[("a", "b")] == 2
        assert stats.ordered[("a", "b")] == 1
        assert stats.ordered[("b", "a")] == 1


class TestGuardConditioning:
    def test_outcome_and_exec_counters(self):
        events = []
        # g=T: x runs.  g=F: x skipped.
        events.extend(_interval("c1", "g", 0.0, 1.0, outcome="T"))
        events.extend(_interval("c1", "x", 2.0, 3.0))
        events.extend(_interval("c2", "g", 0.0, 1.0, outcome="F"))
        events.append(Event("c2", "x", SKIP, 1.0))
        stats = LogStatistics.from_events(events)
        assert stats.outcome_cases[("g", "T")] == 1
        assert stats.outcome_cases[("g", "F")] == 1
        assert stats.outcomes_seen["g"] == {"T", "F"}
        assert stats.exec_given[("x", "g", "T")] == 1
        assert stats.exec_given.get(("x", "g", "F"), 0) == 0
        assert stats.skip_given[("x", "g", "F")] == 1
        assert stats.skip_cases["x"] == 1

    def test_skipped_only_activity_still_listed(self):
        events = _interval("c1", "g", 0.0, 1.0, outcome="F")
        events.append(Event("c1", "x", SKIP, 1.0))
        stats = LogStatistics.from_events(events)
        assert stats.activities == ("g", "x")
        assert "x" not in stats.activity_cases


class TestAnomalyTolerance:
    def test_duplicate_start_and_finish_ignored(self):
        events = [
            Event("c1", "a", START, 0.0),
            Event("c1", "a", START, 2.0),
            Event("c1", "a", FINISH, 4.0),
            Event("c1", "a", FINISH, 6.0),
        ]
        stats = LogStatistics.from_events(events)
        assert stats.anomaly_count == 2
        assert stats.activity_cases["a"] == 1
        assert any("duplicate start" in a for a in stats.anomalies)
        assert any("duplicate finish" in a for a in stats.anomalies)

    def test_orphan_finish_treated_as_instantaneous(self):
        events = [Event("c1", "a", FINISH, 5.0)] + _interval("c1", "b", 7.0, 8.0)
        stats = LogStatistics.from_events(events)
        assert stats.anomaly_count == 1
        # The orphan still participates in precedence counting.
        assert stats.ordered[("a", "b")] == 1

    def test_unknown_lifecycle_tolerated(self):
        class Alien:
            case = "c1"
            activity = "a"
            lifecycle = "suspend"
            time = 0.0
            outcome = None

        stats = LogStatistics()
        stats.observe(Alien())
        stats.finish()
        assert stats.anomaly_count == 1
        assert "unknown lifecycle" in stats.anomalies[0]

    def test_anomaly_descriptions_capped_but_count_unbounded(self):
        stats = LogStatistics()
        for index in range(MAX_ANOMALIES + 10):
            stats.observe(Event("c1", "a%d" % index, FINISH, float(index)))
        stats.finish()
        assert stats.anomaly_count == MAX_ANOMALIES + 10
        assert len(stats.anomalies) == MAX_ANOMALIES


class TestStreamingShape:
    def test_from_log_equals_from_events(self):
        events = _sequence("c1", "a", "b") + _sequence("c2", "a", "b")
        via_log = LogStatistics.from_log(EventLog(events))
        via_events = LogStatistics.from_events(events)
        assert via_log.cooccur == via_events.cooccur
        assert via_log.case_count == via_events.case_count == 2

    def test_open_cases_closed_deterministically_on_finish(self):
        stats = LogStatistics()
        for case in ("z", "a", "m"):
            for event in _sequence(case, "a", "b"):
                stats.observe(event)
        assert stats.case_count == 0  # nothing folded yet
        stats.finish()
        assert stats.case_count == 3
        assert stats.ordered[("a", "b")] == 3

    def test_obs_metrics_emitted(self):
        from repro.obs import Observability

        obs = Observability()
        LogStatistics.from_events(
            _sequence("c1", "a", "b") + [Event("c1", "a", FINISH, 99.0)], obs=obs
        )
        metrics = obs.metrics
        assert metrics.counter("repro_discover_events_total", "").value() == 5
        assert metrics.counter("repro_discover_cases_total", "").value() == 1
        assert metrics.counter("repro_discover_anomalies_total", "").value() == 1
        assert any(
            span.name == "discover.stats" for span in obs.tracer.finished_spans()
        )
