"""Object-centric serving: exact sync, cancellation, stranding, sharding.

The orders workload fans each order object out into ``1 + fan_out``
cases.  The cross-case contract under test:

* ``ship_order`` starts at **exactly** the latest ``pack_item``
  resolution over the declared child set (all-of sync, paper-exact — no
  polling slack);
* cancelled children (failed quality check → ``drop_item`` path, pack
  skipped) still resolve the barrier;
* withheld children strand the barrier: the parent fails with ``RT006``
  instead of hanging;
* co-sharding by object key keeps each family on one shard but never
  changes results vs. random placement.
"""

from __future__ import annotations

import pytest

from repro.objects import ObjectBinding, ObjectSpecError
from repro.runtime import Runtime
from repro.workloads.orders import orders_object_spec, orders_plans


def _serve(program, orders=3, fan_out=4, co_shard=True, **kwargs):
    plans, bindings = orders_plans(
        orders,
        fan_out,
        cancel_every=kwargs.pop("cancel_every", 0),
        withhold=kwargs.pop("withhold", 0),
    )
    runtime = Runtime(
        program,
        objects=orders_object_spec(),
        co_shard=co_shard,
        **kwargs,
    )
    runtime.submit_batch(plans, bindings=bindings)
    return runtime, runtime.run()


def _executed(report, case):
    return {name: (start, finish) for name, start, finish in report.results[case].executed}


class TestExactSync:
    def test_ship_starts_at_latest_pack_resolution(self, orders_runtime_program):
        _runtime, report = _serve(orders_runtime_program, orders=2, fan_out=5, shards=4)
        assert report.metrics.completed == 2 * 6
        for index in range(2):
            key = "ord-%04d" % index
            packs = [
                _executed(report, "%s-item-%03d" % (key, item))["pack_item"][1]
                for item in range(5)
            ]
            ship_start = _executed(report, "%s-order" % key)["ship_order"][0]
            assert ship_start == max(packs)

    def test_cancelled_children_still_release_the_barrier(
        self, orders_runtime_program
    ):
        runtime, report = _serve(
            orders_runtime_program, orders=1, fan_out=4, cancel_every=2, shards=2
        )
        assert report.metrics.completed == 5
        assert runtime.metrics().barriers_released == 1
        counters = runtime.object_counters()["ord-0000"]
        barrier = counters["all:item.pack_item->order.ship_order"]
        assert barrier["satisfied"] == 2
        assert barrier["cancelled"] == 2
        assert barrier["open"] is True

    def test_invoice_fires_once_per_object(self, orders_runtime_program):
        runtime, _report = _serve(orders_runtime_program, orders=3, fan_out=2)
        for index in range(3):
            key = "ord-%04d" % index
            once = runtime.object_counters()[key]["once:order.invoice_order"]
            assert once["fired_by"] == "%s-order" % key

    def test_zero_fan_out_ships_immediately(self, orders_runtime_program):
        _runtime, report = _serve(orders_runtime_program, orders=1, fan_out=0)
        assert report.metrics.completed == 1
        assert report.results["ord-0000-order"].status == "completed"


class TestStranding:
    def test_withheld_child_fails_parent_with_rt006(self, orders_runtime_program):
        runtime, report = _serve(
            orders_runtime_program, orders=2, fan_out=3, withhold=1, shards=2
        )
        # items complete; the two parents park forever and are failed
        assert report.metrics.completed == 2 * 2
        assert report.metrics.failed == 2
        stranded = [d for d in report.diagnostics if d.code == "RT006"]
        assert len(stranded) == 2
        assert all(d.severity.name == "ERROR" for d in stranded)
        assert runtime.metrics().barriers_stranded == 2
        for index in range(2):
            result = report.results["ord-%04d-order" % index]
            assert result.status == "failed"
            assert "ship_order" in (result.reason or "")
        assert report.exit_code() == 1

    def test_stranded_evidence_names_the_barrier(self, orders_runtime_program):
        _runtime, report = _serve(
            orders_runtime_program, orders=1, fan_out=2, withhold=2
        )
        (diagnostic,) = [d for d in report.diagnostics if d.code == "RT006"]
        assert any(
            "all:item.pack_item->order.ship_order" in line
            for line in diagnostic.evidence
        )
        assert any("0 of 2" in line for line in diagnostic.evidence)


class TestSharding:
    def test_co_sharding_keeps_families_whole(self, orders_runtime_program):
        fan_out = 4
        runtime, report = _serve(
            orders_runtime_program, orders=6, fan_out=fan_out, shards=4
        )
        assert report.metrics.completed == 6 * (fan_out + 1)
        assert all(
            assigned % (fan_out + 1) == 0
            for assigned in report.metrics.shard_assigned
        )

    def test_random_sharding_gives_identical_results(self, orders_runtime_program):
        _rt_co, co = _serve(
            orders_runtime_program, orders=4, fan_out=5, shards=4, co_shard=True
        )
        rt_rand, rand = _serve(
            orders_runtime_program, orders=4, fan_out=5, shards=4, co_shard=False
        )
        assert co.final_states() == rand.final_states()
        assert rt_rand.object_counters() == _rt_co.object_counters()
        # random placement actually splits at least one family
        assert any(
            assigned % 6 != 0 for assigned in rand.metrics.shard_assigned
        )


class TestBindings:
    def test_unknown_role_is_rejected_at_activation(self, orders_runtime_program):
        runtime = Runtime(orders_runtime_program, objects=orders_object_spec())
        with pytest.raises(ObjectSpecError, match="warehouse"):
            runtime.submit(
                "c-1",
                {"is_item": "F", "item_ok": "T"},
                binding=ObjectBinding(object_key="k", role="warehouse"),
            )
            runtime.run()

    def test_parent_without_declared_fan_out_is_rejected(
        self, orders_runtime_program
    ):
        runtime = Runtime(orders_runtime_program, objects=orders_object_spec())
        with pytest.raises(ObjectSpecError, match="children"):
            runtime.submit(
                "c-1",
                {"is_item": "F", "item_ok": "T"},
                binding=ObjectBinding(object_key="k", role="order"),
            )
            runtime.run()

    def test_no_objects_means_no_object_records(
        self, orders_runtime_program, tmp_path
    ):
        path = tmp_path / "plain.jsonl"
        runtime = Runtime(orders_runtime_program, journal_path=str(path))
        runtime.submit("c-1", {"is_item": "T", "item_ok": "T"})
        runtime.run()
        runtime.close()
        text = path.read_text(encoding="utf-8")
        assert '"rt": "obj"' not in text
        assert '"object"' not in text

    def test_metrics_track_objects(self, orders_runtime_program):
        runtime, _report = _serve(orders_runtime_program, orders=3, fan_out=2)
        metrics = runtime.metrics()
        assert metrics.objects == 3
        assert metrics.barriers_released == 3
        assert metrics.barriers_stranded == 0
        assert "objects: 3 tracked" in metrics.summary()
