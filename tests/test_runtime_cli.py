"""Tests for ``dscweaver serve`` and ``dscweaver --version``.

Exit-code contract: 0 clean run, 1 gated findings, 2 usage error,
3 simulated crash (``--crash-after``).
"""

from __future__ import annotations

import pytest

from repro.cli import main


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as caught:
            main(["--version"])
        assert caught.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("dscweaver ")
        version = out.split()[1]
        assert version[0].isdigit()

    def test_version_matches_package(self, capsys):
        import repro
        from repro.cli import _package_version

        # not pip-installed in this environment, so the source fallback wins;
        # when installed, metadata takes precedence and this still holds as
        # long as the two are kept in sync
        assert _package_version() == repro.__version__


class TestServe:
    def test_clean_run_exits_zero(self, capsys):
        assert main(["serve", "purchasing", "--cases", "30"]) == 0
        out = capsys.readouterr().out
        assert "30 completed" in out
        assert "cases/sec" in out

    def test_all_workloads_serve(self, capsys):
        for workload in ("deployment", "loan", "travel", "insurance"):
            assert main(["serve", workload, "--cases", "8"]) == 0
            assert "8 completed" in capsys.readouterr().out

    def test_full_set_serves_identically(self, capsys):
        assert main(["serve", "purchasing", "--cases", "16", "--set", "full"]) == 0
        assert "16 completed" in capsys.readouterr().out

    def test_rejections_gate_exit_code(self, capsys):
        code = main(
            [
                "serve",
                "purchasing",
                "--cases",
                "20",
                "--max-in-flight",
                "4",
                "--max-queue",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "RT002" in out
        assert "rejected" in out

    def test_fail_on_error_ignores_rejections(self, capsys):
        code = main(
            [
                "serve",
                "purchasing",
                "--cases",
                "20",
                "--max-in-flight",
                "4",
                "--max-queue",
                "2",
                "--fail-on",
                "error",
            ]
        )
        capsys.readouterr()
        assert code == 0

    def test_retry_exhaustion_gates(self, capsys):
        code = main(
            [
                "serve",
                "purchasing",
                "--cases",
                "4",
                "--failure-rate",
                "1.0",
                "--max-attempts",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "RT001" in out

    def test_crash_and_recover_round_trip(self, tmp_path, capsys):
        journal = str(tmp_path / "wal.jsonl")
        baseline_journal = str(tmp_path / "base.jsonl")

        assert (
            main(
                ["serve", "purchasing", "--cases", "20", "--journal", baseline_journal]
            )
            == 0
        )
        capsys.readouterr()

        code = main(
            [
                "serve",
                "purchasing",
                "--cases",
                "20",
                "--journal",
                journal,
                "--crash-after",
                "150",
            ]
        )
        out = capsys.readouterr().out
        assert code == 3
        assert "simulated crash" in out
        assert "--recover" in out

        code = main(
            [
                "serve",
                "purchasing",
                "--cases",
                "20",
                "--journal",
                journal,
                "--recover",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "recovered journal" in out

        from repro.runtime import read_journal

        recovered = read_journal(journal)
        baseline = read_journal(baseline_journal)
        assert not recovered.in_flight()
        assert sorted(recovered.cases) == sorted(baseline.cases)
        for case, journaled in baseline.cases.items():
            assert recovered.cases[case].events == journaled.events

    def test_recover_requires_journal(self, capsys):
        assert main(["serve", "purchasing", "--recover"]) == 2
        assert "--journal" in capsys.readouterr().err

    def test_crash_after_requires_journal(self, capsys):
        assert main(["serve", "purchasing", "--crash-after", "5"]) == 2
        assert "--journal" in capsys.readouterr().err

    def test_naive_mode_serves_same_cases(self, capsys):
        assert main(["serve", "purchasing", "--cases", "10", "--naive"]) == 0
        assert "10 completed" in capsys.readouterr().out
