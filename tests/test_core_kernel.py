"""Differential and unit tests for the interned bitset kernel.

The kernel (:mod:`repro.core.kernel` + :mod:`repro.core.session`) must be a
pure representation change: for every input and every semantics it produces
*bit-for-bit* the same minimal sets, closures and equivalence verdicts as
the reference frozenset path.  The hypothesis property here is the contract
that lets ``kernel=True`` be the default everywhere.
"""

from __future__ import annotations

import time

import pytest
from hypothesis import HealthCheck, given, settings

from repro.analysis.conditions import Cond
from repro.cli import main
from repro.core.closure import Semantics, closure_map
from repro.core.constraints import Constraint, SynchronizationConstraintSet
from repro.core.equivalence import transitive_equivalent
from repro.core.kernel import (
    Interner,
    KernelStats,
    antichain_insert,
    closure_covers,
    closure_insert,
    closures_equal,
    closure_to_facts,
)
from repro.core.minimize import _candidate_order, minimize_fast
from repro.core.pipeline import DSCWeaver
from repro.core.session import MinimizationSession
from tests.strategies import constraint_sets, unconditional_constraint_sets
from tests.test_pipeline_paper_numbers import FIGURE9_EDGES

SLOW = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

ALL_SEMANTICS = [Semantics.STRICT, Semantics.GUARD_AWARE, Semantics.REACHABILITY]


def sc_of(edges, activities=None, guards=None):
    if activities is None:
        activities = sorted({e[0] for e in edges} | {e[1] for e in edges})
    constraints = [
        Constraint(*edge) if len(edge) == 3 else Constraint(edge[0], edge[1])
        for edge in edges
    ]
    return SynchronizationConstraintSet(
        activities=activities, constraints=constraints, guards=guards
    )


class TestInterner:
    def test_node_ids_are_dense_and_stable(self):
        interner = Interner()
        assert interner.node_id("a") == 0
        assert interner.node_id("b") == 1
        assert interner.node_id("a") == 0
        assert interner.node_name(1) == "b"
        assert interner.lookup_node("c") is None
        assert len(interner) == 2

    def test_mask_roundtrip(self):
        interner = Interner()
        annotations = frozenset({Cond("g", "T"), Cond("h", "F")})
        mask = interner.mask_of(annotations)
        assert bin(mask).count("1") == 2
        assert interner.annotations_of(mask) == annotations
        assert interner.mask_of(frozenset()) == 0
        assert interner.annotations_of(0) == frozenset()

    def test_sibling_values_conflict(self):
        interner = Interner()
        true_mask = interner.mask_of({Cond("g", "T")})
        false_mask = interner.mask_of({Cond("g", "F")})
        other = interner.mask_of({Cond("h", "T")})
        assert not interner.is_contradictory(true_mask)
        assert not interner.is_contradictory(true_mask | other)
        assert interner.is_contradictory(true_mask | false_mask)
        # a | b contradiction via the memoized conflict union.
        assert true_mask & interner.conflict_of(false_mask)
        assert not true_mask & interner.conflict_of(other)

    def test_conflict_cache_invalidated_by_new_bits(self):
        interner = Interner()
        true_mask = interner.mask_of({Cond("g", "T")})
        assert interner.conflict_of(true_mask) == 0  # no sibling yet, cached
        false_mask = interner.mask_of({Cond("g", "F")})
        # The cached union must have been dropped when the sibling arrived.
        assert interner.conflict_of(true_mask) == false_mask


class TestAntichainClosures:
    def test_insert_keeps_only_minimal_masks(self):
        masks = []
        assert antichain_insert(masks, 0b11)
        assert not antichain_insert(masks, 0b11)  # duplicate
        assert not antichain_insert(masks, 0b111)  # weaker (superset) fact
        assert antichain_insert(masks, 0b01)  # stronger: evicts 0b11
        assert masks == [0b01]
        assert antichain_insert(masks, 0b10)  # incomparable: coexists
        assert sorted(masks) == [0b01, 0b10]

    def test_closure_cover_is_subsumption(self):
        stats = KernelStats()
        covering = {}
        closure_insert(covering, 1, 0b0)
        closure_insert(covering, 2, 0b01)
        covered = {1: [0b10], 2: [0b011]}
        assert closure_covers(covering, covered, stats)
        assert stats.subsumption_tests > 0
        # Missing target or no subsuming mask -> not covered.
        assert not closure_covers(covering, {3: [0]}, stats)
        assert not closure_covers({2: [0b10]}, {2: [0b01]}, stats)

    def test_closures_equal_ignores_mask_order(self):
        assert closures_equal({1: [0b01, 0b10]}, {1: [0b10, 0b01]})
        assert not closures_equal({1: [0b01]}, {1: [0b01], 2: [0]})
        assert not closures_equal({1: [0b01]}, {1: [0b10]})

    def test_closure_to_facts_unpacks(self):
        interner = Interner()
        interner.node_id("a")
        target = interner.node_id("b")
        mask = interner.mask_of({Cond("g", "T")})
        facts = closure_to_facts(interner, {target: [mask, 0]})
        assert ("b", frozenset()) in facts
        assert ("b", frozenset({Cond("g", "T")})) in facts


class TestDifferential:
    """Kernel on/off must be observationally identical."""

    @SLOW
    @given(sc=constraint_sets())
    def test_minimal_sets_identical_guarded(self, sc):
        for semantics in ALL_SEMANTICS:
            fast = minimize_fast(sc, semantics, kernel=True)
            reference = minimize_fast(sc, semantics, kernel=False)
            assert fast.constraints == reference.constraints

    @SLOW
    @given(sc=unconditional_constraint_sets())
    def test_minimal_sets_identical_unconditional(self, sc):
        for semantics in ALL_SEMANTICS:
            fast = minimize_fast(sc, semantics, kernel=True)
            reference = minimize_fast(sc, semantics, kernel=False)
            assert fast.constraints == reference.constraints

    @SLOW
    @given(sc=constraint_sets())
    def test_closure_maps_identical(self, sc):
        for semantics in ALL_SEMANTICS:
            assert closure_map(sc, semantics, kernel=True) == closure_map(
                sc, semantics, kernel=False
            )

    @SLOW
    @given(sc=constraint_sets())
    def test_equivalence_verdicts_identical(self, sc):
        for semantics in ALL_SEMANTICS:
            minimal = minimize_fast(sc, semantics, kernel=True)
            for candidate in (minimal, sc):
                for constraint in sc.constraints[:3]:
                    thinned = candidate.without(constraint)
                    assert transitive_equivalent(
                        thinned, sc, semantics, kernel=True
                    ) == transitive_equivalent(thinned, sc, semantics, kernel=False)

    def test_cyclic_set_falls_back_to_reference(self):
        cyclic = sc_of([("a", "b"), ("b", "a"), ("a", "c")])
        for semantics in ALL_SEMANTICS:
            assert closure_map(cyclic, semantics, kernel=True) == closure_map(
                cyclic, semantics, kernel=False
            )
            assert (
                minimize_fast(cyclic, semantics, kernel=True).constraints
                == minimize_fast(cyclic, semantics, kernel=False).constraints
            )

    def test_session_rejects_cyclic_sets(self):
        cyclic = sc_of([("a", "b"), ("b", "a")])
        with pytest.raises(ValueError):
            MinimizationSession(cyclic)


class TestPaperNumbersOnKernel:
    """Table 2 and Figure 9 pinned under both representation paths."""

    def test_table2_and_figure9(self, purchasing_process, purchasing_dependencies):
        kernel = DSCWeaver(kernel=True).weave(
            purchasing_process, purchasing_dependencies
        )
        reference = DSCWeaver(kernel=False).weave(
            purchasing_process, purchasing_dependencies
        )
        for result in (kernel, reference):
            assert result.report.raw_total == 40
            assert result.report.minimal == 17
            assert result.report.removed == 23
            assert {str(c) for c in result.minimal} == FIGURE9_EDGES
        assert kernel.minimal.constraints == reference.minimal.constraints

    def test_kernel_stats_attached_only_on_kernel_path(
        self, purchasing_process, purchasing_dependencies
    ):
        kernel = DSCWeaver(kernel=True).weave(
            purchasing_process, purchasing_dependencies
        )
        reference = DSCWeaver(kernel=False).weave(
            purchasing_process, purchasing_dependencies
        )
        stats = kernel.report.kernel_stats
        assert stats is not None
        assert stats["candidates"] == 30
        assert stats["removed"] == 13
        assert stats["closures_computed"] > 0
        assert "kernel" in kernel.report.as_table()
        assert reference.report.kernel_stats is None
        assert "kernel" not in reference.report.as_table()


class TestSession:
    def test_direct_drive_matches_minimize_fast(self, purchasing_weave):
        asc = purchasing_weave.translation.asc
        session = MinimizationSession(asc, Semantics.GUARD_AWARE)
        for constraint in asc.constraints:
            session.try_remove(constraint)
        direct = session.to_constraint_set()
        assert direct.constraints == minimize_fast(asc, Semantics.GUARD_AWARE).constraints

    def test_semantic_facts_matches_closure_map(self, purchasing_weave):
        asc = purchasing_weave.translation.asc
        session = MinimizationSession(asc, Semantics.GUARD_AWARE)
        reference = closure_map(asc, Semantics.GUARD_AWARE, kernel=False)
        for node in asc.nodes:
            assert session.semantic_facts(node) == reference[node]
        assert session.semantic_facts("no-such-node") == frozenset()

    def test_stats_counters_accumulate(self, purchasing_weave):
        asc = purchasing_weave.translation.asc
        stats = KernelStats()
        minimize_fast(asc, Semantics.GUARD_AWARE, kernel=True, stats=stats)
        assert stats.candidates == len(asc)
        assert stats.removed == 13
        assert (
            stats.raw_shortcut_accepts + stats.cheap_rejects + stats.full_checks
            <= stats.candidates
        )
        assert stats.closures_computed > 0
        assert stats.closure_cache_hits > 0
        assert 0.0 < stats.closure_cache_hit_rate < 1.0
        payload = stats.as_dict()
        assert payload["subsumption_tests"] == stats.subsumption_tests
        assert payload["closure_cache_hit_rate"] == pytest.approx(
            stats.closure_cache_hit_rate, rel=1e-3
        )

    def test_fresh_stats_hit_rate_is_zero(self):
        assert KernelStats().closure_cache_hit_rate == 0.0


class TestCandidateOrder:
    def test_explicit_order_wins_then_insertion_order(self):
        sc = sc_of([("a", "b"), ("b", "c"), ("a", "c")])
        explicit = [Constraint("a", "c")]
        ordered = _candidate_order(sc, explicit)
        assert ordered[0] == Constraint("a", "c")
        assert ordered[1:] == [c for c in sc.constraints if c != Constraint("a", "c")]

    def test_unknown_constraint_rejected(self):
        sc = sc_of([("a", "b")])
        with pytest.raises(ValueError):
            _candidate_order(sc, [Constraint("x", "y")])

    def test_large_explicit_order_is_not_quadratic(self):
        # Regression: the membership checks used to scan the order *list*
        # for every constraint, turning a full explicit order over a large
        # chain into an O(n^2) prelude.  With set-based membership this
        # stays well under a second even at 4000 constraints.
        names = ["a%d" % i for i in range(4001)]
        edges = [(names[i], names[i + 1]) for i in range(4000)]
        sc = sc_of(edges, activities=names)
        explicit = list(reversed(sc.constraints))
        started = time.perf_counter()
        ordered = _candidate_order(sc, explicit)
        elapsed = time.perf_counter() - started
        assert ordered == explicit
        assert elapsed < 1.0


class TestMinimizeCli:
    def test_minimize_lists_figure9(self, capsys):
        assert main(["minimize", "--workload", "purchasing"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 17

    def test_minimize_stats_prints_counters(self, capsys):
        assert main(["minimize", "--workload", "purchasing", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "minimized 30 -> 17 constraint(s) (13 removed)" in out
        assert "kernel=on" in out
        assert "closures_computed" in out
        assert "subsumption_tests" in out

    def test_minimize_no_kernel_identical_edges(self, capsys):
        assert main(["minimize", "--workload", "purchasing"]) == 0
        with_kernel = capsys.readouterr().out.strip().splitlines()
        assert main(["minimize", "--workload", "purchasing", "--no-kernel"]) == 0
        without = capsys.readouterr().out.strip().splitlines()
        assert with_kernel == without

    def test_minimize_stats_no_kernel_omits_counters(self, capsys):
        assert (
            main(["minimize", "--workload", "purchasing", "--stats", "--no-kernel"])
            == 0
        )
        out = capsys.readouterr().out
        assert "kernel=off" in out
        assert "closures_computed" not in out

    def test_minimize_semantics_flag(self, capsys):
        assert (
            main(["minimize", "--workload", "purchasing", "--semantics", "strict"])
            == 0
        )
        strict_lines = capsys.readouterr().out.strip().splitlines()
        assert len(strict_lines) >= 17
