"""Tests for the workflow-pattern constructors and their runtime behavior.

Each pattern is both checked structurally (the DSCL statements produced)
and exercised through the full pipeline: compile -> (minimize) -> schedule,
asserting the behavior the pattern name promises.
"""

from __future__ import annotations

import pytest

from repro.core.closure import Semantics
from repro.core.minimize import minimize
from repro.dscl.ast import Exclusive, HappenBefore, Program
from repro.dscl.compiler import compile_program
from repro.dscl.patterns import (
    exclusive_choice,
    interleaved_parallel_routing,
    milestone,
    parallel_split,
    sequence,
    simple_merge,
    synchronization,
)
from repro.errors import DSCLSemanticError
from repro.model.builder import ProcessBuilder
from repro.scheduler.engine import ConstraintScheduler
from repro.scheduler.metrics import max_concurrency


def run_program(process, program, outcomes=None, **scheduler_kwargs):
    compiled = compile_program(
        program,
        activities=[a.name for a in process.activities],
        guards={
            # Derive execution guards from the conditional statements so
            # dead-path elimination works for the XOR patterns.
        },
    )
    sc = compiled.sc.with_guards(compiled.sc.derive_guards_from_constraints())
    scheduler = ConstraintScheduler(
        process,
        sc,
        fine_grained=compiled.fine_grained,
        exclusives=compiled.exclusives,
        **scheduler_kwargs,
    )
    return scheduler.run(outcomes=outcomes)


class TestStructure:
    def test_sequence_statements(self):
        statements = sequence(["a", "b", "c"])
        assert [str(s) for s in statements] == ["F(a) -> S(b)", "F(b) -> S(c)"]

    def test_sequence_too_short(self):
        with pytest.raises(DSCLSemanticError):
            sequence(["a"])

    def test_parallel_split(self):
        statements = parallel_split("a", ["b", "c"])
        assert {str(s) for s in statements} == {"F(a) -> S(b)", "F(a) -> S(c)"}

    def test_synchronization(self):
        statements = synchronization(["b", "c"], "d")
        assert {str(s) for s in statements} == {"F(b) -> S(d)", "F(c) -> S(d)"}

    def test_exclusive_choice_conditions(self):
        statements = exclusive_choice("g", [("T", "yes"), ("F", "no")])
        assert {str(s) for s in statements} == {
            "F(g) ->[T] S(yes)",
            "F(g) ->[F] S(no)",
        }

    def test_interleaved_routing_pairwise(self):
        statements = interleaved_parallel_routing(["a", "b", "c"])
        assert len(statements) == 3
        assert all(isinstance(s, Exclusive) for s in statements)

    def test_milestone_states(self):
        statements = milestone("window", "act")
        assert [str(s) for s in statements] == [
            "S(window) -> S(act)",
            "S(act) -> F(window)",
        ]

    def test_empty_patterns_rejected(self):
        with pytest.raises(DSCLSemanticError):
            parallel_split("a", [])
        with pytest.raises(DSCLSemanticError):
            synchronization([], "d")
        with pytest.raises(DSCLSemanticError):
            exclusive_choice("g", [])
        with pytest.raises(DSCLSemanticError):
            interleaved_parallel_routing(["a"])


class TestBehavior:
    def _process(self, names, guard=None, durations=None):
        builder = ProcessBuilder("patterns")
        durations = durations or {}
        for name in names:
            if name == guard:
                builder.guard(name, duration=durations.get(name, 1.0))
            else:
                builder.compute(name, duration=durations.get(name, 1.0))
        return builder.build()

    def test_fork_join_diamond(self):
        process = self._process(["a", "b", "c", "d"])
        program = Program(
            parallel_split("a", ["b", "c"]) + synchronization(["b", "c"], "d")
        )
        run = run_program(process, program)
        assert run.makespan == 3.0  # b and c concurrent
        assert max_concurrency(run.trace) == 2
        assert run.trace.happened_before("a", "b")
        assert run.trace.happened_before("c", "d")

    def test_xor_split_and_merge(self):
        process = self._process(["g", "yes", "no", "after"], guard="g")
        program = Program(
            exclusive_choice("g", [("T", "yes"), ("F", "no")])
            + simple_merge(["yes", "no"], "after")
        )
        for outcome, executed, skipped in (("T", "yes", "no"), ("F", "no", "yes")):
            run = run_program(process, program, outcomes={"g": outcome})
            assert run.trace.records[executed].executed
            assert run.trace.records[skipped].skipped
            assert run.trace.records["after"].executed

    def test_xor_merge_minimizes_to_unconditional(self):
        """Under guard-aware semantics the two merge edges plus the choice
        edges imply the join follows the guard unconditionally."""
        program = Program(
            exclusive_choice("g", [("T", "yes"), ("F", "no")])
            + simple_merge(["yes", "no"], "after")
        )
        compiled = compile_program(program, activities=["g", "yes", "no", "after"])
        sc = compiled.sc.with_guards(compiled.sc.derive_guards_from_constraints())
        minimal = minimize(sc, Semantics.GUARD_AWARE)
        # Nothing is redundant in the diamond itself.
        assert len(minimal) == 4

    def test_interleaved_routing_serializes_without_fixing_order(self):
        process = self._process(["x", "y", "z"], durations={"x": 2, "y": 2, "z": 2})
        program = Program(list(interleaved_parallel_routing(["x", "y", "z"])))
        run = run_program(process, program)
        assert max_concurrency(run.trace) == 1
        assert run.makespan == 6.0

    def test_milestone_window(self):
        process = self._process(
            ["window", "act"], durations={"window": 5.0, "act": 1.0}
        )
        program = Program(milestone("window", "act"))
        run = run_program(process, program)
        window = run.trace.records["window"]
        act = run.trace.records["act"]
        assert window.start <= act.start  # started inside the window
        assert act.start <= window.finish  # window still open

    def test_max_workers_limits_concurrency(self):
        process = self._process(["a", "b", "c", "d"])
        program = Program(
            parallel_split("a", ["b", "c", "d"])
        )
        unlimited = run_program(process, program)
        limited = run_program(process, program, max_workers=1)
        assert max_concurrency(unlimited.trace) == 3
        assert max_concurrency(limited.trace) == 1
        assert limited.makespan > unlimited.makespan

    def test_max_workers_validation(self):
        process = self._process(["a"])
        from repro.core.constraints import SynchronizationConstraintSet
        from repro.errors import SchedulingError

        with pytest.raises(SchedulingError):
            ConstraintScheduler(
                process,
                SynchronizationConstraintSet(["a"]),
                max_workers=0,
            )
