"""Unit tests for the compiled watcher index and the streaming monitor.

Each CONF00x code gets a hand-built minimal scenario; every scenario is
also replayed with ``indexed=False`` to pin the naive full-scan baseline
to identical diagnostics at higher cost.
"""

from __future__ import annotations

import pytest

from repro.analysis.conditions import Cond, ConditionDomains
from repro.conformance import (
    FINISH,
    SKIP,
    START,
    ConformanceMonitor,
    Event,
    Verdict,
    compile_monitor,
)
from repro.core.constraints import Constraint, SynchronizationConstraintSet
from repro.dscl.ast import Exclusive, HappenBefore
from repro.model.activity import ActivityState, StateRef


def small_sc() -> SynchronizationConstraintSet:
    """``a -> b`` unconditional, ``g ->T c`` conditional, ``c`` guarded."""
    return SynchronizationConstraintSet(
        activities=["a", "b", "g", "c"],
        constraints=[Constraint("a", "b"), Constraint("g", "c", "T")],
        guards={"c": frozenset({Cond("g", "T")})},
        domains=ConditionDomains(),
    )


def program(**kwargs):
    return compile_monitor(small_sc(), **kwargs)


def feed_all(monitor: ConformanceMonitor, events) -> None:
    for event in events:
        monitor.feed(event)
    monitor.finish()


def codes(monitor: ConformanceMonitor):
    return [d.code for d in monitor.diagnostics]


CLEAN_TRUE_BRANCH = [
    Event("c1", "a", START, 0.0),
    Event("c1", "g", START, 0.0),
    Event("c1", "a", FINISH, 1.0),
    Event("c1", "g", FINISH, 1.0, outcome="T"),
    Event("c1", "b", START, 1.0),
    Event("c1", "c", START, 1.0),
    Event("c1", "b", FINISH, 2.0),
    Event("c1", "c", FINISH, 2.0),
]

CLEAN_FALSE_BRANCH = [
    Event("c1", "a", START, 0.0),
    Event("c1", "g", START, 0.0),
    Event("c1", "a", FINISH, 1.0),
    Event("c1", "g", FINISH, 1.0, outcome="F"),
    Event("c1", "b", START, 1.0),
    Event("c1", "c", SKIP, 1.0),
    Event("c1", "b", FINISH, 2.0),
]


class TestCompile:
    def test_index_shape(self):
        compiled = program()
        assert [c.target for c in compiled.incoming["b"]] == ["b"]
        assert [c.target for c in compiled.incoming["c"]] == ["c"]
        assert compiled.guard_dependents == {"g": frozenset({"c"})}
        assert compiled.size == 2

    def test_rejects_service_level_sets(self):
        sc = SynchronizationConstraintSet(
            activities=["a"],
            externals=["svc.port"],
            constraints=[Constraint("a", "svc.port")],
        )
        with pytest.raises(ValueError, match="activity constraint set"):
            compile_monitor(sc)

    def test_fine_grained_split_by_trigger(self):
        fine = [
            HappenBefore(StateRef("a", ActivityState.START), StateRef("b", ActivityState.START)),
            HappenBefore(StateRef("a", ActivityState.FINISH), StateRef("b", ActivityState.FINISH)),
        ]
        compiled = program(fine_grained=fine)
        assert len(compiled.fine_on_start["b"]) == 1
        assert len(compiled.fine_on_finish["b"]) == 1
        assert compiled.size == 4


class TestCleanRuns:
    @pytest.mark.parametrize("events", [CLEAN_TRUE_BRANCH, CLEAN_FALSE_BRANCH])
    @pytest.mark.parametrize("indexed", [True, False])
    def test_no_diagnostics(self, events, indexed):
        monitor = ConformanceMonitor(program(), indexed=indexed)
        feed_all(monitor, events)
        assert codes(monitor) == []
        assert monitor.violations_by_case == {"c1": 0}

    def test_true_branch_verdicts(self):
        monitor = ConformanceMonitor(program())
        feed_all(monitor, CLEAN_TRUE_BRANCH)
        assert monitor.verdict_counts[Verdict.SATISFIED] == 2
        assert monitor.verdict_counts[Verdict.VIOLATED] == 0

    def test_false_branch_is_vacuous_not_violated(self):
        monitor = ConformanceMonitor(program())
        feed_all(monitor, CLEAN_FALSE_BRANCH)
        assert monitor.verdict_counts[Verdict.SATISFIED] == 1
        # g ->T c never activates: target c was skipped.
        assert monitor.verdict_counts[Verdict.VACUOUS] == 1


class TestViolationCodes:
    def test_conf001_unconditional_order(self):
        monitor = ConformanceMonitor(program())
        monitor.feed(Event("c1", "b", START, 0.0))
        assert codes(monitor) == ["CONF001"]
        assert "a -> b" in monitor.diagnostics[0].message

    def test_conf001_conditional_resolved_retroactively(self):
        monitor = ConformanceMonitor(program())
        monitor.feed(Event("c1", "c", START, 0.0))  # guard outcome unknown: parked
        assert codes(monitor) == []
        monitor.feed(Event("c1", "g", START, 0.5))
        monitor.feed(Event("c1", "g", FINISH, 1.0, outcome="T"))
        assert codes(monitor) == ["CONF001"]

    def test_conditional_inactive_when_other_branch(self):
        monitor = ConformanceMonitor(program())
        monitor.feed(Event("c1", "c", START, 0.0))
        monitor.feed(Event("c1", "g", START, 0.5))
        monitor.feed(Event("c1", "g", FINISH, 1.0, outcome="F"))
        # Order never mattered: branch F makes g ->T c inactive... but c
        # executing although its guard requires g=T is a guard violation.
        assert codes(monitor) == ["CONF006"]
        assert monitor.verdict_counts[Verdict.VIOLATED] == 0

    def test_conf002_fine_grained_start_gate(self):
        fine = [
            HappenBefore(StateRef("a", ActivityState.START), StateRef("b", ActivityState.START))
        ]
        monitor = ConformanceMonitor(program(fine_grained=fine))
        monitor.feed(Event("c1", "b", START, 0.0))
        assert "CONF002" in codes(monitor)

    def test_conf003_exclusive_overlap(self):
        exclusives = [
            Exclusive(StateRef("b", ActivityState.RUN), StateRef("c", ActivityState.RUN))
        ]
        monitor = ConformanceMonitor(program(exclusives=exclusives))
        monitor.feed(Event("c1", "a", START, 0.0))
        monitor.feed(Event("c1", "a", FINISH, 1.0))
        monitor.feed(Event("c1", "g", START, 0.0))
        monitor.feed(Event("c1", "g", FINISH, 1.0, outcome="T"))
        monitor.feed(Event("c1", "b", START, 1.0))
        monitor.feed(Event("c1", "c", START, 1.5))  # b still running
        assert "CONF003" in codes(monitor)

    def test_conf003_no_overlap_when_sequential(self):
        exclusives = [
            Exclusive(StateRef("b", ActivityState.RUN), StateRef("c", ActivityState.RUN))
        ]
        monitor = ConformanceMonitor(program(exclusives=exclusives))
        feed_all(monitor, CLEAN_FALSE_BRANCH)
        assert "CONF003" not in codes(monitor)

    @pytest.mark.parametrize(
        "events,what",
        [
            ([Event("c1", "a", START, 0.0), Event("c1", "a", START, 0.5)], "started twice"),
            ([Event("c1", "a", FINISH, 0.0)], "finished without starting"),
            (
                [
                    Event("c1", "a", START, 0.0),
                    Event("c1", "a", FINISH, 1.0),
                    Event("c1", "a", FINISH, 2.0),
                ],
                "finished twice",
            ),
            ([Event("c1", "c", SKIP, 0.0), Event("c1", "c", SKIP, 0.5)], "skipped twice"),
            ([Event("c1", "a", START, 0.0), Event("c1", "a", SKIP, 0.5)], "skipped after starting"),
            ([Event("c1", "c", SKIP, 0.0), Event("c1", "c", START, 0.5)], "started after being skipped"),
        ],
    )
    def test_conf004_lifecycle(self, events, what):
        monitor = ConformanceMonitor(program())
        for event in events:
            monitor.feed(event)
        lifecycle = [d for d in monitor.diagnostics if d.code == "CONF004"]
        assert lifecycle and what in lifecycle[-1].message

    def test_conf004_time_regression(self):
        monitor = ConformanceMonitor(program())
        monitor.feed(Event("c1", "a", START, 5.0))
        monitor.feed(Event("c1", "a", FINISH, 1.0))
        assert any(
            d.code == "CONF004" and "time went backwards" in d.message
            for d in monitor.diagnostics
        )

    def test_conf005_unknown_activity(self):
        monitor = ConformanceMonitor(program())
        found = monitor.feed(Event("c1", "ghost", START, 0.0))
        assert [d.code for d in found] == ["CONF005"]
        assert found[0].severity.name == "WARNING"

    def test_conf006_dead_path_executed(self):
        monitor = ConformanceMonitor(program())
        monitor.feed(Event("c1", "g", START, 0.0))
        monitor.feed(Event("c1", "g", FINISH, 1.0, outcome="F"))
        monitor.feed(Event("c1", "c", START, 1.0))  # guard said skip
        assert "CONF006" in codes(monitor)

    def test_conf006_guard_skipped(self):
        monitor = ConformanceMonitor(program())
        monitor.feed(Event("c1", "g", SKIP, 0.0))
        monitor.feed(Event("c1", "c", START, 1.0))
        assert "CONF006" in codes(monitor)

    def test_conf006_outcome_outside_domain(self):
        monitor = ConformanceMonitor(program())
        monitor.feed(Event("c1", "g", START, 0.0))
        monitor.feed(Event("c1", "g", FINISH, 1.0, outcome="MAYBE"))
        assert any(
            d.code == "CONF006" and "outside its domain" in d.message
            for d in monitor.diagnostics
        )

    def test_conf007_truncated_case_is_informational(self):
        monitor = ConformanceMonitor(program())
        monitor.feed(Event("c1", "a", START, 0.0))
        found = monitor.finish()
        assert [d.code for d in found] == ["CONF007"]
        assert found[0].severity.name == "INFO"
        # Residue never marks the case violated.
        assert monitor.violations_by_case == {"c1": 0}

    def test_conf007_pending_obligation_residue(self):
        monitor = ConformanceMonitor(program())
        monitor.feed(Event("c1", "c", START, 0.0))  # parked on g, never resolved
        found = monitor.finish()
        assert any("unresolved" in line for d in found for line in d.evidence)
        # Both the guard obligation and the conditional happen-before were
        # parked on g and never resolved.
        assert monitor.verdict_counts[Verdict.PENDING] == 2


class TestCaseIsolation:
    def test_cases_do_not_share_state(self):
        monitor = ConformanceMonitor(program())
        monitor.feed(Event("c1", "a", START, 0.0))
        monitor.feed(Event("c1", "a", FINISH, 1.0))
        # a finished in c1 does not license b in c2.
        monitor.feed(Event("c2", "b", START, 0.0))
        assert codes(monitor) == ["CONF001"]
        assert monitor.violations_by_case == {"c1": 0, "c2": 1}

    def test_end_case_closes_only_that_case(self):
        monitor = ConformanceMonitor(program())
        monitor.feed(Event("c1", "a", START, 0.0))
        monitor.feed(Event("c2", "a", START, 0.0))
        monitor.end_case("c1")
        assert monitor.open_cases == ["c2"]


class TestNaiveEquivalence:
    @pytest.mark.parametrize(
        "events",
        [
            CLEAN_TRUE_BRANCH,
            CLEAN_FALSE_BRANCH,
            [Event("c1", "b", START, 0.0)],
            [Event("c1", "c", START, 0.0), Event("c1", "g", START, 0.5),
             Event("c1", "g", FINISH, 1.0, outcome="T")],
        ],
    )
    def test_same_diagnostics_more_checks(self, events):
        fast = ConformanceMonitor(program(), indexed=True)
        slow = ConformanceMonitor(program(), indexed=False)
        feed_all(fast, events)
        feed_all(slow, events)
        assert [d.message for d in fast.diagnostics] == [d.message for d in slow.diagnostics]
        assert fast.checks <= slow.checks
