"""Tests for the compiled constraint program and per-case instances.

The load-bearing property: under the default lossless retry policy, a
:class:`~repro.runtime.instance.CaseInstance` produces bit-for-bit the
same schedule (activities, start/finish times, outcomes, skips) as the
single-case :class:`~repro.scheduler.engine.ConstraintScheduler`, for
every workload and every guard-outcome combination.  Everything else the
runtime layers on (journaling, sharding, recovery) rests on this.
"""

from __future__ import annotations

import itertools

import pytest

from repro.errors import SchedulingError
from repro.runtime import (
    CaseInstance,
    CaseStatus,
    compile_program,
    program_from_weave,
)
from repro.scheduler.engine import ConstraintScheduler


def outcome_combos(program):
    """Every guard-outcome assignment of ``program``, as dicts."""
    guards = program.guard_names()
    domains = [program.outcome_domain(guard) for guard in guards]
    for values in itertools.product(*domains):
        yield dict(zip(guards, values))


def reference_schedule(process, result, sc, outcomes):
    run = ConstraintScheduler(
        process,
        sc,
        fine_grained=result.fine_grained,
        exclusives=result.exclusives,
    ).run(outcomes=outcomes)
    executed = sorted(
        (record.name, record.start, record.finish)
        for record in run.trace.executed()
    )
    return executed, sorted(run.trace.skipped()), run.makespan


class TestConstraintProgram:
    def test_compiles_all_workloads(self, all_weaves):
        for name, (_process, result) in all_weaves.items():
            program = program_from_weave(result, "minimal", target="runtime")
            assert program.activities, name
            assert program.size >= len(program.constraints)

    def test_incoming_index_partitions_constraints(self, purchasing_weave):
        program = program_from_weave(purchasing_weave, "minimal", target="runtime")
        indexed = sum(len(found) for found in program.incoming.values())
        assert indexed == len(program.constraints)
        for name, found in program.incoming.items():
            assert all(constraint.target == name for constraint in found)

    def test_minimal_program_is_smaller(self, purchasing_weave):
        minimal = program_from_weave(purchasing_weave, "minimal", target="runtime")
        full = program_from_weave(purchasing_weave, "full", target="runtime")
        assert len(minimal.constraints) < len(full.constraints)

    def test_rejects_unknown_which(self, purchasing_weave):
        with pytest.raises(ValueError, match="minimal.*full"):
            program_from_weave(purchasing_weave, "bogus", target="runtime")

    def test_rejects_service_set(self, purchasing_process, purchasing_weave):
        with pytest.raises(SchedulingError, match="activity constraint set"):
            compile_program(purchasing_process, purchasing_weave.merged)

    def test_guard_names_in_scheduling_order(self, purchasing_weave):
        program = program_from_weave(purchasing_weave, "minimal", target="runtime")
        guards = program.guard_names()
        assert "if_au" in guards
        positions = [program.activities.index(guard) for guard in guards]
        assert positions == sorted(positions)


class TestSchedulerEquivalence:
    def test_every_workload_every_outcome(self, all_weaves):
        for name, (process, result) in all_weaves.items():
            program = program_from_weave(result, "minimal", target="runtime")
            for outcomes in outcome_combos(program):
                executed, skipped, makespan = reference_schedule(
                    process, result, result.minimal, outcomes
                )
                instance = CaseInstance("c", program, outcomes=outcomes)
                run = instance.run_to_completion()
                label = "%s %r" % (name, outcomes)
                assert run.status == "completed", label
                assert sorted(run.executed) == executed, label
                assert sorted(run.skipped) == skipped, label
                assert run.makespan == makespan, label

    def test_minimal_and_full_agree_per_case(self, all_weaves):
        for name, (_process, result) in all_weaves.items():
            minimal = program_from_weave(result, "minimal", target="runtime")
            full = program_from_weave(result, "full", target="runtime")
            for outcomes in outcome_combos(minimal):
                a = CaseInstance("c", minimal, outcomes=outcomes).run_to_completion()
                b = CaseInstance("c", full, outcomes=outcomes).run_to_completion()
                assert a.final_state() == b.final_state(), name

    def test_outcome_plan_changes_path(self, purchasing_weave):
        program = program_from_weave(purchasing_weave, "minimal", target="runtime")
        taken = CaseInstance("c", program, outcomes={"if_au": "T"}).run_to_completion()
        declined = CaseInstance(
            "c", program, outcomes={"if_au": "F"}
        ).run_to_completion()
        assert taken.final_state() != declined.final_state()
        assert declined.skipped


class TestEvaluationCost:
    def test_minimal_costs_fewer_checks_than_full(self, purchasing_weave):
        minimal = program_from_weave(purchasing_weave, "minimal", target="runtime")
        full = program_from_weave(purchasing_weave, "full", target="runtime")
        a = CaseInstance("c", minimal).run_to_completion()
        b = CaseInstance("c", full).run_to_completion()
        assert a.checks < b.checks

    def test_indexed_costs_fewer_checks_than_naive(self, purchasing_weave):
        program = program_from_weave(purchasing_weave, "minimal", target="runtime")
        indexed = CaseInstance("c", program, indexed=True).run_to_completion()
        naive = CaseInstance("c", program, indexed=False).run_to_completion()
        assert indexed.final_state() == naive.final_state()
        assert indexed.checks < naive.checks

    def test_checks_and_transitions_are_recorded(self, purchasing_weave):
        program = program_from_weave(purchasing_weave, "minimal", target="runtime")
        run = CaseInstance("c", program).run_to_completion()
        assert run.transitions == len(run.executed) * 2 + len(run.skipped)
        assert run.checks > 0


class TestStepwiseExecution:
    def test_advance_matches_run_to_completion(self, purchasing_weave):
        program = program_from_weave(purchasing_weave, "minimal", target="runtime")
        stepped = CaseInstance("c", program)
        while stepped.advance():
            pass
        whole = CaseInstance("c", program).run_to_completion()
        assert stepped.result() == whole

    def test_step_after_completion_is_inert(self, purchasing_weave):
        program = program_from_weave(purchasing_weave, "minimal", target="runtime")
        instance = CaseInstance("c", program)
        instance.run_to_completion()
        assert instance.status is CaseStatus.COMPLETED
        assert instance.step() is False
