"""The ``dscweaver lint`` command and the validate exit-code contract."""

from __future__ import annotations

import json

from repro.cli import main


class TestLintCommand:
    def test_default_exit_zero_on_clean_workload(self, capsys):
        # Purchasing has only info-level findings; default gate is error.
        assert main(["lint", "purchasing"]) == 0
        out = capsys.readouterr().out
        assert "lint results for purchasing" in out
        assert "0 error" in out

    def test_fail_on_warning_passes_with_only_info(self, capsys):
        assert main(["lint", "purchasing", "--fail-on", "warning"]) == 0

    def test_fail_on_info_gates_info_findings(self, capsys):
        # The acceptance contract: any finding at or above --fail-on -> 1.
        assert main(["lint", "purchasing", "--fail-on", "info"]) == 1

    def test_ignore_silences_rule_group(self, capsys):
        assert main(["lint", "purchasing", "--ignore", "RED", "--fail-on", "info"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_select_comma_separated(self, capsys):
        assert main(["lint", "purchasing", "--select", "SYNC001,SYNC002"]) == 0
        out = capsys.readouterr().out
        assert "RED001" not in out

    def test_json_format(self, capsys):
        assert main(["lint", "purchasing", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["subject"] == "purchasing"
        assert payload["counts"]["error"] == 0

    def test_sarif_format(self, capsys):
        assert main(["lint", "purchasing", "--format", "sarif"]) == 0
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["tool"]["driver"]["name"] == "dscweaver-lint"

    def test_constructs_flag_surfaces_spec_findings(self, capsys):
        code = main(
            ["lint", "purchasing", "--constructs", "--fail-on", "warning"]
        )
        assert code == 1  # SPEC001 warnings gate at --fail-on warning
        out = capsys.readouterr().out
        assert "SPEC001" in out
        assert "invProduction_po" in out

    def test_constructs_flag_rejected_for_other_workloads(self, capsys):
        assert main(["lint", "loan", "--constructs"]) == 2

    def test_baseline_round_trip(self, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        assert main(["lint", "purchasing", "--write-baseline", baseline]) == 0
        capsys.readouterr()
        code = main(
            ["lint", "purchasing", "--baseline", baseline, "--fail-on", "info"]
        )
        out = capsys.readouterr().out
        assert code == 0  # everything suppressed, nothing gates
        assert "suppressed by baseline" in out

    def test_missing_baseline_is_usage_error(self, capsys):
        assert main(["lint", "purchasing", "--baseline", "/nonexistent.json"]) == 2

    def test_default_workload_is_purchasing(self, capsys):
        assert main(["lint"]) == 0
        assert "purchasing" in capsys.readouterr().out


class TestValidateCommand:
    def test_validate_clean_workload_exits_zero(self, capsys):
        assert main(["validate", "--workload", "purchasing"]) == 0
        out = capsys.readouterr().out
        assert "conflicts: no conflicts detected" in out
        assert "sound: True" in out

    def test_validate_all_workloads(self, capsys):
        for workload in ("deployment", "loan", "travel", "insurance"):
            assert main(["validate", "--workload", workload]) == 0


class TestDotRaces:
    def test_dot_races_runs(self, capsys):
        assert main(["dot", "--workload", "purchasing", "--what", "races"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph purchasing")
        assert "race:" not in out  # purchasing is race-free
