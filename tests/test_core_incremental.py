"""Tests for incremental constraint addition (evolution support)."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.closure import Semantics
from repro.core.constraints import Constraint
from repro.core.equivalence import transitive_equivalent
from repro.core.incremental import (
    add_constraint_incremental,
    is_covered,
    remove_requirement,
)
from repro.core.minimize import is_minimal, minimize
from tests.strategies import constraint_sets

SLOW = settings(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestIsCovered:
    def test_transitive_coverage(self, purchasing_weave):
        minimal = purchasing_weave.minimal
        assert is_covered(minimal, Constraint("recClient_po", "replyClient_oi"))
        assert is_covered(minimal, Constraint("invCredit_po", "if_au"))

    def test_uncovered(self, purchasing_weave):
        minimal = purchasing_weave.minimal
        assert not is_covered(
            minimal, Constraint("invProduction_po", "invProduction_ss")
        )


class TestIncrementalAdd:
    def test_noop_when_covered(self, purchasing_weave):
        minimal = purchasing_weave.minimal
        result = add_constraint_incremental(
            minimal, Constraint("recClient_po", "replyClient_oi")
        )
        assert result is minimal  # literally unchanged

    def test_noop_when_present(self, purchasing_weave):
        minimal = purchasing_weave.minimal
        result = add_constraint_incremental(
            minimal, Constraint("recClient_po", "invCredit_po")
        )
        assert result is minimal

    def test_new_requirement_added(self, purchasing_weave):
        minimal = purchasing_weave.minimal
        new = Constraint("invProduction_po", "invProduction_ss")
        result = add_constraint_incremental(minimal, new)
        assert new in result
        # The new edge makes the old cooperation shortcut redundant:
        # invProduction_po -> invProduction_ss -> replyClient_oi.
        assert not result.has_constraint("invProduction_po", "replyClient_oi")
        assert len(result) == len(minimal)
        assert is_minimal(result, Semantics.GUARD_AWARE)

    def test_addition_can_subsume_existing(self, purchasing_weave):
        """Adding recShip_ss -> replyClient_oi... is covered; instead use a
        synthetic case: adding a -> b to {a -> c, b..} where an existing
        shortcut becomes redundant."""
        from repro.core.constraints import SynchronizationConstraintSet

        sc = SynchronizationConstraintSet(
            ["a", "b", "c"],
            constraints=[Constraint("a", "c"), Constraint("b", "c")],
        )
        minimal = minimize(sc, Semantics.STRICT)
        assert len(minimal) == 2
        grown = add_constraint_incremental(
            minimal, Constraint("a", "b"), Semantics.STRICT
        )
        # a -> c is now implied via a -> b -> c and must disappear.
        assert not grown.has_constraint("a", "c")
        assert len(grown) == 2

    @SLOW
    @given(constraint_sets(max_nodes=7, max_edges=10), st.data())
    def test_matches_full_reminimization(self, sc, data):
        """Incremental addition is equivalent to re-minimizing from scratch."""
        minimal = minimize(sc, Semantics.GUARD_AWARE)
        names = sc.activities
        source = data.draw(st.sampled_from(names), label="source")
        target = data.draw(
            st.sampled_from([n for n in names if n != source]), label="target"
        )
        new = Constraint(source, target)

        # Skip additions that would create a cycle (the weaver rejects
        # those upstream).
        from repro.analysis.graphs import has_path

        if has_path(minimal.as_graph(), target, source):
            return

        incremental = add_constraint_incremental(minimal, new, Semantics.GUARD_AWARE)
        reference = minimal.copy()
        reference.add(new)
        assert transitive_equivalent(
            incremental, reference, Semantics.GUARD_AWARE
        )
        assert is_minimal(incremental, Semantics.GUARD_AWARE)


class TestDuplicateClosureEdge:
    """Adding a constraint that duplicates an existing *closure* edge.

    Regression guard for the kernel path: such an addition must be a
    no-op for `add_constraint_incremental` (same object back), and a
    session `rebase` over it must match a cold rebuild bit-for-bit
    without invalidating closure caches outside the edit's ancestor
    region.
    """

    def _chain(self):
        from repro.core.constraints import SynchronizationConstraintSet

        return SynchronizationConstraintSet(
            ["a", "b", "c", "d"],
            constraints=[
                Constraint("a", "b"),
                Constraint("b", "c"),
                Constraint("c", "d"),
            ],
        )

    @pytest.mark.parametrize("kernel", [True, False])
    def test_noop_on_both_evaluator_paths(self, kernel):
        minimal = minimize(self._chain(), Semantics.GUARD_AWARE)
        duplicate = Constraint("b", "d")  # closure already has b ->* d
        assert is_covered(minimal, duplicate, Semantics.GUARD_AWARE, kernel=kernel)
        result = add_constraint_incremental(
            minimal, duplicate, Semantics.GUARD_AWARE, kernel=kernel
        )
        assert result is minimal

    @pytest.mark.parametrize("kernel", [True, False])
    def test_guarded_duplicate_is_covered(self, kernel):
        from repro.analysis.conditions import Cond
        from repro.core.constraints import SynchronizationConstraintSet

        sc = SynchronizationConstraintSet(
            ["a", "b", "c"],
            constraints=[Constraint("a", "b", "T"), Constraint("b", "c")],
            guards={"b": {Cond("a", "T")}},
        )
        minimal = minimize(sc, Semantics.GUARD_AWARE)
        duplicate = Constraint("a", "c", "T")
        result = add_constraint_incremental(
            minimal, duplicate, Semantics.GUARD_AWARE, kernel=kernel
        )
        assert result is minimal

    def test_rebase_matches_cold_without_spurious_invalidation(self):
        from repro.core.kernel import KernelStats
        from repro.core.minimize import minimize_fast
        from repro.core.session import MinimizationSession

        sc = self._chain()
        stats = KernelStats()
        session = MinimizationSession(sc, Semantics.GUARD_AWARE, stats=stats)
        for constraint in sc.constraints:
            session.try_remove(constraint)

        # A declared duplicate is a pure no-op: nothing re-checked.
        candidates_before = stats.candidates
        unchanged = session.rebase(added=(Constraint("a", "b"),))
        assert stats.candidates == candidates_before
        assert {(c.source, c.target, c.condition) for c in unchanged} == {
            (c.source, c.target, c.condition) for c in sc.constraints
        }

        # A closure duplicate (b ->* d already holds) re-minimizes to the
        # cold result and leaves non-ancestor closure caches warm.
        rebased = session.rebase(added=(Constraint("b", "d"),))
        cold = minimize_fast(
            sc.replace_constraints(list(sc.constraints) + [Constraint("b", "d")]),
            semantics=Semantics.GUARD_AWARE,
        )
        assert {(c.source, c.target, c.condition) for c in rebased} == {
            (c.source, c.target, c.condition) for c in cold
        }
        interner = session.interner
        for name in ("c", "d"):  # strictly below the edit source b
            assert session._raw[interner.node_id(name)] is not None


class TestRemoveRequirement:
    def test_member_removal(self, purchasing_weave):
        minimal = purchasing_weave.minimal
        constraint = Constraint("invProduction_po", "replyClient_oi")
        smaller = remove_requirement(minimal, constraint)
        assert smaller is not None
        assert constraint not in smaller
        assert len(smaller) == len(minimal) - 1

    def test_non_member_returns_none(self, purchasing_weave):
        assert (
            remove_requirement(
                purchasing_weave.minimal,
                Constraint("invShip_po", "replyClient_oi"),
            )
            is None
        )
