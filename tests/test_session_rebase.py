"""Differential tests for :meth:`MinimizationSession.rebase`.

The contract that makes incremental re-minimization usable for hot
redeploys: rebasing a session over edits ``(added, removed)`` must produce
*bit-identical* minimal sets to building a fresh session on the edited
declared set and minimizing cold — for random guarded DAGs, random edit
batches, and all three semantics.  Decision replay, region tracking and
cache invalidation are all implementation detail behind that property.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.closure import Semantics
from repro.core.constraints import Constraint, SynchronizationConstraintSet
from repro.core.minimize import minimize_fast
from repro.core.session import MinimizationSession
from tests.strategies import constraint_sets

SLOW = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

ALL_SEMANTICS = [Semantics.STRICT, Semantics.GUARD_AWARE, Semantics.REACHABILITY]


def _key(constraint):
    return (constraint.source, constraint.target, constraint.condition)


def _minimize_with_session(sc, semantics):
    """The exact cold pass the kernel path of ``minimize_fast`` runs."""
    session = MinimizationSession(sc, semantics)
    for constraint in sc.constraints:
        session.try_remove(constraint)
    return session, session.to_constraint_set()


def _edited_declared(sc, added, removed):
    """The edited declared set, mirroring ``rebase``'s own edit semantics."""
    removed_keys = {_key(c) for c in removed}
    declared_keys = {_key(c) for c in sc.constraints}
    survivors = [c for c in sc.constraints if _key(c) not in removed_keys]
    additions = []
    seen = set()
    for constraint in added:
        key = _key(constraint)
        if key in seen or (key in declared_keys and key not in removed_keys):
            continue
        seen.add(key)
        additions.append(constraint)
    return sc.replace_constraints(survivors + additions)


@st.composite
def rebase_cases(draw):
    """``(base set, added, removed)`` with the edited set guaranteed acyclic.

    Added edges only ever point forward in activity-index order — the same
    invariant :func:`tests.strategies.constraint_sets` maintains — so base
    and edited sets are both DAGs.  Conditions on added edges may introduce
    condition atoms the base set never interned.
    """
    sc = draw(constraint_sets(min_nodes=3, max_nodes=8, max_edges=14))
    names = sc.activities
    declared = sc.constraints
    removed = (
        draw(st.lists(st.sampled_from(declared), max_size=3, unique=True))
        if declared
        else []
    )
    pairs = [
        (i, j) for i in range(len(names)) for j in range(i + 1, len(names))
    ]
    added = []
    for source_index, target_index in draw(
        st.lists(st.sampled_from(pairs), max_size=4, unique=True)
    ):
        condition = draw(st.sampled_from([None, None, "T", "F"]))
        added.append(Constraint(names[source_index], names[target_index], condition))
    return sc, tuple(added), tuple(removed)


class TestRebaseDifferential:
    @pytest.mark.parametrize("semantics", ALL_SEMANTICS)
    @given(case=rebase_cases())
    @SLOW
    def test_rebase_matches_cold_minimization(self, semantics, case):
        sc, added, removed = case
        session, _ = _minimize_with_session(sc, semantics)
        rebased = session.rebase(added=added, removed=removed)

        edited = _edited_declared(sc, added, removed)
        expected = minimize_fast(edited, semantics)
        assert rebased.constraints == expected.constraints

    @pytest.mark.parametrize("semantics", ALL_SEMANTICS)
    @given(case=rebase_cases(), second=st.data())
    @SLOW
    def test_sequential_rebases_stay_exact(self, semantics, case, second):
        """Session state after one rebase supports the next one unchanged."""
        sc, added, removed = case
        session, _ = _minimize_with_session(sc, semantics)
        session.rebase(added=added, removed=removed)
        edited = _edited_declared(sc, added, removed)

        declared = edited.constraints
        removed_2 = (
            second.draw(st.lists(st.sampled_from(declared), max_size=2, unique=True))
            if declared
            else []
        )
        names = edited.activities
        pairs = [
            (i, j) for i in range(len(names)) for j in range(i + 1, len(names))
        ]
        added_2 = [
            Constraint(names[i], names[j])
            for i, j in second.draw(
                st.lists(st.sampled_from(pairs), max_size=2, unique=True)
            )
        ]
        rebased = session.rebase(added=tuple(added_2), removed=tuple(removed_2))
        expected = minimize_fast(
            _edited_declared(edited, added_2, removed_2), semantics
        )
        assert rebased.constraints == expected.constraints


class TestRebaseEdits:
    def _base(self):
        names = ["a", "b", "c", "d"]
        constraints = [
            Constraint("a", "b"),
            Constraint("b", "c"),
            Constraint("a", "c"),  # transitive, removed by minimization
            Constraint("c", "d"),
        ]
        return SynchronizationConstraintSet(activities=names, constraints=constraints)

    def test_noop_rebase_returns_current_minimal(self):
        session, minimal = _minimize_with_session(self._base(), Semantics.STRICT)
        assert session.rebase().constraints == minimal.constraints

    def test_duplicate_addition_is_noop(self):
        session, minimal = _minimize_with_session(self._base(), Semantics.STRICT)
        rebased = session.rebase(added=(Constraint("a", "b"),))
        assert rebased.constraints == minimal.constraints

    def test_readding_a_minimized_away_edge_is_still_removed(self):
        # a->c is declared, minimized away; adding it again must not
        # resurrect it in the minimal set.
        session, minimal = _minimize_with_session(self._base(), Semantics.STRICT)
        assert not any(_key(c) == ("a", "c", None) for c in minimal.constraints)
        rebased = session.rebase(added=(Constraint("a", "c"),))
        assert rebased.constraints == minimal.constraints

    def test_removing_a_bridge_changes_decisions(self):
        # Removing b->c makes the declared a->c edge necessary again.
        session, minimal = _minimize_with_session(self._base(), Semantics.STRICT)
        rebased = session.rebase(removed=(Constraint("b", "c"),))
        assert any(_key(c) == ("a", "c", None) for c in rebased.constraints)
        edited = _edited_declared(self._base(), (), (Constraint("b", "c"),))
        assert rebased.constraints == minimize_fast(edited, Semantics.STRICT).constraints

    def test_unknown_activity_raises_and_preserves_session(self):
        session, minimal = _minimize_with_session(self._base(), Semantics.STRICT)
        with pytest.raises(ValueError):
            session.rebase(added=(Constraint("a", "nope"),))
        assert session.to_constraint_set().constraints == minimal.constraints
        assert session.rebase().constraints == minimal.constraints

    def test_unknown_removal_raises(self):
        session, _ = _minimize_with_session(self._base(), Semantics.STRICT)
        with pytest.raises(ValueError):
            session.rebase(removed=(Constraint("a", "d"),))

    def test_cycle_raises_before_mutating(self):
        session, minimal = _minimize_with_session(self._base(), Semantics.STRICT)
        with pytest.raises(ValueError):
            session.rebase(added=(Constraint("d", "a"),))
        assert session.to_constraint_set().constraints == minimal.constraints
        # Session still fully functional after the rejected edit.
        rebased = session.rebase(added=(Constraint("a", "d"),))
        edited = _edited_declared(self._base(), (Constraint("a", "d"),), ())
        assert rebased.constraints == minimize_fast(edited, Semantics.STRICT).constraints
