"""Tests for the Monte-Carlo makespan comparison harness."""

from __future__ import annotations

import pytest

from repro.constructs.rewrite import constructs_to_constraints
from repro.scheduler.montecarlo import MakespanSummary, compare_schemes
from repro.workloads.purchasing_constructs import build_purchasing_constructs


class TestSummary:
    def test_statistics(self):
        summary = MakespanSummary.of([1.0, 2.0, 3.0, 4.0])
        assert summary.runs == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.p50 == 3.0
        assert summary.p95 == 4.0

    def test_single_sample(self):
        summary = MakespanSummary.of([7.0])
        assert summary.stdev == 0.0
        assert summary.p95 == 7.0


class TestCompareSchemes:
    def test_paired_comparison(self, purchasing_process, purchasing_weave):
        figure2 = constructs_to_constraints(
            purchasing_process, build_purchasing_constructs()
        )
        summaries = compare_schemes(
            purchasing_process,
            {
                "minimal": purchasing_weave.minimal,
                "full": purchasing_weave.asc,
                "figure2": figure2,
            },
            runs=30,
            jitter=0.5,
            seed=11,
        )
        minimal = summaries["minimal"]
        full = summaries["full"]
        figure2_summary = summaries["figure2"]
        # Equivalent schemes: identical distributions on paired draws.
        assert minimal.mean == pytest.approx(full.mean)
        assert minimal.maximum == pytest.approx(full.maximum)
        # The imperative encoding never beats the dependency schedule and,
        # with jittered durations, its extra sequencing costs on average
        # (the over-specified edges sit on some sampled critical paths).
        assert figure2_summary.mean >= minimal.mean

    def test_determinism_by_seed(self, purchasing_process, purchasing_weave):
        kwargs = dict(
            schemes={"minimal": purchasing_weave.minimal}, runs=10, seed=3
        )
        first = compare_schemes(purchasing_process, **kwargs)
        second = compare_schemes(purchasing_process, **kwargs)
        assert first["minimal"] == second["minimal"]

    def test_zero_jitter_reproduces_deterministic_makespan(
        self, purchasing_process, purchasing_weave
    ):
        from repro.scheduler.engine import ConstraintScheduler

        deterministic = ConstraintScheduler(
            purchasing_process, purchasing_weave.minimal
        ).run()
        summaries = compare_schemes(
            purchasing_process,
            {"minimal": purchasing_weave.minimal},
            runs=5,
            jitter=0.0,
        )
        assert summaries["minimal"].mean == pytest.approx(deterministic.makespan)
        assert summaries["minimal"].stdev == pytest.approx(0.0)
