"""Tests for the Monte-Carlo makespan comparison harness."""

from __future__ import annotations

import random
import statistics

import pytest

from repro.constructs.rewrite import constructs_to_constraints
from repro.scheduler.montecarlo import MakespanSummary, compare_schemes, quantile
from repro.workloads.purchasing_constructs import build_purchasing_constructs


class TestQuantile:
    def test_even_count_median_interpolates(self):
        """Regression: the old ``ordered[n // 2]`` shortcut returned the
        upper median (3.0 here), biasing p50 high on even sample counts."""
        assert quantile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)

    def test_agrees_with_statistics_median(self):
        rng = random.Random(5)
        for n in range(1, 30):
            samples = [rng.uniform(0, 100) for _ in range(n)]
            assert quantile(samples, 0.5) == pytest.approx(
                statistics.median(samples)
            )

    def test_extremes_and_interpolation(self):
        samples = [10.0, 20.0, 30.0, 40.0, 50.0]
        assert quantile(samples, 0.0) == 10.0
        assert quantile(samples, 1.0) == 50.0
        assert quantile(samples, 0.95) == pytest.approx(48.0)
        assert quantile(samples, 0.25) == pytest.approx(20.0)

    def test_unsorted_input_is_sorted_first(self):
        assert quantile([4.0, 1.0, 3.0, 2.0], 0.5) == pytest.approx(2.5)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError, match="empty"):
            quantile([], 0.5)
        with pytest.raises(ValueError, match="q must be"):
            quantile([1.0], 1.5)


class TestSummary:
    def test_statistics(self):
        summary = MakespanSummary.of([1.0, 2.0, 3.0, 4.0])
        assert summary.runs == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.p50 == pytest.approx(2.5)
        assert summary.p95 == pytest.approx(3.85)

    def test_p50_matches_statistics_median(self):
        samples = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0]
        summary = MakespanSummary.of(samples)
        assert summary.p50 == pytest.approx(statistics.median(samples))

    def test_single_sample(self):
        summary = MakespanSummary.of([7.0])
        assert summary.stdev == 0.0
        assert summary.p50 == 7.0
        assert summary.p95 == 7.0


class TestCompareSchemes:
    def test_paired_comparison(self, purchasing_process, purchasing_weave):
        figure2 = constructs_to_constraints(
            purchasing_process, build_purchasing_constructs()
        )
        summaries = compare_schemes(
            purchasing_process,
            {
                "minimal": purchasing_weave.minimal,
                "full": purchasing_weave.asc,
                "figure2": figure2,
            },
            runs=30,
            jitter=0.5,
            seed=11,
        )
        minimal = summaries["minimal"]
        full = summaries["full"]
        figure2_summary = summaries["figure2"]
        # Equivalent schemes: identical distributions on paired draws.
        assert minimal.mean == pytest.approx(full.mean)
        assert minimal.maximum == pytest.approx(full.maximum)
        # The imperative encoding never beats the dependency schedule and,
        # with jittered durations, its extra sequencing costs on average
        # (the over-specified edges sit on some sampled critical paths).
        assert figure2_summary.mean >= minimal.mean

    def test_determinism_by_seed(self, purchasing_process, purchasing_weave):
        kwargs = dict(
            schemes={"minimal": purchasing_weave.minimal}, runs=10, seed=3
        )
        first = compare_schemes(purchasing_process, **kwargs)
        second = compare_schemes(purchasing_process, **kwargs)
        assert first["minimal"] == second["minimal"]

    def test_zero_jitter_reproduces_deterministic_makespan(
        self, purchasing_process, purchasing_weave
    ):
        from repro.scheduler.engine import ConstraintScheduler

        deterministic = ConstraintScheduler(
            purchasing_process, purchasing_weave.minimal
        ).run()
        summaries = compare_schemes(
            purchasing_process,
            {"minimal": purchasing_weave.minimal},
            runs=5,
            jitter=0.0,
        )
        assert summaries["minimal"].mean == pytest.approx(deterministic.makespan)
        assert summaries["minimal"].stdev == pytest.approx(0.0)
