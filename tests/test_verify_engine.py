"""Unit tests for the symbolic verifier (`repro.verify`).

Each VER code gets a purpose-built program whose verdict is known by
construction: proven chains, refuted cycles, valuation-dependent
deadlocks, dead activities, unreachable branches, inert constraints,
two-phase (exclusive / fine-grained) interleaving deadlocks, service
callback deadlocks, and the VER005 migration strand analysis.  The
runtime RT004 evidence and the petri witness paths are checked against
the same scenarios so the three reports cross-reference.
"""

from __future__ import annotations

from repro.analysis.conditions import Cond, ConditionDomains
from repro.core.constraints import Constraint, SynchronizationConstraintSet
from repro.dscl.ast import Exclusive, HappenBefore, StateRef
from repro.lint import LintConfig, LintContext, Severity, run_lint
from repro.model.activity import ActivityState
from repro.model.builder import ProcessBuilder
from repro.runtime.instance import CaseInstance, CaseStatus
from repro.runtime.program import compile_program
from repro.verify import (
    StateSpace,
    migration_strands,
    petri_cross_check,
    synthesize_process,
    verify_constraints,
    verify_program,
    would_strand,
)


def _sc(constraints, activities, guards=None, domains=None):
    return SynchronizationConstraintSet(
        activities=activities,
        constraints=constraints,
        guards=guards,
        domains=domains,
    )


def _program(constraints, activities, guards=None, domains=None):
    sc = _sc(constraints, activities, guards=guards, domains=domains)
    return compile_program(synthesize_process(sc), sc)


def _codes(report):
    return sorted(d.code for d in report.diagnostics)


class TestDeadlockFreedom:
    def test_chain_is_proven(self):
        report = verify_constraints(
            _sc([Constraint("a", "b"), Constraint("b", "c")], ("a", "b", "c"))
        )
        assert report.deadlock_free is True
        assert report.counterexample == ()
        assert report.dead_activities == ()
        assert report.distinct_finals == 1
        assert report.ok
        assert "VER001" not in _codes(report)

    def test_cycle_is_refuted_at_the_initial_state(self):
        report = verify_constraints(
            _sc([Constraint("a", "b"), Constraint("b", "a")], ("a", "b"))
        )
        assert report.deadlock_free is False
        assert report.counterexample == ()  # stuck before any step
        diagnostic = next(d for d in report.diagnostics if d.code == "VER001")
        assert diagnostic.severity is Severity.ERROR
        assert "a" in diagnostic.message and "b" in diagnostic.message
        assert any("unsatisfied constraint" in line for line in diagnostic.evidence)

    def test_valuation_dependent_deadlock_names_the_branch(self):
        # b only exists when g=F; in that world a and b deadlock on each
        # other.  Under g=T both are skipped/free and the case completes.
        sc = _sc(
            [Constraint("a", "b"), Constraint("b", "a")],
            ("g", "a", "b"),
            guards={"a": {Cond("g", "F")}, "b": {Cond("g", "F")}},
        )
        report = verify_constraints(sc)
        assert report.deadlock_free is False
        assert "g=F" in " ".join(report.counterexample)
        # The deadlock is branch-local: the proof machinery still saw the
        # completing g=T world.
        assert report.stats.terminals >= 2

    def test_summary_lines_render_the_verdict(self):
        report = verify_constraints(_sc([Constraint("a", "b")], ("a", "b")))
        text = "\n".join(report.summary_lines())
        assert "PROVEN deadlock-free" in text
        assert "dead activities: none" in text
        assert "inert constraints: none" in text


class TestDeadActivities:
    def test_contradictory_guards_make_the_target_dead(self):
        sc = _sc(
            [Constraint("g", "b")],
            ("g", "a", "b"),
            guards={"b": {Cond("g", "T"), Cond("g", "F")}},
        )
        report = verify_constraints(sc)
        assert report.deadlock_free is True  # b is skipped, never stuck
        assert report.dead_activities == ("b",)
        diagnostic = next(d for d in report.diagnostics if d.code == "VER002")
        assert diagnostic.severity is Severity.ERROR
        assert diagnostic.location.name == "b"

    def test_dead_guard_cascades_to_unreachable_branches(self):
        # g itself is dead (contradictory guards on it), so neither g=T nor
        # g=F is ever produced and b (guarded on g=T) dies too.
        sc = _sc(
            [Constraint("h", "g")],
            ("h", "g", "b"),
            guards={
                "g": {Cond("h", "T"), Cond("h", "F")},
                "b": {Cond("g", "T")},
            },
        )
        report = verify_constraints(sc)
        assert set(report.dead_activities) == {"b", "g"}
        unreachable = {(g, v) for g, v, _ in report.unreachable_branches}
        assert ("g", "T") in unreachable


class TestUnreachableBranches:
    def test_out_of_domain_condition_is_flagged(self):
        domains = ConditionDomains()
        domains.declare("g", ["T", "F"])
        sc = _sc(
            [Constraint("g", "b")],
            ("g", "b"),
            guards={"b": {Cond("g", "X")}},
            domains=domains,
        )
        report = verify_constraints(sc)
        (branch,) = report.unreachable_branches
        assert branch[:2] == ("g", "X")
        assert branch[2] == ("b",)
        diagnostic = next(d for d in report.diagnostics if d.code == "VER003")
        assert diagnostic.severity is Severity.WARNING
        assert "not an outcome" in " ".join(diagnostic.evidence)
        # The dependent can never resolve to True, so it is also dead.
        assert report.dead_activities == ("b",)

    def test_reachable_branches_stay_silent(self):
        sc = _sc(
            [Constraint("g", "b", "T")],
            ("g", "b"),
            guards={"b": {Cond("g", "T")}},
        )
        report = verify_constraints(sc)
        assert report.unreachable_branches == ()
        assert report.dead_activities == ()
        assert report.distinct_finals == 2  # {g, b} and {g} worlds


class TestInertConstraints:
    def test_transitive_edge_is_inert(self):
        report = verify_constraints(
            _sc(
                [
                    Constraint("a", "b"),
                    Constraint("b", "c"),
                    Constraint("a", "c"),
                ],
                ("a", "b", "c"),
            )
        )
        assert report.influence_analyzed
        assert report.inert_constraints == ("a -> c",)
        diagnostic = next(d for d in report.diagnostics if d.code == "VER004")
        assert diagnostic.severity is Severity.INFO

    def test_chain_has_no_inert_constraints(self):
        report = verify_constraints(
            _sc([Constraint("a", "b"), Constraint("b", "c")], ("a", "b", "c"))
        )
        assert report.influence_analyzed
        assert report.inert_constraints == ()

    def test_guard_dependency_is_influential(self):
        # The conditional edge decides b's fate: never inert.
        sc = _sc(
            [Constraint("g", "b", "T")],
            ("g", "b"),
            guards={"b": {Cond("g", "T")}},
        )
        report = verify_constraints(sc)
        assert report.inert_constraints == ()


class TestTwoPhasePrograms:
    def _exclusive_gate_program(self):
        # a and b are mutually exclusive, and a may only finish once b has
        # started.  Starting a first wedges the case: b cannot start while
        # a RUNs, and a cannot finish until b starts.
        builder = ProcessBuilder("two-phase")
        builder.compute("a", duration=1.0)
        builder.compute("b", duration=1.0)
        process = builder.build()
        sc = _sc([], ("a", "b"))
        fine = HappenBefore(
            StateRef("b", ActivityState.START),
            StateRef("a", ActivityState.FINISH),
        )
        exclusive = Exclusive(
            StateRef("a", ActivityState.RUN), StateRef("b", ActivityState.RUN)
        )
        return compile_program(
            process, sc, fine_grained=[fine], exclusives=[exclusive]
        )

    def test_interleaving_deadlock_is_found(self):
        program = self._exclusive_gate_program()
        report = verify_program(program)
        assert report.deadlock_free is False
        assert "start a" in report.counterexample
        diagnostic = next(d for d in report.diagnostics if d.code == "VER001")
        evidence = " ".join(diagnostic.evidence)
        assert "RUNNING" in evidence or "exclusive" in evidence

    def test_memoization_disabled_for_two_phase(self):
        program = self._exclusive_gate_program()
        space = StateSpace(program)
        assert not space.memo_ok

    def test_influence_pass_suppressed_for_two_phase(self):
        builder = ProcessBuilder("two-phase-ok")
        builder.compute("a", duration=1.0)
        builder.compute("b", duration=1.0)
        process = builder.build()
        sc = _sc([Constraint("a", "b")], ("a", "b"))
        exclusive = Exclusive(
            StateRef("a", ActivityState.RUN), StateRef("b", ActivityState.RUN)
        )
        report = verify_program(
            compile_program(process, sc, exclusives=[exclusive])
        )
        assert report.deadlock_free is True
        assert not report.influence_analyzed


class TestServicePrograms:
    def test_skipped_invoker_strands_the_receive(self):
        builder = ProcessBuilder("svc")
        builder.service("billing", ports=["p"], asynchronous=True)
        builder.guard("g", outcomes=["T", "F"], duration=1.0)
        builder.invoke("inv", service="billing", port="p", duration=1.0)
        builder.receive("rcv", service="billing", duration=1.0)
        process = builder.build()
        sc = _sc(
            [Constraint("g", "inv", "T")],
            ("g", "inv", "rcv"),
            guards={"inv": {Cond("g", "T")}},
        )
        report = verify_program(compile_program(process, sc))
        assert report.deadlock_free is False
        assert "g=F" in " ".join(report.counterexample)
        diagnostic = next(d for d in report.diagnostics if d.code == "VER001")
        assert any("callback" in line for line in diagnostic.evidence)

    def test_always_invoked_receive_is_proven(self):
        builder = ProcessBuilder("svc-ok")
        builder.service("billing", ports=["p"], asynchronous=True)
        builder.invoke("inv", service="billing", port="p", duration=1.0)
        builder.receive("rcv", service="billing", duration=1.0)
        process = builder.build()
        sc = _sc([Constraint("inv", "rcv")], ("inv", "rcv"))
        report = verify_program(compile_program(process, sc))
        assert report.deadlock_free is True


class TestStrandAnalysis:
    def _programs(self):
        old = _program(
            [Constraint("a", "b"), Constraint("b", "c")], ("a", "b", "c")
        )
        new = _program(
            [Constraint("a", "b"), Constraint("b", "c"), Constraint("c", "b")],
            ("a", "b", "c"),
        )
        return old, new

    def test_completed_prefix_is_safe(self):
        old, new = self._programs()
        report = would_strand(old, new, executed=("a", "b"))
        assert report.safe
        assert report.prefixes_checked == 1
        assert report.diagnostics == []

    def test_fresh_case_strands_under_the_cyclic_program(self):
        old, new = self._programs()
        report = would_strand(old, new, executed=("a",))
        assert not report.safe
        ((executed, _outcomes, _trace),) = report.stranded
        assert executed == ("a",)
        diagnostic = next(d for d in report.diagnostics if d.code == "VER005")
        assert diagnostic.severity is Severity.ERROR
        assert "strands" in diagnostic.message

    def test_migration_sweep_covers_every_quiescent_prefix(self):
        old, new = self._programs()
        report = migration_strands(old, new)
        # Old prefixes: {}, {a}, {a,b}, {a,b,c}; the first two strand.
        assert report.prefixes_checked == 4
        assert len(report.stranded) == 2
        assert not report.safe
        stranded_prefixes = {executed for executed, _, _ in report.stranded}
        assert stranded_prefixes == {(), ("a",)}

    def test_identical_programs_never_strand(self):
        old, _ = self._programs()
        report = migration_strands(old, old)
        assert report.safe
        assert report.prefixes_checked == 4

    def test_sweep_amortizes_via_the_antichain_frontier(self):
        old, _ = self._programs()
        report = migration_strands(old, old)
        assert report.memo_hit_rate > 0.0

    def test_outcome_dependent_strand(self):
        # New program only routes b when g=T.  A case that froze g=F under
        # the old program keeps completing (b is skipped), g=T keeps b.
        old = _program(
            [Constraint("g", "b", "T")],
            ("g", "b"),
            guards={"b": {Cond("g", "T")}},
        )
        report = would_strand(
            old, old, executed=("g",), outcomes={"g": "F"}
        )
        assert report.safe
        report = would_strand(old, old, executed=("g",), outcomes={"g": "T"})
        assert report.safe


class TestLintIntegration:
    def test_verification_findings_flow_through_run_lint(self):
        sc = _sc([Constraint("a", "b"), Constraint("b", "a")], ("a", "b"))
        report = verify_constraints(sc)
        context = LintContext.from_constraints(sc)
        context.verification = report
        lint = run_lint(context, LintConfig.from_codes(select=["VER"]))
        assert lint.by_code("VER001")
        assert lint.has_errors

    def test_ver_prefix_selects_all_five_codes(self):
        config = LintConfig.from_codes(select=["VER"])
        for code in ("VER001", "VER002", "VER003", "VER004", "VER005"):
            assert config.enabled(code)
        assert not config.enabled("SYNC001")

    def test_strand_findings_flow_through_run_lint(self):
        old = _program(
            [Constraint("a", "b"), Constraint("b", "c")], ("a", "b", "c")
        )
        new = _program(
            [Constraint("a", "b"), Constraint("b", "c"), Constraint("c", "b")],
            ("a", "b", "c"),
        )
        strand = migration_strands(old, new)
        sc = _sc([Constraint("a", "b")], ("a", "b", "c"))
        context = LintContext.from_constraints(sc)
        context.strand = strand
        lint = run_lint(context, LintConfig.from_codes(select=["VER005"]))
        assert len(lint.by_code("VER005")) == 2

    def test_without_verification_rules_stay_silent(self):
        sc = _sc([Constraint("a", "b"), Constraint("b", "a")], ("a", "b"))
        context = LintContext.from_constraints(sc)
        lint = run_lint(context, LintConfig.from_codes(select=["VER"]))
        assert lint.findings == ()


class TestRuntimeCrossReference:
    def test_rt004_evidence_names_the_blocking_constraints(self):
        # Satellite 6: the runtime's deadlock diagnostics unpack the same
        # unsatisfied masks the verifier reports in VER001.
        program = _program(
            [Constraint("a", "b"), Constraint("b", "a")], ("a", "b")
        )
        instance = CaseInstance("case-1", program)
        instance.run_to_completion()
        assert instance.status is CaseStatus.FAILED
        rt004 = next(d for d in instance.diagnostics if d.code == "RT004")
        evidence = " ".join(rt004.evidence)
        assert "blocked by unsatisfied constraint(s)" in evidence
        assert "b -> a" in evidence and "a -> b" in evidence

    def test_rt004_and_ver001_agree_on_the_blockers(self):
        program = _program(
            [Constraint("a", "b"), Constraint("b", "a")], ("a", "b")
        )
        verification = verify_program(program)
        ver001 = next(
            d for d in verification.diagnostics if d.code == "VER001"
        )
        instance = CaseInstance("case-1", program)
        instance.run_to_completion()
        rt004 = next(d for d in instance.diagnostics if d.code == "RT004")
        ver_lines = {line for line in ver001.evidence if "blocked" in line}
        rt_lines = {line for line in rt004.evidence if "blocked" in line}
        assert ver_lines == rt_lines


class TestPetriCrossCheck:
    def test_cycle_agrees_unsound(self):
        sc = _sc([Constraint("a", "b"), Constraint("b", "a")], ("a", "b"))
        cross = petri_cross_check(sc)
        assert cross.predicted_sound is False
        assert not cross.soundness.is_sound
        assert cross.agrees is True

    def test_clean_chain_agrees_sound(self):
        sc = _sc([Constraint("a", "b"), Constraint("b", "c")], ("a", "b", "c"))
        cross = petri_cross_check(sc)
        assert cross.predicted_sound is True
        assert cross.soundness.is_sound
        assert cross.agrees is True

    def test_guarded_set_agrees(self):
        sc = _sc(
            [Constraint("g", "b", "T")],
            ("g", "b"),
            guards={"b": {Cond("g", "T")}},
        )
        cross = petri_cross_check(sc)
        assert cross.agrees is True

    def test_unsound_witness_is_reported(self):
        # Satellite 1: the petri checker now names the marking (with the
        # firing sequence reaching it) that cannot complete, comparable to
        # VER001 counterexamples.
        sc = _sc(
            [Constraint("a", "b"), Constraint("b", "a")],
            ("g", "a", "b"),
            guards={"a": {Cond("g", "F")}, "b": {Cond("g", "F")}},
        )
        cross = petri_cross_check(sc)
        assert cross.predicted_sound is False
        assert cross.agrees is True
        assert not cross.soundness.option_to_complete
        assert any(
            "witness" in problem for problem in cross.soundness.problems
        )

    def test_reachability_witness_paths(self):
        from repro.petri.from_constraints import constraint_set_to_petri_net
        from repro.petri.net import Marking
        from repro.petri.reachability import build_reachability_graph
        from repro.petri.soundness import workflow_places

        sc = _sc([Constraint("a", "b")], ("a", "b"))
        net, initial = constraint_set_to_petri_net(sc)
        graph = build_reachability_graph(net, initial)
        _source, sink = workflow_places(net)
        final = Marking({sink: 1})
        witness = graph.witness_for(final)
        assert witness, "the final marking needs a non-empty firing path"
        assert set(witness) <= {t.name for t in net.transitions}
        # The initial marking's witness is the empty path; unexplored
        # markings have none at all.
        assert graph.witness_path(0) == []
        assert graph.witness_for(Marking({"nowhere": 1})) is None


class TestStateLimit:
    def test_truncation_reports_unknown(self):
        sc = _sc(
            [Constraint("a", "b")], tuple("abcdefgh")
        )
        report = verify_constraints(sc, state_limit=3)
        assert report.deadlock_free is None
        assert report.stats.truncated
        diagnostic = next(d for d in report.diagnostics if d.code == "VER001")
        assert diagnostic.severity is Severity.WARNING
        assert not report.influence_analyzed
        assert report.dead_activities == ()  # liveness facts suppressed

    def test_verify_accepts_prebuilt_space(self):
        program = _program([Constraint("a", "b")], ("a", "b"))
        space = StateSpace(program)
        report = verify_program(program, space=space)
        assert report.deadlock_free is True


class TestObservability:
    def test_metrics_and_span_published(self):
        from repro.obs import Observability

        obs = Observability()
        sc = _sc([Constraint("a", "b")], ("a", "b"))
        report = verify_constraints(sc, obs=obs)
        states = obs.metrics.get("repro_verify_states_total")
        assert states is not None
        assert states.value() == report.stats.states
        assert obs.metrics.get("repro_verify_last_run_seconds") is not None
        spans = [s.name for s in obs.tracer.finished_spans()]
        assert "verify.explore" in spans
