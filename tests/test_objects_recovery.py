"""Crash recovery of partially satisfied cross-case barriers.

The WAL journals every obligation transition *before* the event record
that causes it (write-ahead), and application is idempotent per
``(object, sync, case)``.  A run killed mid fan-out and recovered must
therefore finish with final states **and** per-object obligation
counters identical to the uninterrupted run, at any crash point.

The journal also stays consumable by the rest of the toolchain: the
object-annotated records must not confuse ``repro.discover`` ingestion.
"""

from __future__ import annotations

import json

import pytest

from repro.runtime import Runtime, SimulatedCrash
from repro.workloads.orders import orders_object_spec, orders_plans

ORDERS, FAN_OUT, CANCEL_EVERY = 4, 6, 3


def _submit(runtime):
    plans, bindings = orders_plans(ORDERS, FAN_OUT, cancel_every=CANCEL_EVERY)
    runtime.submit_batch(plans, bindings=bindings)


def _baseline(program, tmp_path):
    path = str(tmp_path / "baseline.jsonl")
    runtime = Runtime(
        program, objects=orders_object_spec(), shards=4, journal_path=path
    )
    _submit(runtime)
    report = runtime.run()
    runtime.close()
    return report.final_states(), runtime.object_counters()


class TestCrashRecovery:
    @pytest.mark.parametrize("crash_after", [30, 120, 300, 480])
    def test_resumes_to_identical_states_and_counters(
        self, orders_runtime_program, tmp_path, crash_after
    ):
        expected_states, expected_counters = _baseline(
            orders_runtime_program, tmp_path
        )
        path = str(tmp_path / ("crash-%d.jsonl" % crash_after))
        crashing = Runtime(
            orders_runtime_program,
            objects=orders_object_spec(),
            shards=4,
            journal_path=path,
            crash_after=crash_after,
        )
        _submit(crashing)
        with pytest.raises(SimulatedCrash):
            crashing.run()

        recovered = Runtime.recover(
            path,
            orders_runtime_program,
            objects=orders_object_spec(),
            shards=4,
        )
        report = recovered.run()
        recovered.close()
        assert report.final_states() == expected_states
        assert recovered.object_counters() == expected_counters
        # deterministic replay: no prefix-divergence findings
        assert not [d for d in report.diagnostics if d.code == "RT003"]

    def test_crash_journal_holds_partial_obligations(
        self, orders_runtime_program, tmp_path
    ):
        from repro.runtime.journal import read_journal

        path = str(tmp_path / "partial.jsonl")  # crash lands mid fan-out: obj records start ~#256 of ~524
        crashing = Runtime(
            orders_runtime_program,
            objects=orders_object_spec(),
            shards=4,
            journal_path=path,
            crash_after=320,
        )
        _submit(crashing)
        with pytest.raises(SimulatedCrash):
            crashing.run()
        state = read_journal(path)
        assert state.objects, "crash point must land mid fan-out"
        kinds = {record["kind"] for record in state.objects}
        assert kinds <= {"satisfy", "cancel", "once"}
        # at least one barrier is only partially satisfied at the crash
        per_object = {}
        for record in state.objects:
            if record["kind"] in ("satisfy", "cancel"):
                per_object.setdefault(record["object"], set()).add(record["case"])
        assert any(len(cases) < FAN_OUT for cases in per_object.values())

    def test_recovered_journal_monitors_cleanly(
        self, orders_runtime_program, tmp_path
    ):
        from repro.objects import ObjectBinding, ObjectMonitor
        from repro.runtime.journal import read_journal

        path = str(tmp_path / "monitored.jsonl")
        crashing = Runtime(
            orders_runtime_program,
            objects=orders_object_spec(),
            shards=4,
            journal_path=path,
            crash_after=120,
        )
        _submit(crashing)
        with pytest.raises(SimulatedCrash):
            crashing.run()
        recovered = Runtime.recover(
            path, orders_runtime_program, objects=orders_object_spec(), shards=4
        )
        recovered.run()
        recovered.close()

        state = read_journal(path)
        monitor = ObjectMonitor(orders_object_spec())
        for journaled in state.cases.values():
            if journaled.binding:
                monitor.bind(
                    journaled.case, ObjectBinding.from_dict(journaled.binding)
                )
        for event in state.event_stream:
            monitor.feed(event)
        report = monitor.finish()
        assert report.clean
        assert report.objects == ORDERS


class TestDiscoverIngestion:
    def test_object_annotated_journal_still_mines(
        self, orders_runtime_program, tmp_path
    ):
        from repro.discover.ingest import log_from_journal
        from repro.discover.mine import mine
        from repro.discover.stats import LogStatistics

        path = str(tmp_path / "mined.jsonl")
        runtime = Runtime(
            orders_runtime_program,
            objects=orders_object_spec(),
            shards=4,
            journal_path=path,
        )
        _submit(runtime)
        runtime.run()
        runtime.close()

        log = log_from_journal(path)
        assert len(log) > 0
        # obligation control records never leak into the event stream
        assert {event.lifecycle for event in log} <= {"start", "finish", "skip"}
        result = mine(LogStatistics.from_log(log))
        mined = {
            (c.dependency.source, c.dependency.target)
            for c in result.candidates
        }
        assert ("pick_item", "pack_item") in mined

    def test_object_records_survive_raw_round_trip(
        self, orders_runtime_program, tmp_path
    ):
        path = str(tmp_path / "raw.jsonl")
        runtime = Runtime(
            orders_runtime_program,
            objects=orders_object_spec(),
            shards=2,
            journal_path=path,
        )
        _submit(runtime)
        runtime.run()
        runtime.close()
        with open(path, encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle if line.strip()]
        obj_records = [r for r in records if r.get("rt") == "obj"]
        assert obj_records
        for record in obj_records:
            assert set(record) == {"rt", "kind", "case", "object", "sync", "time"}
