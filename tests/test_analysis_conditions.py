"""Unit tests for the condition algebra."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.conditions import (
    Cond,
    ConditionDomains,
    is_contradictory,
    merge_complementary,
    normalize_facts,
    strip_implied,
    subsumes,
)


def conds(*pairs):
    return frozenset(Cond(guard, value) for guard, value in pairs)


class TestCond:
    def test_equality_and_hash(self):
        assert Cond("g", "T") == Cond("g", "T")
        assert Cond("g", "T") != Cond("g", "F")
        assert len({Cond("g", "T"), Cond("g", "T")}) == 1

    def test_string_rendering(self):
        assert str(Cond("if_au", "T")) == "T@if_au"


class TestDomains:
    def test_default_domain_is_boolean(self):
        domains = ConditionDomains()
        assert domains.domain("anything") == frozenset({"T", "F"})

    def test_declared_domain(self):
        domains = ConditionDomains()
        domains.declare("route", ["air", "sea", "land"])
        assert domains.domain("route") == frozenset({"air", "sea", "land"})

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            ConditionDomains().declare("g", [])

    def test_copy_is_independent(self):
        original = ConditionDomains({"g": ["A", "B"]})
        clone = original.copy()
        clone.declare("h", ["X"])
        assert original.domain("h") == frozenset({"T", "F"})
        assert original == ConditionDomains({"g": ["A", "B"]})


class TestContradiction:
    def test_empty_is_satisfiable(self):
        assert not is_contradictory(frozenset())

    def test_same_guard_same_value(self):
        assert not is_contradictory(conds(("g", "T"), ("h", "F")))

    def test_same_guard_two_values(self):
        assert is_contradictory(conds(("g", "T"), ("g", "F")))


class TestSubsumption:
    def test_fewer_annotations_subsume(self):
        assert subsumes(conds(), conds(("g", "T")))
        assert subsumes(conds(("g", "T")), conds(("g", "T"), ("h", "F")))

    def test_incomparable_sets_do_not_subsume(self):
        assert not subsumes(conds(("g", "T")), conds(("h", "F")))


class TestNormalize:
    def test_drops_subsumed(self):
        facts = {("x", conds()), ("x", conds(("g", "T")))}
        assert normalize_facts(facts) == frozenset({("x", conds())})

    def test_keeps_incomparable(self):
        facts = {("x", conds(("g", "T"))), ("x", conds(("h", "F")))}
        assert normalize_facts(facts) == frozenset(facts)

    def test_drops_contradictory(self):
        facts = {("x", conds(("g", "T"), ("g", "F")))}
        assert normalize_facts(facts) == frozenset()

    def test_distinct_targets_are_independent(self):
        facts = {("x", conds(("g", "T"))), ("y", conds())}
        assert normalize_facts(facts) == frozenset(facts)

    @given(
        st.sets(
            st.tuples(
                st.sampled_from(["x", "y"]),
                st.sets(
                    st.tuples(st.sampled_from(["g", "h"]), st.sampled_from(["T", "F"])),
                    max_size=3,
                ).map(lambda s: frozenset(Cond(g, v) for g, v in s)),
            ),
            max_size=8,
        )
    )
    def test_normalize_is_idempotent(self, facts):
        once = normalize_facts(facts)
        assert normalize_facts(once) == once

    @given(
        st.sets(
            st.tuples(
                st.sampled_from(["x", "y"]),
                st.sets(
                    st.tuples(st.sampled_from(["g", "h"]), st.sampled_from(["T", "F"])),
                    max_size=3,
                ).map(lambda s: frozenset(Cond(g, v) for g, v in s)),
            ),
            max_size=8,
        )
    )
    def test_every_input_fact_is_covered(self, facts):
        normalized = normalize_facts(facts)
        for target, annotations in facts:
            if is_contradictory(annotations):
                continue
            assert any(
                t == target and subsumes(a, annotations) for t, a in normalized
            )


class TestMergeComplementary:
    def test_boolean_cover_merges(self):
        facts = {("x", conds(("g", "T"))), ("x", conds(("g", "F")))}
        assert merge_complementary(facts) == frozenset({("x", conds())})

    def test_partial_cover_does_not_merge(self):
        facts = {("x", conds(("g", "T")))}
        assert merge_complementary(facts) == frozenset(facts)

    def test_three_way_domain_requires_all_values(self):
        domains = ConditionDomains({"route": ["air", "sea", "land"]})
        two = {("x", conds(("route", "air"))), ("x", conds(("route", "sea")))}
        assert merge_complementary(two, domains) == frozenset(two)
        three = two | {("x", conds(("route", "land")))}
        assert merge_complementary(three, domains) == frozenset({("x", conds())})

    def test_merge_cascades(self):
        # Merging on h first exposes a merge on g.
        facts = {
            ("x", conds(("g", "T"), ("h", "T"))),
            ("x", conds(("g", "T"), ("h", "F"))),
            ("x", conds(("g", "F"))),
        }
        assert merge_complementary(facts) == frozenset({("x", conds())})

    def test_merge_respects_base_annotations(self):
        facts = {
            ("x", conds(("g", "T"), ("h", "T"))),
            ("x", conds(("g", "F"), ("h", "F"))),
        }
        # Bases differ ({h:T} vs {h:F} when removing g) -> no merge on g;
        # same for h.  Nothing merges.
        assert merge_complementary(facts) == frozenset(facts)

    def test_can_merge_veto(self):
        facts = {("x", conds(("g", "T"))), ("x", conds(("g", "F")))}
        merged = merge_complementary(
            facts, can_merge=lambda guard, base, target: False
        )
        assert merged == frozenset(facts)


class TestStripImplied:
    def test_strips_only_implied(self):
        annotations = conds(("g", "T"), ("h", "F"))
        assert strip_implied(annotations, conds(("g", "T"))) == conds(("h", "F"))

    def test_no_implied_is_identity(self):
        annotations = conds(("g", "T"))
        assert strip_implied(annotations, frozenset()) == annotations
