"""Tests for the Graphviz DOT exporters."""

from __future__ import annotations

import re

import pytest

from repro.export.dot import (
    constraint_set_to_dot,
    dependency_set_to_dot,
    petri_net_to_dot,
)
from repro.petri.from_constraints import constraint_set_to_petri_net


def _edges_of(dot: str):
    return re.findall(r'"([^"]+)" -> "([^"]+)"', dot)


class TestDependencyDot:
    def test_all_edges_present(self, purchasing_dependencies, purchasing_process):
        dot = dependency_set_to_dot(
            purchasing_dependencies,
            name="fig5",
            ports=purchasing_process.port_names(),
        )
        assert dot.startswith("digraph")
        assert len(_edges_of(dot)) == 40

    def test_styles_by_kind(self, purchasing_dependencies):
        dot = dependency_set_to_dot(purchasing_dependencies)
        assert "style=dotted" in dot  # data
        assert "style=dashed" in dot  # service
        assert "style=bold" in dot  # cooperation
        assert 'label="T"' in dot and 'label="F"' in dot  # control conditions
        assert 'label="NONE"' in dot  # the join edge

    def test_ports_drawn_as_boxes(self, purchasing_dependencies, purchasing_process):
        dot = dependency_set_to_dot(
            purchasing_dependencies, ports=purchasing_process.port_names()
        )
        assert '"Purchase_d" [shape=box' in dot


class TestConstraintDot:
    def test_minimal_graph(self, purchasing_weave):
        dot = constraint_set_to_dot(purchasing_weave.minimal, name="fig9")
        assert len(_edges_of(dot)) == 17

    def test_highlighting(self, purchasing_weave):
        dot = constraint_set_to_dot(
            purchasing_weave.asc,
            name="fig8",
            highlight=purchasing_weave.translation.bridged,
        )
        assert dot.count("style=bold penwidth=2") == len(
            purchasing_weave.translation.bridged
        )

    def test_conditions_become_labels(self, purchasing_weave):
        dot = constraint_set_to_dot(purchasing_weave.minimal)
        assert 'label="T"' in dot and 'label="F"' in dot

    def test_externals_boxed(self, purchasing_weave):
        dot = constraint_set_to_dot(purchasing_weave.merged)
        assert '"Ship_d" [shape=box' in dot


class TestPetriDot:
    def test_net_rendering(self, purchasing_weave):
        net, _marking = constraint_set_to_petri_net(purchasing_weave.minimal)
        dot = petri_net_to_dot(net)
        assert dot.startswith("digraph")
        assert "[shape=circle]" in dot
        assert "shape=box" in dot
        assert '"i"' in dot and '"o"' in dot
        # Every transition appears.
        for transition in net.transitions:
            assert '"%s"' % transition.name in dot
