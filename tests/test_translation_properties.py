"""Property-based tests for service dependency translation on random
mixed (activity + port) constraint graphs."""

from __future__ import annotations

from typing import Dict, List, Tuple

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.closure import Semantics, internal_closure_map
from repro.core.constraints import Constraint, SynchronizationConstraintSet
from repro.core.equivalence import fact_set_covers
from repro.core.translation import translate_service_dependencies

SLOW = settings(
    max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def mixed_sets(draw):
    """A random acyclic mixed graph over activities ``a0..`` and external
    ports ``p0..``, with optional invoke bindings (each port bound to at
    most one activity, and the binding edge activity -> port present)."""
    n_activities = draw(st.integers(min_value=2, max_value=6))
    n_ports = draw(st.integers(min_value=1, max_value=4))
    activities = ["a%d" % i for i in range(n_activities)]
    ports = ["p%d" % i for i in range(n_ports)]
    # Global forward order: interleave activities and ports deterministically
    # from a drawn permutation of slots, so edges (earlier -> later) keep the
    # graph acyclic.
    nodes = activities + ports
    order = draw(st.permutations(nodes))
    position = {node: i for i, node in enumerate(order)}

    # Bindings first: a bound port's event *is* its binder's finish, so for
    # acyclicity the effective position of a bound port is its binder's.
    bindings: Dict[str, str] = {}
    for port in ports:
        if activities and draw(st.booleans()):
            bindings[port] = draw(st.sampled_from(activities))

    def effective(node: str) -> int:
        return position[bindings.get(node, node)]

    possible = [
        (u, v)
        for u in nodes
        for v in nodes
        if u != v and effective(u) < effective(v)
    ]
    edges = draw(
        st.lists(st.sampled_from(possible), max_size=12, unique=True)
        if possible
        else st.just([])
    )
    for port, binder in bindings.items():
        if (binder, port) not in edges:
            edges = edges + [(binder, port)]

    sc = SynchronizationConstraintSet(
        activities=activities,
        externals=ports,
        constraints=[Constraint(u, v) for u, v in edges],
    )
    return sc, bindings


class TestTranslationProperties:
    @SLOW
    @given(mixed_sets())
    def test_result_is_activity_set(self, drawn):
        sc, bindings = drawn
        result = translate_service_dependencies(sc, bindings)
        assert result.asc.is_activity_set
        externals = set(sc.externals)
        for constraint in result.asc:
            assert constraint.source not in externals
            assert constraint.target not in externals

    @SLOW
    @given(mixed_sets())
    def test_internal_orderings_preserved(self, drawn):
        """Every internal-to-internal reachability fact of the mixed graph
        survives translation (the ASC covers the internal projection)."""
        sc, bindings = drawn
        result = translate_service_dependencies(sc, bindings)
        before = internal_closure_map(sc, Semantics.REACHABILITY)
        after = internal_closure_map(result.asc, Semantics.REACHABILITY)
        for activity, facts in before.items():
            assert fact_set_covers(after[activity], facts), activity

    @SLOW
    @given(mixed_sets())
    def test_no_binding_falls_back_to_bridging(self, drawn):
        sc, _bindings = drawn
        result = translate_service_dependencies(sc)  # pure bridging
        assert result.asc.is_activity_set
        before = internal_closure_map(sc, Semantics.REACHABILITY)
        after = internal_closure_map(result.asc, Semantics.REACHABILITY)
        for activity, facts in before.items():
            assert fact_set_covers(after[activity], facts), activity

    @SLOW
    @given(mixed_sets())
    def test_contraction_only_strengthens(self, drawn):
        """Port contraction can only add orderings (the binding identifies
        two events); it never loses one that bridging provides."""
        sc, bindings = drawn
        bridged = translate_service_dependencies(sc)
        contracted = translate_service_dependencies(sc, bindings)
        before = internal_closure_map(bridged.asc, Semantics.REACHABILITY)
        after = internal_closure_map(contracted.asc, Semantics.REACHABILITY)
        for activity, facts in before.items():
            assert fact_set_covers(after[activity], facts), activity

    @SLOW
    @given(mixed_sets())
    def test_translation_is_idempotent(self, drawn):
        sc, bindings = drawn
        once = translate_service_dependencies(sc, bindings)
        twice = translate_service_dependencies(once.asc)
        assert set(twice.asc.constraints) == set(once.asc.constraints)
