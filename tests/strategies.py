"""Hypothesis strategies for randomized constraint sets and processes.

The central strategy, :func:`constraint_sets`, draws acyclic
synchronization constraint sets with optional conditional (guarded)
structure: node indices only ever point forward, so every drawn set is a
DAG; guards are chosen among the nodes and their conditional edges point at
strictly later nodes, with the guard map derived from those edges — the
same well-formedness the extractors guarantee.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from hypothesis import strategies as st

from repro.analysis.conditions import Cond, ConditionDomains
from repro.core.constraints import Constraint, SynchronizationConstraintSet


@st.composite
def dag_edges(
    draw,
    min_nodes: int = 2,
    max_nodes: int = 8,
    max_edges: int = 14,
) -> Tuple[int, List[Tuple[int, int]]]:
    """``(node_count, forward edges)`` of a random DAG."""
    node_count = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    possible = [
        (i, j) for i in range(node_count) for j in range(i + 1, node_count)
    ]
    edges = draw(
        st.lists(st.sampled_from(possible), max_size=max_edges, unique=True)
        if possible
        else st.just([])
    )
    return node_count, edges


@st.composite
def constraint_sets(
    draw,
    min_nodes: int = 2,
    max_nodes: int = 8,
    max_edges: int = 14,
    with_conditions: bool = True,
) -> SynchronizationConstraintSet:
    """A random acyclic constraint set, optionally with guarded structure."""
    node_count, edges = draw(dag_edges(min_nodes, max_nodes, max_edges))
    names = ["n%d" % i for i in range(node_count)]

    guard_indices: List[int] = []
    if with_conditions and node_count >= 3:
        guard_indices = draw(
            st.lists(
                st.integers(min_value=0, max_value=node_count - 2),
                max_size=2,
                unique=True,
            )
        )

    constraints: List[Constraint] = []
    guards: dict = {}
    for source_index, target_index in edges:
        condition: Optional[str] = None
        if source_index in guard_indices:
            condition = draw(st.sampled_from(["T", "F", None]))
        constraint = Constraint(names[source_index], names[target_index], condition)
        constraints.append(constraint)
        if condition is not None:
            guards.setdefault(names[target_index], set()).add(
                Cond(names[source_index], condition)
            )

    # Keep guard maps single-condition per activity (the shape the model
    # produces for non-nested branches) by dropping extras deterministically.
    cleaned_guards = {
        activity: frozenset(sorted(conditions)[:1])
        for activity, conditions in guards.items()
    }
    return SynchronizationConstraintSet(
        activities=names,
        constraints=constraints,
        guards=cleaned_guards,
        domains=ConditionDomains(),
    )


@st.composite
def unconditional_constraint_sets(
    draw, min_nodes: int = 2, max_nodes: int = 9, max_edges: int = 16
) -> SynchronizationConstraintSet:
    """A random acyclic constraint set with no conditions at all."""
    node_count, edges = draw(dag_edges(min_nodes, max_nodes, max_edges))
    names = ["n%d" % i for i in range(node_count)]
    constraints = [Constraint(names[i], names[j]) for i, j in edges]
    return SynchronizationConstraintSet(activities=names, constraints=constraints)
