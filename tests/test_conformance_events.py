"""Tests for the conformance event/log model and its three I/O formats."""

from __future__ import annotations

import pytest

from repro.conformance import (
    FINISH,
    SKIP,
    START,
    Event,
    EventLog,
    events_from_trace,
    log_from_jsonl_trace,
    log_from_traces,
)
from repro.scheduler.events import ActivityRecord, ExecutionTrace


def sample_log() -> EventLog:
    return EventLog(
        [
            Event("case-1", "a", START, 0.0),
            Event("case-1", "a", FINISH, 1.0),
            Event("case-2", "a", START, 0.0),
            Event("case-1", "g", START, 1.0),
            Event("case-1", "g", FINISH, 2.0, outcome="T"),
            Event("case-1", "c", SKIP, 2.0),
            Event("case-2", "a", FINISH, 2.5),
        ]
    )


class TestEvent:
    def test_rejects_unknown_lifecycle(self):
        with pytest.raises(ValueError, match="unknown lifecycle"):
            Event("c", "a", "explode", 0.0)

    def test_dict_round_trip(self):
        event = Event("c", "g", FINISH, 2.0, outcome="T")
        assert Event.from_dict(event.to_dict()) == event

    def test_dict_omits_missing_outcome(self):
        assert "outcome" not in Event("c", "a", START, 0.0).to_dict()

    def test_str_includes_outcome(self):
        assert "-> T" in str(Event("c", "g", FINISH, 2.0, outcome="T"))
        assert "-> " not in str(Event("c", "g", FINISH, 2.0))


class TestEventLog:
    def test_cases_preserve_order(self):
        log = sample_log()
        cases = log.cases()
        assert list(cases) == ["case-1", "case-2"]
        assert [e.lifecycle for e in cases["case-2"]] == [START, FINISH]

    def test_activities_first_mention_order(self):
        assert sample_log().activities() == ["a", "g", "c"]

    def test_len_and_iter(self):
        log = sample_log()
        assert len(log) == 7
        assert sum(1 for _ in log) == 7

    def test_append_extend_chain(self):
        log = EventLog().append(Event("c", "a", START, 0.0))
        log.extend([Event("c", "a", FINISH, 1.0)])
        assert len(log) == 2


class TestJsonl:
    def test_round_trip(self):
        log = sample_log()
        assert EventLog.from_jsonl(log.to_jsonl()) == log

    def test_blank_lines_skipped(self):
        text = sample_log().to_jsonl().replace("\n", "\n\n")
        assert EventLog.from_jsonl(text) == sample_log()

    def test_invalid_json_names_line(self):
        with pytest.raises(ValueError, match="line 2"):
            EventLog.from_jsonl('{"case":"c","activity":"a","lifecycle":"start","time":0}\nnot json')

    def test_invalid_event_names_line(self):
        with pytest.raises(ValueError, match="line 1"):
            EventLog.from_jsonl('{"case":"c"}')

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        sample_log().save_jsonl(path)
        assert EventLog.load_jsonl(path) == sample_log()

    def test_empty_log_serializes_to_empty_text(self):
        assert EventLog().to_jsonl() == ""
        assert EventLog.from_jsonl("") == EventLog()


class TestCsv:
    def test_round_trip(self):
        log = sample_log()
        assert EventLog.from_csv(log.to_csv()) == log

    def test_header_present(self):
        assert sample_log().to_csv().splitlines()[0] == "case,activity,lifecycle,time,outcome"

    def test_missing_column_rejected(self):
        with pytest.raises(ValueError, match="missing column"):
            EventLog.from_csv("case,activity\nc,a\n")


class TestEdgeCases:
    """Round-trip robustness at the awkward corners of each format."""

    UNICODE_LOG = EventLog(
        [
            Event("bestellung-42", "prüfe_auftrag", START, 0.0),
            Event("bestellung-42", "prüfe_auftrag", FINISH, 1.5, outcome="genehmigt"),
            Event("注文-7", "受注確認", START, 0.0),
            Event("注文-7", "受注確認", FINISH, 2.0),
        ]
    )

    def test_empty_trace_round_trips_everywhere(self):
        empty = EventLog()
        assert EventLog.from_jsonl(empty.to_jsonl()) == empty
        assert EventLog.from_csv(empty.to_csv()) == empty

    def test_unicode_names_survive_jsonl(self):
        text = self.UNICODE_LOG.to_jsonl()
        assert EventLog.from_jsonl(text) == self.UNICODE_LOG

    def test_unicode_names_survive_csv(self):
        assert EventLog.from_csv(self.UNICODE_LOG.to_csv()) == self.UNICODE_LOG

    def test_unicode_names_survive_files(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        self.UNICODE_LOG.save_jsonl(path)
        assert EventLog.load_jsonl(path) == self.UNICODE_LOG

    def test_csv_quotes_delimiters_in_names(self):
        tricky = EventLog(
            [
                Event("case,with,commas", 'activity "quoted"', START, 0.0),
                Event("case,with,commas", 'activity "quoted"', FINISH, 1.0),
            ]
        )
        text = tricky.to_csv()
        assert EventLog.from_csv(text) == tricky

    def test_csv_quotes_newlines_in_names(self):
        tricky = EventLog(
            [
                Event("case", "line\nbreak", START, 0.0),
                Event("case", "line\nbreak", FINISH, 1.0),
            ]
        )
        assert EventLog.from_csv(tricky.to_csv()) == tricky

    def test_outcome_resembling_delimiter_round_trips(self):
        tricky = EventLog(
            [Event("c", "g", FINISH, 1.0, outcome="a,b\nc")]
        )
        assert EventLog.from_csv(tricky.to_csv()) == tricky
        assert EventLog.from_jsonl(tricky.to_jsonl()) == tricky

    def test_fractional_times_are_exact(self):
        # repr-based CSV serialization must not lose float precision
        log = EventLog([Event("c", "a", START, 0.1 + 0.2)])
        assert EventLog.from_csv(log.to_csv()).events[0].time == 0.1 + 0.2


class TestXes:
    XES = """
    <log xmlns="http://www.xes-standard.org/">
      <trace>
        <string key="concept:name" value="order-7"/>
        <event>
          <string key="concept:name" value="a"/>
          <string key="lifecycle:transition" value="start"/>
          <float key="time:timestamp" value="1.0"/>
        </event>
        <event>
          <string key="concept:name" value="a"/>
          <string key="lifecycle:transition" value="complete"/>
          <float key="time:timestamp" value="2.0"/>
        </event>
        <event>
          <string key="concept:name" value="b"/>
        </event>
      </trace>
    </log>
    """

    def test_start_complete_mapping(self):
        log = EventLog.from_xes(self.XES)
        assert log.events[0] == Event("order-7", "a", START, 1.0)
        assert log.events[1] == Event("order-7", "a", FINISH, 2.0)

    def test_complete_only_synthesizes_start(self):
        log = EventLog.from_xes(self.XES)
        b_events = [e for e in log if e.activity == "b"]
        assert [e.lifecycle for e in b_events] == [START, FINISH]
        # No timestamp: the ordinal clock keeps b after a.
        assert all(e.time >= 2.0 for e in b_events)

    def test_unnamed_trace_gets_numbered_case(self):
        log = EventLog.from_xes(
            "<log><trace><event>"
            '<string key="concept:name" value="x"/>'
            "</event></trace></log>"
        )
        assert log.case_ids() == ["case-1"]

    def test_iso_timestamps_parse(self):
        log = EventLog.from_xes(
            "<log><trace><event>"
            '<string key="concept:name" value="x"/>'
            '<date key="time:timestamp" value="2026-01-01T00:00:00Z"/>'
            "</event></trace></log>"
        )
        assert log.events[0].time > 0

    def test_invalid_document_rejected(self):
        with pytest.raises(ValueError, match="invalid XES"):
            EventLog.from_xes("<log><trace></log>")


class TestAdapter:
    def _noted_trace(self) -> ExecutionTrace:
        trace = ExecutionTrace()
        trace.note(0.0, "start a")
        trace.note(1.0, "finish a -> T")
        trace.note(1.0, "start b")  # same instant, after the enabling finish
        trace.note(1.0, "skip c")
        trace.note(2.0, "finish b")
        trace.note(2.0, "callback svc.port")  # not an activity event
        trace.record(ActivityRecord("a", start=0.0, finish=1.0, outcome="T"))
        trace.record(ActivityRecord("b", start=1.0, finish=2.0))
        trace.record(ActivityRecord("c", skipped_at=1.0))
        return trace

    def test_notes_drive_event_order(self):
        events = events_from_trace(self._noted_trace(), "k")
        assert [(e.activity, e.lifecycle) for e in events] == [
            ("a", START),
            ("a", FINISH),
            ("b", START),
            ("c", SKIP),
            ("b", FINISH),
        ]
        assert events[1].outcome == "T"
        assert all(e.case == "k" for e in events)

    def test_noteless_trace_breaks_ties_finish_first(self):
        trace = ExecutionTrace()
        trace.record(ActivityRecord("b", start=1.0, finish=2.0))
        trace.record(ActivityRecord("a", start=0.0, finish=1.0))
        events = events_from_trace(trace, "k")
        # a finishes at 1.0; b starts at 1.0: the finish must come first.
        kinds = [(e.activity, e.lifecycle) for e in events]
        assert kinds.index(("a", FINISH)) < kinds.index(("b", START))

    def test_noteless_zero_duration_keeps_start_before_finish(self):
        trace = ExecutionTrace()
        trace.record(ActivityRecord("a", start=1.0, finish=1.0))
        events = events_from_trace(trace, "k")
        assert [(e.activity, e.lifecycle) for e in events] == [
            ("a", START),
            ("a", FINISH),
        ]

    def test_log_from_traces_concatenates_cases(self):
        log = log_from_traces(
            {"c1": self._noted_trace(), "c2": self._noted_trace()}
        )
        assert log.case_ids() == ["c1", "c2"]
        assert len(log) == 10

    def test_log_from_jsonl_trace(self):
        log = log_from_jsonl_trace(self._noted_trace().to_jsonl(), "k")
        assert log == EventLog(events_from_trace(self._noted_trace(), "k"))
