"""Tests for structure recovery and structured BPEL emission."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.bpel.parse import parse_structured_bpel
from repro.bpel.structure import (
    StructureError,
    emit_structured_bpel,
    recover_structure,
)
from repro.constructs.analysis import activities_of, implied_orderings
from repro.constructs.ast import Act, Flow, Sequence, Switch
from repro.constructs.specification import analyze_specification
from repro.core.closure import Semantics, closure_map
from repro.core.constraints import Constraint, SynchronizationConstraintSet
from repro.core.minimize import minimize
from tests.strategies import constraint_sets, unconditional_constraint_sets

SLOW = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def required_pairs(sc):
    """The orderings the set enforces at runtime: guard-aware closure with
    vacuous facts (contradictory guard contexts, paths through activities
    that cannot co-execute with the endpoints) removed."""
    from repro.bpel.structure import runtime_required_pairs

    return runtime_required_pairs(sc)


def implied_pairs(tree, sc):
    from repro.bpel.structure import co_executable

    return {
        pair for pair in implied_orderings(tree) if co_executable(sc, *pair)
    }


class TestRecoveryExamples:
    def test_chain_becomes_sequence(self):
        sc = SynchronizationConstraintSet(
            ["a", "b", "c"],
            constraints=[Constraint("a", "b"), Constraint("b", "c")],
        )
        tree = recover_structure(sc)
        assert tree == Sequence(Act("a"), Act("b"), Act("c"))

    def test_independent_activities_become_flow(self):
        sc = SynchronizationConstraintSet(["a", "b"])
        tree = recover_structure(sc)
        assert isinstance(tree, Flow)
        assert set(activities_of(tree)) == {"a", "b"}

    def test_diamond_becomes_sequence_of_flow(self):
        sc = SynchronizationConstraintSet(
            ["a", "b", "c", "d"],
            constraints=[
                Constraint("a", "b"),
                Constraint("a", "c"),
                Constraint("b", "d"),
                Constraint("c", "d"),
            ],
        )
        tree = recover_structure(sc)
        assert tree == Sequence(Act("a"), Flow(Act("b"), Act("c")), Act("d"))

    def test_n_graph_uses_links(self):
        """The 'N' shape (a->c, a->d, b->d) is not series-parallel: exact
        recovery needs links."""
        sc = SynchronizationConstraintSet(
            ["a", "b", "c", "d"],
            constraints=[
                Constraint("a", "c"),
                Constraint("a", "d"),
                Constraint("b", "d"),
            ],
        )
        tree = recover_structure(sc)
        assert implied_orderings(tree) == required_pairs(sc)

    def test_guarded_region_becomes_switch(self):
        from repro.analysis.conditions import Cond

        sc = SynchronizationConstraintSet(
            ["g", "yes", "no"],
            constraints=[Constraint("g", "yes", "T"), Constraint("g", "no", "F")],
            guards={
                "yes": frozenset({Cond("g", "T")}),
                "no": frozenset({Cond("g", "F")}),
            },
        )
        tree = recover_structure(sc)
        assert isinstance(tree, Switch)
        assert tree.guard == "g"
        assert tree.cases == {"T": Act("yes"), "F": Act("no")}

    def test_purchasing_recovery_is_exact(self, purchasing_weave):
        tree = recover_structure(purchasing_weave.minimal)
        report = analyze_specification(tree, purchasing_weave.minimal)
        assert report.is_exact
        # Top level mirrors the paper's skeleton.
        assert isinstance(tree, Sequence)
        assert activities_of(tree)[0] == "recClient_po"
        assert any(isinstance(child, Switch) for child in tree.children)

    def test_requires_activity_set(self, purchasing_weave):
        with pytest.raises(StructureError):
            recover_structure(purchasing_weave.merged)

    def test_empty_set_rejected(self):
        with pytest.raises(StructureError):
            recover_structure(SynchronizationConstraintSet([]))

    def test_conditional_to_unguarded_target_rejected(self):
        sc = SynchronizationConstraintSet(
            ["g", "x"],
            constraints=[Constraint("g", "x", "T")],
            # No guard map: x is not in g's region.
        )
        with pytest.raises(StructureError):
            recover_structure(sc)


class TestRecoveryProperties:
    @SLOW
    @given(unconditional_constraint_sets(max_nodes=8, max_edges=14))
    def test_unconditional_recovery_is_exact(self, sc):
        tree = recover_structure(sc)
        assert implied_orderings(tree) == required_pairs(sc)

    @SLOW
    @given(constraint_sets(max_nodes=7, max_edges=10))
    def test_guarded_recovery_is_exact_when_expressible(self, sc):
        from hypothesis import assume

        try:
            tree = recover_structure(sc)
        except StructureError:
            # Conditional edge outside its guard's region, or a region
            # that is not block-structured: no nested-construct form.
            assume(False)
            return
        assert implied_pairs(tree, sc) == required_pairs(sc)

    @SLOW
    @given(unconditional_constraint_sets(max_nodes=8, max_edges=14))
    def test_recovery_of_minimal_set_matches(self, sc):
        minimal = minimize(sc, Semantics.STRICT)
        tree = recover_structure(minimal)
        assert implied_orderings(tree) == required_pairs(minimal)


class TestStructuredEmission:
    def test_round_trip(self, purchasing_process, purchasing_weave):
        xml = emit_structured_bpel(purchasing_process, purchasing_weave.minimal)
        parsed = parse_structured_bpel(xml)
        original = recover_structure(purchasing_weave.minimal)
        assert implied_orderings(parsed) == implied_orderings(original)
        assert set(activities_of(parsed)) == set(activities_of(original))

    def test_insurance_round_trip(self):
        from repro.core.pipeline import DSCWeaver, extract_all_dependencies
        from repro.workloads.insurance import (
            build_insurance_process,
            insurance_cooperation,
        )

        process = build_insurance_process()
        weave = DSCWeaver().weave(
            process,
            extract_all_dependencies(
                process, cooperation=insurance_cooperation(process).dependencies
            ),
        )
        xml = emit_structured_bpel(process, weave.minimal)
        parsed = parse_structured_bpel(xml)
        assert implied_orderings(parsed) == implied_orderings(
            recover_structure(weave.minimal)
        )

    def test_emitted_xml_uses_proper_tags(self, purchasing_process, purchasing_weave):
        xml = emit_structured_bpel(purchasing_process, purchasing_weave.minimal)
        assert "<sequence>" in xml
        assert "<switch" in xml and 'guard="if_au"' in xml
        assert "<receive" in xml and "<invoke" in xml and "<reply" in xml

    def test_recovered_tree_executes_equivalently(
        self, purchasing_process, purchasing_weave
    ):
        """The recovered structured implementation schedules exactly like
        the dependency-minimal one."""
        from repro.scheduler.baseline import execute_constructs
        from repro.scheduler.engine import ConstraintScheduler

        tree = recover_structure(purchasing_weave.minimal)
        for outcome in ("T", "F"):
            structured = execute_constructs(
                purchasing_process, tree, outcomes={"if_au": outcome}
            )
            direct = ConstraintScheduler(
                purchasing_process, purchasing_weave.minimal
            ).run(outcomes={"if_au": outcome})
            assert structured.makespan == direct.makespan
            assert set(structured.executed_names()) == set(direct.executed_names())
