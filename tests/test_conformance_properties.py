"""Property-based conformance tests.

Two properties close the loop between the scheduler and the monitor:

1. **Soundness of legal runs** — for any synthetic process, any guard
   outcome combination, and either constraint set, the log of a
   :class:`ConstraintScheduler` run replays violation-free, and the full
   and minimal monitors reach identical per-case verdicts.
2. **Recall on perturbations** — any injectable perturbation of a clean
   purchasing log is flagged with exactly the declared ``CONF00x`` code.
"""

from __future__ import annotations

from typing import Dict, Tuple

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.conformance import (
    EventLog,
    PERTURBATION_KINDS,
    PerturbationError,
    events_from_trace,
    log_from_traces,
    perturb,
    program_from_weave,
    replay,
    verdicts_agree,
)
from repro.core.pipeline import DSCWeaver, extract_all_dependencies
from repro.scheduler.engine import ConstraintScheduler
from repro.workloads.purchasing import (
    build_purchasing_process,
    purchasing_cooperation_dependencies,
)
from repro.workloads.synthetic import SyntheticSpec, generate_dependency_set

_SYNTHETIC_CACHE: Dict[int, Tuple[object, object, object, object]] = {}


def _synthetic(seed: int):
    """(process, weave, minimal program, full program) for one seed."""
    if seed not in _SYNTHETIC_CACHE:
        process, dependencies = generate_dependency_set(
            SyntheticSpec(
                n_activities=20,
                n_services=2,
                n_branches=2,
                branch_width=4,
                coop_density=0.6,
                seed=seed,
            )
        )
        weave = DSCWeaver().weave(process, dependencies)
        _SYNTHETIC_CACHE[seed] = (
            process,
            weave,
            program_from_weave(weave, which="minimal"),
            program_from_weave(weave, which="full"),
        )
    return _SYNTHETIC_CACHE[seed]


_PURCHASING_CACHE: Dict[str, Tuple[object, object, object]] = {}


def _purchasing():
    """(clean two-branch log, minimal program, full program), built once."""
    if "log" not in _PURCHASING_CACHE:
        process = build_purchasing_process()
        dependencies = extract_all_dependencies(
            process, cooperation=purchasing_cooperation_dependencies(process)
        )
        weave = DSCWeaver().weave(process, dependencies)
        traces = {}
        for case, outcomes in (("case-1", {}), ("case-2", {"if_au": "F"})):
            run = ConstraintScheduler(process, weave.minimal).run(outcomes=outcomes)
            traces[case] = run.trace
        _PURCHASING_CACHE["log"] = (
            log_from_traces(traces),
            program_from_weave(weave, which="minimal"),
            program_from_weave(weave, which="full"),
        )
    return _PURCHASING_CACHE["log"]


@st.composite
def scheduler_runs(draw):
    """A synthetic process plus one guard-outcome assignment."""
    seed = draw(st.integers(min_value=0, max_value=4))
    process, weave, minimal, full = _synthetic(seed)
    guards = sorted(a.name for a in process.activities if a.is_guard)
    outcomes = {
        guard: draw(st.sampled_from(["T", "F"])) for guard in guards
    }
    return process, weave, minimal, full, outcomes


class TestLegalRunsReplayClean:
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(scheduler_runs())
    def test_any_interleaving_is_conformant(self, drawn):
        process, weave, minimal, full, outcomes = drawn
        run = ConstraintScheduler(process, weave.minimal).run(outcomes=outcomes)
        log = EventLog(events_from_trace(run.trace, "case"))
        minimal_report = replay(log, minimal)
        full_report = replay(log, full)
        assert minimal_report.clean, minimal_report.diagnostics
        assert full_report.clean, full_report.diagnostics
        assert verdicts_agree(minimal_report, full_report)
        assert minimal_report.checks <= full_report.checks

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(scheduler_runs())
    def test_full_set_schedule_also_replays_clean(self, drawn):
        process, weave, minimal, _full, outcomes = drawn
        # Schedule under the *full* set, monitor with the *minimal* one:
        # the minimal monitor accepts every legal full-set schedule.
        run = ConstraintScheduler(process, weave.asc).run(outcomes=outcomes)
        log = EventLog(events_from_trace(run.trace, "case"))
        assert replay(log, minimal).clean


class TestPerturbationsAreCaught:
    @settings(max_examples=40, deadline=None)
    @given(
        kind=st.sampled_from(PERTURBATION_KINDS),
        seed=st.integers(min_value=0, max_value=31),
    )
    def test_every_injectable_perturbation_is_flagged(self, kind, seed):
        log, minimal, full = _purchasing()
        try:
            perturbed, perturbation = perturb(
                log,
                kind,
                constraints=minimal.constraints,
                guards=minimal.guards,
                seed=seed,
            )
        except PerturbationError:
            assume(False)
            return
        minimal_report = replay(perturbed, minimal)
        assert minimal_report.counts_by_code()[perturbation.expected_code] >= 1
        # Minimization never changes the verdict on a defective log either.
        assert verdicts_agree(minimal_report, replay(perturbed, full))
