"""Unit and property tests for the graph utilities (cross-checked against
networkx on random DAGs)."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given

from repro.analysis.graphs import (
    DirectedGraph,
    ancestors,
    descendants,
    find_cycle,
    has_path,
    topological_sort,
    transitive_closure,
    transitive_reduction,
)
from tests.strategies import dag_edges


def diamond() -> DirectedGraph:
    return DirectedGraph(edges=[("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])


class TestBasics:
    def test_add_edge_adds_nodes(self):
        graph = DirectedGraph()
        graph.add_edge("x", "y")
        assert graph.has_node("x") and graph.has_node("y")
        assert graph.has_edge("x", "y")
        assert not graph.has_edge("y", "x")

    def test_degrees_and_counts(self):
        graph = diamond()
        assert graph.out_degree("a") == 2
        assert graph.in_degree("d") == 2
        assert graph.edge_count() == 4
        assert len(graph) == 4

    def test_remove_edge(self):
        graph = diamond()
        graph.remove_edge("a", "b")
        assert not graph.has_edge("a", "b")
        with pytest.raises(KeyError):
            graph.remove_edge("a", "b")

    def test_copy_is_independent(self):
        graph = diamond()
        clone = graph.copy()
        clone.add_edge("d", "e")
        assert not graph.has_node("e")

    def test_deterministic_node_order(self):
        graph = DirectedGraph(nodes=["z", "a", "m"])
        assert graph.nodes() == ["z", "a", "m"]


class TestReachability:
    def test_descendants(self):
        assert descendants(diamond(), "a") == {"b", "c", "d"}
        assert descendants(diamond(), "d") == set()

    def test_ancestors(self):
        assert ancestors(diamond(), "d") == {"a", "b", "c"}
        assert ancestors(diamond(), "a") == set()

    def test_has_path(self):
        graph = diamond()
        assert has_path(graph, "a", "d")
        assert not has_path(graph, "d", "a")
        assert not has_path(graph, "a", "a")  # no self-loop

    def test_has_path_on_cycle_back_to_self(self):
        graph = DirectedGraph(edges=[("a", "b"), ("b", "a")])
        assert has_path(graph, "a", "a")


class TestCycles:
    def test_acyclic_returns_none(self):
        assert find_cycle(diamond()) is None

    def test_simple_cycle_found(self):
        graph = DirectedGraph(edges=[("a", "b"), ("b", "c"), ("c", "a")])
        cycle = find_cycle(graph)
        assert cycle is not None
        assert set(cycle) == {"a", "b", "c"}

    def test_self_contained_subcycle(self):
        graph = diamond()
        graph.add_edge("d", "b")
        cycle = find_cycle(graph)
        assert cycle is not None
        assert set(cycle) <= {"b", "c", "d", "a"}
        # Verify it really is a cycle.
        for first, second in zip(cycle, cycle[1:] + cycle[:1]):
            assert graph.has_edge(first, second)


class TestTopologicalSort:
    def test_respects_edges(self):
        order = topological_sort(diamond())
        position = {node: i for i, node in enumerate(order)}
        for source, target in diamond().edges():
            assert position[source] < position[target]

    def test_raises_on_cycle(self):
        graph = DirectedGraph(edges=[("a", "b"), ("b", "a")])
        with pytest.raises(ValueError):
            topological_sort(graph)


class TestClosureAndReduction:
    def test_closure_diamond(self):
        closure = transitive_closure(diamond())
        assert closure["a"] == {"b", "c", "d"}
        assert closure["b"] == {"d"}
        assert closure["d"] == set()

    def test_reduction_removes_shortcut(self):
        graph = DirectedGraph(edges=[("a", "b"), ("b", "c"), ("a", "c")])
        reduced = transitive_reduction(graph)
        assert set(reduced.edges()) == {("a", "b"), ("b", "c")}

    def test_reduction_rejects_cycles(self):
        graph = DirectedGraph(edges=[("a", "b"), ("b", "a")])
        with pytest.raises(ValueError):
            transitive_reduction(graph)

    @given(dag_edges(max_nodes=9, max_edges=18))
    def test_closure_matches_networkx(self, drawn):
        node_count, edges = drawn
        graph = DirectedGraph(nodes=range(node_count), edges=edges)
        reference = nx.DiGraph(edges)
        reference.add_nodes_from(range(node_count))
        ours = transitive_closure(graph)
        for node in range(node_count):
            assert ours[node] == nx.descendants(reference, node)

    @given(dag_edges(max_nodes=9, max_edges=18))
    def test_reduction_matches_networkx(self, drawn):
        node_count, edges = drawn
        graph = DirectedGraph(nodes=range(node_count), edges=edges)
        reference = nx.DiGraph(edges)
        reference.add_nodes_from(range(node_count))
        ours = set(transitive_reduction(graph).edges())
        theirs = set(nx.transitive_reduction(reference).edges())
        assert ours == theirs

    @given(dag_edges(max_nodes=9, max_edges=18))
    def test_reduction_preserves_reachability(self, drawn):
        node_count, edges = drawn
        graph = DirectedGraph(nodes=range(node_count), edges=edges)
        reduced = transitive_reduction(graph)
        assert transitive_closure(graph) == transitive_closure(reduced)
