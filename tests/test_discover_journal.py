"""Mining runtime journals, including crash/recover artifacts.

The write-ahead contract (record first, state transition second) means a
journal that survived a crash and recovery may carry a re-journaled
duplicate of the record that was in flight when the process died.
Recovery proper (``read_journal(strict=True)``) must still reject such
inconsistencies — the coordinator's own write path never produces them —
while the ingestion path (``strict=False``, used by ``dscweaver
discover`` and ``replay``) dedupes by ``(case, activity, lifecycle)``,
first occurrence winning."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.conformance.events import FINISH, START, Event
from repro.discover.ingest import (
    dedupe_events,
    load_log,
    log_from_journal,
    sniff_format,
)
from repro.runtime.journal import JournalError, read_journal


@pytest.fixture(scope="module")
def recovered_journal(tmp_path_factory, capsysbinary=None):
    """A journal produced by a genuine crash-then-recover run."""
    path = tmp_path_factory.mktemp("journal") / "wal.jsonl"
    code = main(
        [
            "serve",
            "purchasing",
            "--cases",
            "32",
            "--journal",
            str(path),
            "--crash-after",
            "150",
        ]
    )
    assert code == 3  # simulated crash
    assert (
        main(
            [
                "serve",
                "purchasing",
                "--cases",
                "32",
                "--journal",
                str(path),
                "--recover",
            ]
        )
        == 0
    )
    return path


@pytest.fixture()
def duplicated_journal(recovered_journal, tmp_path):
    """The recovered journal with one event record duplicated, emulating
    a crash that hit between journaling a record and applying it."""
    lines = recovered_journal.read_text(encoding="utf-8").splitlines()
    event_line = next(
        line for line in lines if "rt" not in json.loads(line)
    )
    duplicated = tmp_path / "wal-dup.jsonl"
    duplicated.write_text(
        "\n".join(lines + [event_line]) + "\n", encoding="utf-8"
    )
    return duplicated, json.loads(event_line)


class TestStrictRecovery:
    def test_genuine_recovered_journal_parses_strictly(self, recovered_journal):
        state = read_journal(str(recovered_journal))
        assert len(state.completed()) == 32
        assert state.in_flight() == []

    def test_duplicate_event_rejected(self, duplicated_journal):
        path, payload = duplicated_journal
        with pytest.raises(JournalError):
            read_journal(str(path))

    def test_unknown_control_record_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"rt": "checkpoint", "case": "c1"}\n', encoding="utf-8")
        with pytest.raises(JournalError):
            read_journal(str(path))

    def test_event_for_unadmitted_case_rejected(self, tmp_path):
        path = tmp_path / "orphan.jsonl"
        path.write_text(
            '{"case": "c1", "activity": "a", "lifecycle": "start", "time": 0.0}\n',
            encoding="utf-8",
        )
        with pytest.raises(JournalError):
            read_journal(str(path))


class TestTolerantIngestion:
    def test_duplicate_event_dropped_first_wins(self, duplicated_journal):
        path, payload = duplicated_journal
        state = read_journal(str(path), strict=False)
        key = (payload["case"], payload["activity"], payload["lifecycle"])
        matches = [
            e
            for e in state.event_stream
            if (e.case, e.activity, e.lifecycle) == key
        ]
        assert len(matches) == 1

    def test_readmission_keeps_original_case(self, tmp_path):
        path = tmp_path / "readmit.jsonl"
        path.write_text(
            "\n".join(
                [
                    '{"rt": "admit", "case": "c1", "time": 0.0, "outcomes": {"g": "T"}}',
                    '{"rt": "admit", "case": "c1", "time": 5.0, "outcomes": {"g": "F"}}',
                ]
            )
            + "\n",
            encoding="utf-8",
        )
        state = read_journal(str(path), strict=False)
        assert state.cases["c1"].outcomes == {"g": "T"}

    def test_unadmitted_case_admitted_implicitly(self, tmp_path):
        path = tmp_path / "orphan.jsonl"
        path.write_text(
            '{"case": "c1", "activity": "a", "lifecycle": "start", "time": 0.0}\n'
            '{"rt": "checkpoint", "case": "c1"}\n',
            encoding="utf-8",
        )
        state = read_journal(str(path), strict=False)
        assert "c1" in state.cases
        assert len(state.event_stream) == 1  # unknown control record skipped

    def test_log_from_journal_equals_dedup_of_stream(self, duplicated_journal):
        path, _ = duplicated_journal
        log = log_from_journal(str(path))
        state = read_journal(str(path), strict=False)
        assert log.events == dedupe_events(state.event_stream)


class TestDedupeEvents:
    def test_first_occurrence_wins(self):
        first = Event("c1", "a", START, 0.0)
        dup = Event("c1", "a", START, 9.0)
        other = Event("c1", "a", FINISH, 1.0)
        assert dedupe_events([first, dup, other]) == [first, other]


class TestDiscoverOnJournals:
    def test_sniff_classifies_journal_vs_jsonl(self, recovered_journal, tmp_path):
        assert sniff_format(str(recovered_journal)) == "journal"
        plain = tmp_path / "plain.jsonl"
        plain.write_text(
            '{"case": "c1", "activity": "a", "lifecycle": "start", "time": 0.0}\n',
            encoding="utf-8",
        )
        assert sniff_format(str(plain)) == "jsonl"

    def test_load_log_sniffs_and_dedupes(self, duplicated_journal):
        path, payload = duplicated_journal
        log = load_log(str(path))
        key = (payload["case"], payload["activity"], payload["lifecycle"])
        assert (
            len(
                [
                    e
                    for e in log.events
                    if (e.case, e.activity, e.lifecycle) == key
                ]
            )
            == 1
        )
        assert len(log.cases()) == 32

    def test_discover_mines_crash_recovered_journal(
        self, duplicated_journal, capsys
    ):
        path, _ = duplicated_journal
        # 32 unjittered serve cases leave timing coincidences, so gate
        # only on errors: the point is that ingestion works end to end.
        assert (
            main(
                [
                    "discover",
                    "--log",
                    str(path),
                    "--min-support",
                    "3",
                    "--fail-on",
                    "error",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "mined 32 case(s)" in out
