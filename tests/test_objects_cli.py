"""``dscweaver serve --objects`` and ``dscweaver monitor --objects``.

End-to-end through the CLI: object-centric serving, crash/recover,
journal replay through the object-aware monitor, and the usage-error
paths.  A WAL journal fed to the *plain* monitor must also work — the
control records are skipped, not mistaken for malformed events.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def _serve(path, *extra):
    return main(
        [
            "serve",
            "orders",
            "--objects",
            "--cases",
            "33",
            "--fan-out",
            "10",
            "--shards",
            "4",
            "--journal",
            str(path),
            *extra,
        ]
    )


@pytest.fixture(scope="module")
def clean_journal(tmp_path_factory):
    path = tmp_path_factory.mktemp("objects") / "wal.jsonl"
    assert _serve(path) == 0
    return path


class TestServeObjects:
    def test_clean_run(self, clean_journal, capsys):
        # re-serve to capture output (the fixture consumed its own)
        assert _serve(clean_journal) == 0
        out = capsys.readouterr().out
        assert "3 order(s) x fan-out 10 -> 33 case(s) (co-sharded)" in out
        assert "33 completed" in out
        assert "barriers: 3 released, 0 stranded" in out

    def test_requires_orders_workload(self, capsys):
        assert main(["serve", "purchasing", "--objects"]) == 2
        assert "orders workload" in capsys.readouterr().err

    def test_json_summary_carries_object_block(self, tmp_path, capsys):
        assert _serve(tmp_path / "json.jsonl", "--format", "json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["objects"] == {
            "orders": 3,
            "fan_out": 10,
            "cancel_every": 0,
            "withhold": 0,
            "co_shard": True,
        }
        assert payload["metrics"]["barriers_released"] == 3

    def test_withheld_children_gate_exit_code(self, tmp_path, capsys):
        code = _serve(tmp_path / "strand.jsonl", "--withhold", "1")
        out = capsys.readouterr().out
        assert code == 1
        assert "RT006" in out
        assert "barriers: 0 released, 3 stranded" in out

    def test_random_shard_matches_co_shard(self, tmp_path, capsys):
        assert _serve(tmp_path / "rand.jsonl", "--random-shard") == 0
        out = capsys.readouterr().out
        assert "(random-sharded)" in out
        assert "33 completed" in out

    def test_crash_then_recover(self, tmp_path, capsys):
        path = tmp_path / "crash.jsonl"
        assert _serve(path, "--crash-after", "150") == 3
        hint = capsys.readouterr().out
        assert "--recover --objects --fan-out 10" in hint
        assert _serve(path, "--recover") == 0
        assert "33 completed" in capsys.readouterr().out

    def test_crash_during_admission_still_recovers(self, tmp_path, capsys):
        # 33 cases journal 33 admit records, so the crash point lands in
        # submit_batch, not run() — still exit 3 with the recover hint
        path = tmp_path / "admit-crash.jsonl"
        assert _serve(path, "--crash-after", "20") == 3
        assert "--recover" in capsys.readouterr().out
        assert _serve(path, "--recover") == 0
        assert "33 completed" in capsys.readouterr().out


class TestMonitorObjects:
    def test_clean_journal_zero_violations(self, clean_journal, capsys):
        assert (
            main(["monitor", "orders", "--objects", "--log", str(clean_journal)])
            == 0
        )
        out = capsys.readouterr().out
        assert "0 finding(s), 0 gating" in out
        assert "objects tracked: 3 (33 bound cases" in out
        assert "under-sync: 0, double-fire: 0, orphaned-child: 0" in out

    def test_requires_orders_workload(self, clean_journal, capsys):
        code = main(
            ["monitor", "purchasing", "--objects", "--log", str(clean_journal)]
        )
        assert code == 2
        assert "orders workload" in capsys.readouterr().err

    def test_withheld_journal_reports_under_sync(self, tmp_path, capsys):
        path = tmp_path / "strand.jsonl"
        assert _serve(path, "--withhold", "2") == 1
        capsys.readouterr()
        assert main(["monitor", "orders", "--objects", "--log", str(path)]) == 1
        out = capsys.readouterr().out
        assert "OBJ001" in out
        assert "8 of 10 declared children resolved" in out

    def test_plain_monitor_skips_control_records(self, clean_journal, capsys):
        assert main(["monitor", "orders", "--log", str(clean_journal)]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s), 0 gating" in out
        assert "objects tracked" not in out  # no --objects, no object block

    def test_garbage_line_is_still_a_usage_error(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n", encoding="utf-8")
        assert main(["monitor", "orders", "--log", str(path)]) == 2
        assert "bad event" in capsys.readouterr().err


class TestOrdersWorkloadPlumbing:
    def test_orders_reaches_the_static_commands(self, capsys):
        assert main(["table1", "--workload", "orders"]) == 0
        assert "pack_item" in capsys.readouterr().out
        assert main(["lint", "orders"]) == 0

    def test_orders_serves_without_objects_flag(self, capsys):
        # plain single-case serving of the same process model still works
        assert main(["serve", "orders", "--cases", "12"]) == 0
        assert "12 completed" in capsys.readouterr().out
