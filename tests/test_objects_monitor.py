"""The object-aware monitor: OBJ001 under-sync, OBJ002 double-fire,
OBJ003 orphaned-child — plus the clean path on a real runtime journal.
"""

from __future__ import annotations

from repro.conformance.events import Event
from repro.lint.diagnostics import Severity
from repro.objects import ObjectBinding, ObjectMonitor
from repro.workloads.orders import orders_object_spec


def _monitor(fan_out=2, key="ord-0000"):
    monitor = ObjectMonitor(orders_object_spec())
    monitor.bind(
        "%s-order" % key,
        ObjectBinding(object_key=key, role="order", children=fan_out),
    )
    for item in range(fan_out):
        monitor.bind(
            "%s-item-%03d" % (key, item),
            ObjectBinding(object_key=key, role="item"),
        )
    return monitor


def _pack(monitor, key, item, time, lifecycle="finish"):
    monitor.feed(
        Event("%s-item-%03d" % (key, item), "pack_item", lifecycle, time)
    )


class TestUnderSync:
    def test_premature_ship_start(self):
        monitor = _monitor(fan_out=2)
        _pack(monitor, "ord-0000", 0, 3.0)
        monitor.feed(Event("ord-0000-order", "ship_order", "start", 4.0))
        (finding,) = monitor.diagnostics
        assert finding.code == "OBJ001"
        assert finding.severity is Severity.ERROR
        assert "ship_order" in finding.message
        assert any("1 of 2" in line for line in finding.evidence)

    def test_ship_after_all_children_is_clean(self):
        monitor = _monitor(fan_out=2)
        _pack(monitor, "ord-0000", 0, 3.0)
        _pack(monitor, "ord-0000", 1, 5.0, lifecycle="skip")  # cancelled child
        monitor.feed(Event("ord-0000-order", "ship_order", "start", 5.0))
        monitor.feed(Event("ord-0000-order", "invoice_order", "finish", 8.0))
        report = monitor.finish()
        assert report.clean
        barrier = report.counters["ord-0000"][
            "all:item.pack_item->order.ship_order"
        ]
        assert barrier == {"satisfied": 1, "cancelled": 1, "open": True}

    def test_unmet_fan_out_at_end_of_log(self):
        monitor = _monitor(fan_out=3)
        _pack(monitor, "ord-0000", 0, 3.0)
        report = monitor.finish()
        codes = [d.code for d in report.violations]
        assert codes == ["OBJ001"]
        assert "1 of 3" in report.violations[0].message

    def test_premature_start_reported_once_per_case(self):
        monitor = _monitor(fan_out=2)
        monitor.feed(Event("ord-0000-order", "ship_order", "start", 1.0))
        monitor.feed(Event("ord-0000-order", "ship_order", "start", 2.0))
        assert len(monitor.diagnostics) == 1


class TestDoubleFire:
    def test_second_case_firing_invoice(self):
        monitor = ObjectMonitor(orders_object_spec())
        for case in ("dup-a", "dup-b"):
            monitor.bind(
                case, ObjectBinding(object_key="ord-9", role="order", children=0)
            )
        monitor.feed(Event("dup-a", "invoice_order", "finish", 1.0))
        monitor.feed(Event("dup-b", "invoice_order", "finish", 2.0))
        (finding,) = [d for d in monitor.diagnostics if d.code == "OBJ002"]
        assert finding.severity is Severity.ERROR
        assert "dup-a" in finding.message and "dup-b" in finding.message

    def test_replayed_firing_by_same_case_is_clean(self):
        monitor = ObjectMonitor(orders_object_spec())
        monitor.bind(
            "solo", ObjectBinding(object_key="ord-9", role="order", children=0)
        )
        monitor.feed(Event("solo", "invoice_order", "finish", 1.0))
        monitor.feed(Event("solo", "invoice_order", "finish", 1.0))
        assert not [d for d in monitor.diagnostics if d.code == "OBJ002"]


class TestOrphanedChild:
    def test_children_without_parent(self):
        monitor = ObjectMonitor(orders_object_spec())
        monitor.bind("lost-1", ObjectBinding(object_key="ord-7", role="item"))
        monitor.bind("lost-2", ObjectBinding(object_key="ord-7", role="item"))
        _pack(monitor, "ord-7", 0, 1.0)
        report = monitor.finish()
        orphans = [d for d in report.diagnostics if d.code == "OBJ003"]
        (finding,) = orphans
        assert finding.severity is Severity.WARNING
        assert "2 child case(s)" in finding.message
        # warnings gate the default exit code but not an error-only one
        assert report.exit_code() == 1
        assert report.exit_code(Severity.ERROR) == 0


class TestBindingsFromAttrs:
    def test_events_carry_their_own_binding(self):
        monitor = ObjectMonitor(orders_object_spec())
        monitor.feed(
            Event(
                "c-1",
                "pack_item",
                "finish",
                1.0,
                attrs=(("object", "ord-3"), ("role", "item")),
            )
        )
        report = monitor.finish()
        assert report.objects == 1
        assert report.bound_cases == 1

    def test_unbound_events_are_ignored(self):
        monitor = ObjectMonitor(orders_object_spec())
        monitor.feed(Event("c-1", "pack_item", "finish", 1.0))
        report = monitor.finish()
        assert report.objects == 0
        assert report.events == 0
        assert report.clean


class TestJournalReplay:
    def test_clean_runtime_journal_has_zero_violations(
        self, orders_runtime_program, tmp_path
    ):
        from repro.runtime import Runtime
        from repro.runtime.journal import read_journal
        from repro.workloads.orders import orders_plans

        path = str(tmp_path / "clean.jsonl")
        plans, bindings = orders_plans(3, 4, cancel_every=2)
        runtime = Runtime(
            orders_runtime_program,
            objects=orders_object_spec(),
            shards=4,
            journal_path=path,
        )
        runtime.submit_batch(plans, bindings=bindings)
        runtime.run()
        runtime.close()

        state = read_journal(path)
        monitor = ObjectMonitor(orders_object_spec())
        for journaled in state.cases.values():
            if journaled.binding:
                monitor.bind(
                    journaled.case, ObjectBinding.from_dict(journaled.binding)
                )
        for event in state.event_stream:
            monitor.feed(event)
        report = monitor.finish()
        assert report.clean
        assert report.objects == 3
        assert report.counts_by_code() == {"OBJ001": 0, "OBJ002": 0, "OBJ003": 0}
        assert "under-sync: 0" in report.summary()

    def test_report_converts_to_lint_report(self):
        monitor = _monitor(fan_out=1)
        report = monitor.finish()  # one unmet barrier -> OBJ001
        lint = report.to_lint_report()
        assert lint.rules_run == ("OBJ001", "OBJ002", "OBJ003")
        assert [f.code for f in lint.findings] == ["OBJ001"]
        assert report.exit_code() == 1
