"""Output formats: text, JSON and SARIF 2.1.0.

The SARIF output is validated against an embedded subset of the official
OASIS SARIF 2.1.0 schema (the structural constraints that matter for
consumers: required run/tool/result fields, severity levels, location
shapes).  The full schema is not vendored to keep the repo lean; the
subset uses the same property names and enum values verbatim.
"""

from __future__ import annotations

import json

import jsonschema
import pytest

from repro.lint import (
    Diagnostic,
    LintConfig,
    LintContext,
    LintReport,
    Severity,
    activity_location,
    constraint_location,
    render,
    render_json,
    render_sarif,
    render_text,
    run_lint,
    sarif_dict,
)

#: Reduced SARIF 2.1.0 schema: the subset of the official schema our
#: output must satisfy, with names and enums copied verbatim.
SARIF_SCHEMA_SUBSET = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"enum": ["2.1.0"]},
        "$schema": {"type": "string", "format": "uri"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "informationUri": {
                                        "type": "string",
                                        "format": "uri",
                                    },
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "name": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                                "defaultConfiguration": {
                                                    "type": "object",
                                                    "properties": {
                                                        "level": {
                                                            "enum": [
                                                                "none",
                                                                "note",
                                                                "warning",
                                                                "error",
                                                            ]
                                                        }
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "level": {
                                    "enum": ["none", "note", "warning", "error"]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {"text": {"type": "string"}},
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "logicalLocations": {
                                                "type": "array",
                                                "items": {
                                                    "type": "object",
                                                    "properties": {
                                                        "name": {"type": "string"},
                                                        "fullyQualifiedName": {
                                                            "type": "string"
                                                        },
                                                        "kind": {"type": "string"},
                                                    },
                                                },
                                            },
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "properties": {
                                                            "uri": {
                                                                "type": "string"
                                                            }
                                                        },
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                            "endLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                                "partialFingerprints": {
                                    "type": "object",
                                    "additionalProperties": {"type": "string"},
                                },
                                "suppressions": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "required": ["kind"],
                                        "properties": {
                                            "kind": {
                                                "enum": ["inSource", "external"]
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def _report():
    return LintReport.from_diagnostics(
        [
            Diagnostic(
                code="SYNC001",
                severity=Severity.WARNING,
                message="race on x",
                location=activity_location("a"),
                related=(activity_location("b"),),
                evidence=("variable: x",),
                fix="add a constraint",
            ),
            Diagnostic(
                code="RED001",
                severity=Severity.INFO,
                message="redundant",
                location=constraint_location("a", "b", span=(3, 4)),
            ),
        ]
    )


class TestTextFormat:
    def test_renders_findings_and_summary(self):
        text = render_text(_report(), title="demo")
        assert "lint results for demo" in text
        assert "warning SYNC001" in text
        assert "1 warning, 1 info" in text

    def test_empty_report(self):
        text = render_text(LintReport.from_diagnostics([]))
        assert "no findings" in text


class TestJsonFormat:
    def test_payload_shape(self):
        payload = json.loads(render_json(_report(), title="demo"))
        assert payload["tool"] == "dscweaver-lint"
        assert payload["subject"] == "demo"
        assert payload["counts"]["warning"] == 1
        codes = [finding["code"] for finding in payload["findings"]]
        assert codes == ["SYNC001", "RED001"]  # errors-first ordering kept
        assert payload["findings"][1]["location"]["span"] == {
            "first_line": 3,
            "last_line": 4,
        }

    def test_fingerprints_included(self):
        payload = json.loads(render_json(_report()))
        assert all(len(f["fingerprint"]) == 16 for f in payload["findings"])


class TestSarifFormat:
    def test_schema_valid(self):
        log = sarif_dict(_report(), title="demo")
        jsonschema.validate(
            log,
            SARIF_SCHEMA_SUBSET,
            format_checker=jsonschema.FormatChecker(),
        )

    def test_purchasing_sarif_schema_valid(self, purchasing_weave):
        report = run_lint(LintContext.from_weave(purchasing_weave))
        log = json.loads(render_sarif(report, title="purchasing"))
        jsonschema.validate(
            log,
            SARIF_SCHEMA_SUBSET,
            format_checker=jsonschema.FormatChecker(),
        )
        assert log["version"] == "2.1.0"

    def test_severity_level_mapping(self):
        log = sarif_dict(_report())
        levels = {r["ruleId"]: r["level"] for r in log["runs"][0]["results"]}
        assert levels == {"SYNC001": "warning", "RED001": "note"}

    def test_physical_location_from_span(self):
        log = sarif_dict(_report(), title="demo")
        red = next(
            r for r in log["runs"][0]["results"] if r["ruleId"] == "RED001"
        )
        physical = red["locations"][0]["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == "demo.dscl"
        assert physical["region"] == {"startLine": 3, "endLine": 4}

    def test_suppressed_findings_marked(self):
        report = LintReport.from_diagnostics(
            [],
            suppressed=[
                Diagnostic(
                    code="SYNC001",
                    severity=Severity.WARNING,
                    message="baselined",
                    location=activity_location("a"),
                )
            ],
        )
        log = sarif_dict(report)
        (result,) = log["runs"][0]["results"]
        assert result["suppressions"] == [{"kind": "external"}]

    def test_rules_listed_in_driver(self, purchasing_weave):
        report = run_lint(
            LintContext.from_weave(purchasing_weave),
            LintConfig.from_codes(select=["SYNC"]),
        )
        log = sarif_dict(report)
        ids = [r["id"] for r in log["runs"][0]["tool"]["driver"]["rules"]]
        assert ids and all(rule_id.startswith("SYNC") for rule_id in ids)


class TestRenderDispatch:
    def test_dispatch(self):
        report = _report()
        assert render(report, "text") == render_text(report)
        assert render(report, "json") == render_json(report)
        assert render(report, "sarif") == render_sarif(report)

    def test_unknown_format(self):
        with pytest.raises(ValueError, match="unknown format"):
            render(_report(), "xml")
