"""Multi-process shard workers: equivalence with the single-process runtime.

The :class:`WorkerPool` splits a case load across N workers, each running
a full :class:`Runtime` over its own journal segment, with cross-shard
object barriers converging through the bulk-synchronous gate exchange.
The contract pinned here: for every worker count, co-sharding mode and
transport (in-process or forked), the pool's final states, per-object
obligation counters, diagnostics and latency quantiles are identical to
one single-process runtime serving the same load — including after a
mid-flight crash and a parallel segmented recovery.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.runtime import (
    Runtime,
    SimulatedCrash,
    WorkerPool,
    WorkerPoolError,
    read_journal,
    read_manifest,
    shard_index,
    worker_of,
    write_manifest,
)
from repro.runtime.workers import MANIFEST_FORMAT, MANIFEST_NAME, segment_name
from repro.workloads.orders import orders_object_spec, orders_plans

ORDERS, FAN_OUT, CANCEL_EVERY = 6, 5, 3


def _load(withhold: int = 0):
    return orders_plans(
        ORDERS, FAN_OUT, cancel_every=CANCEL_EVERY, withhold=withhold
    )


def _single(program, tmp_path, withhold: int = 0, name: str = "single.jsonl"):
    """Uninterrupted single-process reference run over the same load."""
    plans, bindings = _load(withhold)
    runtime = Runtime(
        program,
        objects=orders_object_spec(),
        shards=4,
        journal_path=str(tmp_path / name),
    )
    runtime.submit_batch(plans, bindings=bindings)
    report = runtime.run()
    runtime.close()
    return report, runtime.object_counters()


def _diag_keys(report):
    return sorted((d.code, d.message) for d in report.diagnostics)


class TestPlacement:
    def test_worker_of_is_the_store_hash(self):
        binding = _load()[1]["ord-0000-item-000"]
        assert worker_of("ord-0000-item-000", binding, 4) == shard_index(
            binding.object_key, 4
        )
        assert worker_of("ord-0000-item-000", binding, 4, co_shard=False) == (
            shard_index("ord-0000-item-000", 4)
        )
        assert worker_of("case-1", None, 4) == shard_index("case-1", 4)

    def test_co_sharding_keeps_an_object_together(self):
        plans, bindings = _load()
        for workers in (2, 3, 5):
            placed = {
                case: worker_of(case, bindings.get(case), workers)
                for case in plans
            }
            per_object = {}
            for case, index in placed.items():
                per_object.setdefault(bindings[case].object_key, set()).add(index)
            assert all(len(spread) == 1 for spread in per_object.values())


class TestManifest:
    def test_round_trip(self, tmp_path):
        path = write_manifest(str(tmp_path), workers=3, co_shard=False, flush_every=8)
        assert os.path.basename(path) == MANIFEST_NAME
        manifest = read_manifest(str(tmp_path))
        assert manifest["format"] == MANIFEST_FORMAT
        assert manifest["workers"] == 3
        assert manifest["co_shard"] is False
        assert manifest["flush_every"] == 8
        assert manifest["journals"] == [segment_name(i) for i in range(3)]

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(WorkerPoolError, match="no manifest.json"):
            read_manifest(str(tmp_path))

    def test_malformed_manifest(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{nope", encoding="utf-8")
        with pytest.raises(WorkerPoolError, match="malformed"):
            read_manifest(str(tmp_path))

    def test_unsupported_format(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(
            json.dumps({"format": "something-else/9"}), encoding="utf-8"
        )
        with pytest.raises(WorkerPoolError, match="unsupported"):
            read_manifest(str(tmp_path))

    def test_pool_validation(self, orders_runtime_program):
        with pytest.raises(WorkerPoolError, match="at least 1"):
            WorkerPool(orders_runtime_program, workers=0)
        with pytest.raises(WorkerPoolError, match="journal_dir"):
            WorkerPool(orders_runtime_program, workers=2, crash_after=10)


class TestPoolEquivalence:
    @pytest.mark.parametrize("processes", [False, True])
    @pytest.mark.parametrize("co_shard", [True, False])
    def test_matches_single_process(
        self, orders_runtime_program, tmp_path, processes, co_shard
    ):
        expected, expected_counters = _single(orders_runtime_program, tmp_path)
        plans, bindings = _load()
        pool = WorkerPool(
            orders_runtime_program,
            workers=2,
            journal_dir=str(tmp_path / ("pool-%s-%s" % (processes, co_shard))),
            objects=orders_object_spec(),
            co_shard=co_shard,
            processes=processes,
        )
        report = pool.serve(plans, bindings)
        assert report.final_states() == expected.final_states()
        assert report.completed_cases() == expected.completed_cases()
        assert pool.object_counters() == expected_counters
        assert _diag_keys(report) == _diag_keys(expected)
        assert report.metrics.completed == expected.metrics.completed
        assert report.metrics.failed == expected.metrics.failed
        assert report.metrics.workers == 2
        # merged quantiles are recomputed from the union of makespans, so
        # they agree with the single-process values exactly
        assert report.metrics.latency_p50 == expected.metrics.latency_p50
        assert report.metrics.latency_p95 == expected.metrics.latency_p95

    @pytest.mark.parametrize("workers", [1, 2, 3, 5])
    def test_worker_count_invariance(
        self, orders_runtime_program, tmp_path, workers
    ):
        expected, expected_counters = _single(orders_runtime_program, tmp_path)
        plans, bindings = _load()
        pool = WorkerPool(
            orders_runtime_program,
            workers=workers,
            objects=orders_object_spec(),
            processes=False,
        )
        report = pool.serve(plans, bindings)
        assert report.final_states() == expected.final_states()
        assert pool.object_counters() == expected_counters

    @pytest.mark.parametrize("processes", [False, True])
    def test_withheld_children_strand_identically(
        self, orders_runtime_program, tmp_path, processes
    ):
        """Parked cases fail (RT006) against the converged index, exactly
        as the single-process runtime fails them."""
        expected, expected_counters = _single(
            orders_runtime_program, tmp_path, withhold=2
        )
        plans, bindings = _load(withhold=2)
        pool = WorkerPool(
            orders_runtime_program,
            workers=3,
            objects=orders_object_spec(),
            processes=processes,
        )
        report = pool.serve(plans, bindings)
        assert report.final_states() == expected.final_states()
        assert pool.object_counters() == expected_counters
        assert _diag_keys(report) == _diag_keys(expected)
        assert any(d.code == "RT006" for d in report.diagnostics)
        assert report.metrics.failed == expected.metrics.failed > 0
        assert (
            report.metrics.barriers_stranded
            == expected.metrics.barriers_stranded
            > 0
        )

    def test_segments_are_deterministic(self, orders_runtime_program, tmp_path):
        """Same load, same config: byte-identical journal segments."""
        plans, bindings = _load()
        segments = []
        for attempt in range(2):
            directory = tmp_path / ("det-%d" % attempt)
            WorkerPool(
                orders_runtime_program,
                workers=2,
                journal_dir=str(directory),
                objects=orders_object_spec(),
                processes=False,
            ).serve(plans, bindings)
            segments.append(
                [
                    (directory / segment_name(i)).read_bytes()
                    for i in range(2)
                ]
            )
        assert segments[0] == segments[1]

    def test_single_worker_segment_matches_single_process_journal(
        self, orders_runtime_program, tmp_path
    ):
        """A one-worker pool is the single-process runtime, byte for byte."""
        plans, bindings = _load()
        single = Runtime(
            orders_runtime_program,
            objects=orders_object_spec(),
            shards=2,
            journal_path=str(tmp_path / "single.jsonl"),
        )
        single.submit_batch(plans, bindings=bindings)
        single.run()
        single.close()
        WorkerPool(
            orders_runtime_program,
            workers=1,
            journal_dir=str(tmp_path / "pool"),
            objects=orders_object_spec(),
            processes=False,
        ).serve(plans, bindings)
        assert (tmp_path / "pool" / segment_name(0)).read_bytes() == (
            tmp_path / "single.jsonl"
        ).read_bytes()


class TestPoolCrashRecovery:
    # all 36 admits land before any run record in every segment, so these
    # depths always interrupt execution proper, never admission (a case
    # lost before its admit record is lost from the WAL by design)
    DEPTHS = [40, 90, 150]

    def _crash(self, program, directory, crash_after, processes):
        plans, bindings = _load()
        pool = WorkerPool(
            program,
            workers=2,
            journal_dir=str(directory),
            objects=orders_object_spec(),
            crash_after=crash_after,
            processes=processes,
        )
        with pytest.raises(SimulatedCrash):
            pool.serve(plans, bindings)

    @pytest.mark.parametrize("processes", [False, True])
    @pytest.mark.parametrize("crash_after", DEPTHS)
    def test_recovers_to_identical_states(
        self, orders_runtime_program, tmp_path, crash_after, processes
    ):
        expected, expected_counters = _single(orders_runtime_program, tmp_path)
        directory = tmp_path / ("crash-%d-%s" % (crash_after, processes))
        self._crash(orders_runtime_program, directory, crash_after, processes)
        # completed cases in the crash-time segments must be adopted,
        # never re-executed (the segments grow again during recovery,
        # so count them before recovering)
        adopted = sum(
            len(read_journal(str(directory / segment_name(i))).completed())
            for i in range(2)
        )
        report = WorkerPool.recover(
            str(directory),
            orders_runtime_program,
            objects=orders_object_spec(),
            processes=processes,
        )
        assert report.final_states() == expected.final_states()
        assert report.completed_cases() == expected.completed_cases()
        assert report.metrics.recovered == adopted
        # deterministic replay: no prefix-divergence findings anywhere
        assert not [d for d in report.diagnostics if d.code == "RT003"]

    def test_per_worker_crash_mapping(self, orders_runtime_program, tmp_path):
        """A mapping crashes only the named workers; survivors' segments
        end at a clean group-commit boundary and recovery still converges."""
        expected, _counters = _single(orders_runtime_program, tmp_path)
        directory = tmp_path / "crash-map"
        plans, bindings = _load()
        pool = WorkerPool(
            orders_runtime_program,
            workers=2,
            journal_dir=str(directory),
            objects=orders_object_spec(),
            crash_after={1: 60},
            processes=False,
        )
        with pytest.raises(SimulatedCrash):
            pool.serve(plans, bindings)
        # the survivor's segment is a readable, consistent prefix
        for index in range(2):
            state = read_journal(str(directory / segment_name(index)))
            assert state.cases
        report = WorkerPool.recover(
            str(directory),
            orders_runtime_program,
            objects=orders_object_spec(),
            processes=False,
        )
        assert report.final_states() == expected.final_states()

    def test_recovery_with_resubmission(self, orders_runtime_program, tmp_path):
        """``recover(plans=...)`` adopts journaled cases and hash-places
        only the cases no segment has seen."""
        expected, expected_counters = _single(orders_runtime_program, tmp_path)
        # crash mid-admission (one worker owns 24 of the 36 cases, so a
        # depth of 15 leaves some of its cases entirely unjournaled)
        directory = tmp_path / "crash-resubmit"
        self._crash(orders_runtime_program, directory, 15, processes=False)
        journaled = set()
        for index in range(2):
            journaled.update(
                read_journal(str(directory / segment_name(index))).cases
            )
        plans, bindings = _load()
        assert journaled < set(plans), "crash must leave unseen cases"
        report = WorkerPool.recover(
            str(directory),
            orders_runtime_program,
            objects=orders_object_spec(),
            processes=False,
            plans=plans,
            bindings=bindings,
        )
        assert report.final_states() == expected.final_states()
        assert report.completed_cases() == expected.completed_cases()

    def test_recovered_segments_mine_cleanly(
        self, orders_runtime_program, tmp_path
    ):
        """Every recovered segment stays consumable by the discover
        ingestion path (compact serialization round-trip)."""
        from repro.discover.ingest import log_from_journal

        directory = tmp_path / "crash-mine"
        self._crash(orders_runtime_program, directory, 90, processes=False)
        WorkerPool.recover(
            str(directory),
            orders_runtime_program,
            objects=orders_object_spec(),
            processes=False,
        )
        cases = set()
        for index in range(2):
            log = log_from_journal(str(directory / segment_name(index)))
            assert len(log)
            cases.update(event.case for event in log)
        plans, _bindings = _load()
        assert cases <= set(plans)
