"""Tests for dominator analysis and CFG control dependencies (Figure 4)."""

from __future__ import annotations

import pytest

from repro.analysis.dominators import (
    control_dependencies,
    immediate_dominators,
    postdominators,
)
from repro.analysis.graphs import DirectedGraph
from repro.workloads.figure3 import ENTRY, EXIT, build_figure3_cfg


def straight_line() -> DirectedGraph:
    return DirectedGraph(edges=[("s", "a"), ("a", "b"), ("b", "t")])


class TestImmediateDominators:
    def test_straight_line(self):
        idom = immediate_dominators(straight_line(), "s")
        assert idom["s"] == "s"
        assert idom["a"] == "s"
        assert idom["b"] == "a"
        assert idom["t"] == "b"

    def test_diamond_join_dominated_by_branch(self):
        graph = DirectedGraph(
            edges=[("s", "a"), ("s", "b"), ("a", "t"), ("b", "t")]
        )
        idom = immediate_dominators(graph, "s")
        assert idom["t"] == "s"
        assert idom["a"] == "s"

    def test_unknown_entry_rejected(self):
        with pytest.raises(ValueError):
            immediate_dominators(straight_line(), "nope")

    def test_unreachable_nodes_excluded(self):
        graph = straight_line()
        graph.add_edge("island1", "island2")
        idom = immediate_dominators(graph, "s")
        assert "island1" not in idom
        assert "island2" not in idom


class TestPostdominators:
    def test_figure3(self):
        cfg, _labels = build_figure3_cfg()
        ipostdom = postdominators(cfg, EXIT)
        # a7 post-dominates the branch a1 (both paths re-converge there).
        assert ipostdom["a1"] == "a7"
        assert ipostdom["a2"] == "a3"
        assert ipostdom["a4"] == "a7"
        assert ipostdom["a6"] == "a7"


class TestControlDependencies:
    def test_figure4_reproduction(self):
        """a2..a6 are control dependent on a1; a7 is not (it dominates all
        paths from a1 to stop) — the exact point of Figure 4."""
        cfg, labels = build_figure3_cfg()
        triples = control_dependencies(cfg, ENTRY, EXIT, labels)
        dependents = {(branch, dependent) for branch, dependent, _ in triples}
        for dependent in ("a2", "a3", "a4", "a5", "a6"):
            assert ("a1", dependent) in dependents
        assert ("a1", "a7") not in dependents

    def test_figure4_labels(self):
        cfg, labels = build_figure3_cfg()
        triples = control_dependencies(cfg, ENTRY, EXIT, labels)
        by_pair = {(b, d): label for b, d, label in triples}
        assert by_pair[("a1", "a2")] == "T"
        assert by_pair[("a1", "a3")] == "T"
        assert by_pair[("a1", "a5")] == "F"
        assert by_pair[("a1", "a6")] == "F"

    def test_no_branches_no_dependencies(self):
        triples = control_dependencies(straight_line(), "s", "t", {})
        assert triples == []

    def test_nested_branch(self):
        graph = DirectedGraph(
            edges=[
                ("s", "g1"),
                ("g1", "g2"),
                ("g1", "x"),
                ("g2", "a"),
                ("g2", "b"),
                ("a", "m"),
                ("b", "m"),
                ("m", "t"),
                ("x", "t"),
            ]
        )
        labels = {
            ("g1", "g2"): "T",
            ("g1", "x"): "F",
            ("g2", "a"): "T",
            ("g2", "b"): "F",
        }
        triples = control_dependencies(graph, "s", "t", labels)
        pairs = {(b, d) for b, d, _ in triples}
        # Inner activities depend on the inner guard, not directly on g1.
        assert ("g2", "a") in pairs
        assert ("g2", "b") in pairs
        assert ("g1", "a") not in pairs
        # The inner guard itself depends on the outer guard.
        assert ("g1", "g2") in pairs
        # m post-dominates g2 but not g1.
        assert ("g1", "m") in pairs
        assert ("g2", "m") not in pairs
