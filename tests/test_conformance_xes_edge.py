"""XES import edge cases: the messy exports mining must tolerate.

Real-world XES rarely matches the tidy two-transition profile: events
drop ``concept:name``, timestamps go missing or arrive out of order,
traces interleave many cases, and guard outcomes ride along as bare
``outcome`` attributes.  Each case pins the import behaviour and the
JSONL round trip the rest of the toolchain relies on."""

from __future__ import annotations

from repro.conformance.events import FINISH, START, EventLog


def _xes(traces):
    body = []
    for case, events in traces:
        attrs = (
            '<string key="concept:name" value="%s"/>' % case if case else ""
        )
        rendered = []
        for event in events:
            fields = []
            if "name" in event:
                fields.append(
                    '<string key="concept:name" value="%s"/>' % event["name"]
                )
            if "transition" in event:
                fields.append(
                    '<string key="lifecycle:transition" value="%s"/>'
                    % event["transition"]
                )
            if "time" in event:
                fields.append(
                    '<date key="time:timestamp" value="%s"/>' % event["time"]
                )
            if "outcome" in event:
                fields.append(
                    '<string key="outcome" value="%s"/>' % event["outcome"]
                )
            rendered.append("<event>%s</event>" % "".join(fields))
        body.append("<trace>%s%s</trace>" % (attrs, "".join(rendered)))
    return '<?xml version="1.0"?><log>%s</log>' % "".join(body)


class TestMissingAttributes:
    def test_event_without_concept_name_skipped(self):
        log = EventLog.from_xes(
            _xes(
                [
                    (
                        "c1",
                        [
                            {"transition": "complete", "time": "1.0"},
                            {"name": "a", "transition": "complete", "time": "2.0"},
                        ],
                    )
                ]
            )
        )
        assert log.activities() == ["a"]
        assert len(log) == 2  # synthesized start + finish

    def test_trace_without_name_gets_positional_case_id(self):
        log = EventLog.from_xes(
            _xes(
                [
                    (None, [{"name": "a", "transition": "complete", "time": "1.0"}]),
                    (None, [{"name": "b", "transition": "complete", "time": "1.0"}]),
                ]
            )
        )
        assert log.case_ids() == ["case-1", "case-2"]

    def test_missing_lifecycle_defaults_to_complete_with_synthesized_start(self):
        log = EventLog.from_xes(
            _xes([("c1", [{"name": "a", "time": "3.5"}])])
        )
        assert [(e.lifecycle, e.time) for e in log.events] == [
            (START, 3.5),
            (FINISH, 3.5),
        ]

    def test_unsupported_transitions_ignored(self):
        log = EventLog.from_xes(
            _xes(
                [
                    (
                        "c1",
                        [
                            {"name": "a", "transition": "start", "time": "1.0"},
                            {"name": "a", "transition": "suspend", "time": "2.0"},
                            {"name": "a", "transition": "resume", "time": "3.0"},
                            {"name": "a", "transition": "complete", "time": "4.0"},
                        ],
                    )
                ]
            )
        )
        assert [e.lifecycle for e in log.events] == [START, FINISH]


class TestTimestamps:
    def test_missing_timestamps_get_monotonic_ordinals(self):
        log = EventLog.from_xes(
            _xes(
                [
                    (
                        "c1",
                        [
                            {"name": "a", "transition": "complete"},
                            {"name": "b", "transition": "complete"},
                        ],
                    )
                ]
            )
        )
        times = [e.time for e in log.events if e.lifecycle == FINISH]
        assert times == sorted(times)
        assert len(set(times)) == len(times)

    def test_ordinal_clock_continues_after_explicit_timestamp(self):
        log = EventLog.from_xes(
            _xes(
                [
                    (
                        "c1",
                        [
                            {"name": "a", "transition": "complete", "time": "100.0"},
                            {"name": "b", "transition": "complete"},
                        ],
                    )
                ]
            )
        )
        a, b = (e for e in log.events if e.lifecycle == FINISH)
        assert a.time == 100.0
        assert b.time > a.time

    def test_unordered_timestamps_preserved_verbatim(self):
        # Importers must not silently re-sort: the statistics pass owns
        # interval semantics and tolerates disorder explicitly.
        log = EventLog.from_xes(
            _xes(
                [
                    (
                        "c1",
                        [
                            {"name": "b", "transition": "complete", "time": "9.0"},
                            {"name": "a", "transition": "complete", "time": "2.0"},
                        ],
                    )
                ]
            )
        )
        finishes = [(e.activity, e.time) for e in log.events if e.lifecycle == FINISH]
        assert finishes == [("b", 9.0), ("a", 2.0)]

    def test_iso8601_timestamps_parsed(self):
        log = EventLog.from_xes(
            _xes(
                [
                    (
                        "c1",
                        [
                            {
                                "name": "a",
                                "transition": "complete",
                                "time": "2026-08-08T12:00:00Z",
                            }
                        ],
                    )
                ]
            )
        )
        assert log.events[0].time > 1e9  # epoch seconds


class TestMultiCaseAndOutcomes:
    def test_interleaved_traces_stay_separate_cases(self):
        log = EventLog.from_xes(
            _xes(
                [
                    (
                        "c1",
                        [
                            {"name": "a", "transition": "start", "time": "0.0"},
                            {"name": "a", "transition": "complete", "time": "5.0"},
                        ],
                    ),
                    (
                        "c2",
                        [
                            {"name": "a", "transition": "start", "time": "1.0"},
                            {"name": "a", "transition": "complete", "time": "2.0"},
                        ],
                    ),
                ]
            )
        )
        cases = log.cases()
        assert set(cases) == {"c1", "c2"}
        assert all(len(events) == 2 for events in cases.values())

    def test_outcome_attribute_lands_on_finish_event(self):
        log = EventLog.from_xes(
            _xes(
                [
                    (
                        "c1",
                        [
                            {"name": "g", "transition": "start", "time": "0.0"},
                            {
                                "name": "g",
                                "transition": "complete",
                                "time": "1.0",
                                "outcome": "T",
                            },
                        ],
                    )
                ]
            )
        )
        start, finish = log.events
        assert start.outcome is None
        assert finish.outcome == "T"

    def test_jsonl_round_trip_preserves_imported_log(self):
        xes = _xes(
            [
                (
                    "c1",
                    [
                        {"name": "g", "transition": "start", "time": "0.0"},
                        {
                            "name": "g",
                            "transition": "complete",
                            "time": "1.0",
                            "outcome": "F",
                        },
                        {"name": "b", "transition": "complete"},
                    ],
                ),
                (None, [{"name": "a", "time": "7.0"}]),
            ]
        )
        imported = EventLog.from_xes(xes)
        assert EventLog.from_jsonl(imported.to_jsonl()) == imported

    def test_invalid_xml_raises_value_error(self):
        import pytest

        with pytest.raises(ValueError):
            EventLog.from_xes("<log><trace>")

    def test_imported_xes_mines_like_jsonl(self, tmp_path):
        # End to end: the same log mined via the XES path and the JSONL
        # path produces identical statistics.
        from repro.discover.ingest import load_log
        from repro.discover.stats import LogStatistics

        xes = _xes(
            [
                (
                    "c%d" % index,
                    [
                        {"name": "a", "transition": "start", "time": "0.0"},
                        {"name": "a", "transition": "complete", "time": "1.0"},
                        {"name": "b", "transition": "start", "time": "2.0"},
                        {"name": "b", "transition": "complete", "time": "3.0"},
                    ],
                )
                for index in range(6)
            ]
        )
        xes_path = tmp_path / "log.xes"
        xes_path.write_text(xes, encoding="utf-8")
        imported = load_log(str(xes_path))
        jsonl_path = tmp_path / "log.jsonl"
        imported.save_jsonl(str(jsonl_path))
        via_xes = LogStatistics.from_log(imported)
        via_jsonl = LogStatistics.from_log(load_log(str(jsonl_path)))
        assert via_xes.ordered == via_jsonl.ordered == {("a", "b"): 6}
