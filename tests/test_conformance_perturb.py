"""Perturbed logs: every injected defect is flagged with the right code.

The corpus is the ground truth for the monitor's recall: each of the
seven perturbation kinds declares the ``CONF00x`` code it must trigger,
and both constraint sets (full ASC and minimal) must reach the same
per-case verdict on every corpus entry.
"""

from __future__ import annotations

import pytest

from repro.conformance import (
    EXPECTED_CODES,
    PERTURBATION_KINDS,
    EventLog,
    PerturbationError,
    log_from_traces,
    perturb,
    perturbation_corpus,
    program_from_weave,
    replay,
    verdicts_agree,
)
from repro.lint import Severity
from repro.scheduler.engine import ConstraintScheduler


@pytest.fixture(scope="module")
def setup(purchasing_process, purchasing_weave):
    traces = {}
    for case, outcomes in (("case-1", {}), ("case-2", {"if_au": "F"})):
        run = ConstraintScheduler(purchasing_process, purchasing_weave.minimal).run(
            outcomes=outcomes
        )
        traces[case] = run.trace
    log = log_from_traces(traces)
    minimal = program_from_weave(purchasing_weave, which="minimal")
    full = program_from_weave(purchasing_weave, which="full")
    return log, minimal, full


@pytest.fixture(scope="module")
def corpus(setup):
    log, minimal, _full = setup
    return perturbation_corpus(
        log, constraints=minimal.constraints, guards=minimal.guards
    )


class TestCorpusShape:
    def test_every_kind_has_an_expected_code(self):
        assert set(EXPECTED_CODES) == set(PERTURBATION_KINDS)

    def test_purchasing_log_supports_at_least_five_kinds(self, corpus):
        kinds = {perturbation.kind for _log, perturbation in corpus}
        assert len(kinds) >= 5

    def test_deterministic_given_seed(self, setup):
        log, minimal, _full = setup
        first, _ = perturb(log, "swap", constraints=minimal.constraints, seed=7)
        second, _ = perturb(log, "swap", constraints=minimal.constraints, seed=7)
        assert first == second

    def test_different_seed_may_pick_other_site(self, setup):
        log, minimal, _full = setup
        logs = {
            perturb(log, "duplicate", seed=seed)[0].to_jsonl() for seed in range(6)
        }
        assert len(logs) > 1

    def test_unknown_kind_rejected(self, setup):
        log, _minimal, _full = setup
        with pytest.raises(PerturbationError, match="unknown perturbation kind"):
            perturb(log, "scramble")

    def test_impossible_kind_raises(self, setup):
        _log, minimal, _full = setup
        with pytest.raises(PerturbationError):
            perturb(EventLog(), "truncate", constraints=minimal.constraints)


class TestDetection:
    def test_each_perturbation_flagged_with_expected_code(self, setup, corpus):
        _log, minimal, _full = setup
        assert corpus, "corpus is empty"
        for perturbed_log, perturbation in corpus:
            report = replay(perturbed_log, minimal)
            counts = report.counts_by_code()
            assert counts[perturbation.expected_code] >= 1, (
                "%s (%s) not flagged: %s"
                % (perturbation.kind, perturbation.description, counts)
            )

    def test_harmful_kinds_violate_the_perturbed_case(self, setup, corpus):
        _log, minimal, _full = setup
        for perturbed_log, perturbation in corpus:
            if perturbation.kind == "truncate":
                continue
            report = replay(perturbed_log, minimal)
            assert perturbation.case in report.violated_cases, perturbation

    def test_truncate_is_benign_residue_only(self, setup, corpus):
        _log, minimal, _full = setup
        truncated = [
            (log, p) for log, p in corpus if p.kind == "truncate"
        ]
        assert truncated
        for perturbed_log, perturbation in truncated:
            report = replay(perturbed_log, minimal)
            assert perturbation.case not in report.violated_cases
            assert report.counts_by_code()["CONF007"] >= 1
            assert report.exit_code(Severity.WARNING) == 0
            assert report.exit_code(Severity.INFO) == 1

    def test_untouched_cases_stay_conformant(self, setup, corpus):
        _log, minimal, _full = setup
        for perturbed_log, perturbation in corpus:
            if perturbation.kind in ("truncate", "alien"):
                continue
            report = replay(perturbed_log, minimal)
            verdicts = report.case_verdicts()
            for case, conformant in verdicts.items():
                if case != perturbation.case:
                    assert conformant, (perturbation, case)

    def test_minimal_and_full_agree_on_every_entry(self, setup, corpus):
        _log, minimal, full = setup
        for perturbed_log, perturbation in corpus:
            minimal_report = replay(perturbed_log, minimal)
            full_report = replay(perturbed_log, full)
            assert verdicts_agree(minimal_report, full_report), perturbation
            assert minimal_report.checks <= full_report.checks

    def test_naive_and_indexed_agree_on_every_entry(self, setup, corpus):
        _log, minimal, _full = setup
        for perturbed_log, perturbation in corpus:
            fast = replay(perturbed_log, minimal, indexed=True)
            slow = replay(perturbed_log, minimal, indexed=False)
            assert verdicts_agree(fast, slow), perturbation
            assert fast.checks <= slow.checks

    def test_swap_counts_a_category(self, setup):
        log, minimal, _full = setup
        perturbed_log, _ = perturb(log, "swap", constraints=minimal.constraints)
        report = replay(perturbed_log, minimal)
        assert sum(report.violations_by_category.values()) >= 1
