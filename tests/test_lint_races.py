"""The static race detector, incl. the paper-level properties:

* the Purchasing ASC (and its minimal set) are race-free;
* deleting any data-dependency edge from the minimal set introduces a
  race — the data dependencies are exactly the synchronization that
  protects shared variables;
* minimization preserves race-freedom in both directions (hypothesis).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.conditions import Cond
from repro.core.constraints import Constraint, SynchronizationConstraintSet
from repro.core.minimize import minimize
from repro.dscl.ast import Exclusive, StateRef
from repro.model.activity import ActivityState
from repro.lint import (
    READ_WRITE,
    WRITE_WRITE,
    access_maps_from_process,
    find_races,
    find_races_from_accesses,
    ordered_pairs,
)

from .strategies import constraint_sets


def _sc(constraints, activities=("a", "b", "c"), guards=None):
    return SynchronizationConstraintSet(
        activities=activities, constraints=constraints, guards=guards or {}
    )


class TestFindRaces:
    def test_unordered_writers_race(self):
        sc = _sc([])
        races = find_races(sc, writes={"x": {"a", "b"}})
        assert len(races) == 1
        assert races[0].kind == WRITE_WRITE
        assert (races[0].first, races[0].second) == ("a", "b")

    def test_ordering_removes_race(self):
        sc = _sc([Constraint("a", "b")])
        assert find_races(sc, writes={"x": {"a", "b"}}) == []

    def test_transitive_ordering_removes_race(self):
        sc = _sc([Constraint("a", "c"), Constraint("c", "b")])
        assert find_races(sc, writes={"x": {"a", "b"}}) == []

    def test_read_write_race(self):
        sc = _sc([])
        races = find_races(sc, reads={"x": {"a"}}, writes={"x": {"b"}})
        assert len(races) == 1
        assert races[0].kind == READ_WRITE
        assert races[0].writer == "b"

    def test_two_readers_never_race(self):
        sc = _sc([])
        assert find_races(sc, reads={"x": {"a", "b"}}) == []

    def test_contradictory_guards_do_not_race(self):
        guards = {"a": {Cond("g", "T")}, "b": {Cond("g", "F")}}
        sc = _sc([], activities=("g", "a", "b"), guards=guards)
        assert find_races(sc, writes={"x": {"a", "b"}}) == []

    def test_same_branch_still_races(self):
        guards = {"a": {Cond("g", "T")}, "b": {Cond("g", "T")}}
        sc = _sc([], activities=("g", "a", "b"), guards=guards)
        assert len(find_races(sc, writes={"x": {"a", "b"}})) == 1

    def test_exclusive_serializes_pair(self):
        sc = _sc([])
        exclusive = Exclusive(
            StateRef("a", ActivityState.RUN), StateRef("b", ActivityState.RUN)
        )
        assert find_races(sc, writes={"x": {"a", "b"}}, exclusives=[exclusive]) == []

    def test_conditional_edge_does_not_order(self):
        # a ->T b orders the pair only on the T branch; b is unguarded, so
        # on the F branch both run unordered: that is a race.
        sc = _sc([Constraint("g", "a"), Constraint("a", "b", "T")],
                 activities=("g", "a", "b"))
        assert len(find_races(sc, writes={"x": {"a", "b"}})) == 1

    def test_unknown_activities_ignored(self):
        sc = _sc([])
        assert find_races(sc, writes={"x": {"a", "zz"}}) == []

    def test_write_write_dedups_read_write(self):
        # both write AND read x: report one write/write race, not two.
        sc = _sc([])
        races = find_races(
            sc, reads={"x": {"a", "b"}}, writes={"x": {"a", "b"}}
        )
        assert [race.kind for race in races] == [WRITE_WRITE]

    def test_deterministic_order(self):
        sc = _sc([], activities=("a", "b", "c", "d"))
        races = find_races(sc, writes={"x": {"a", "b"}, "y": {"c", "d"}})
        assert [race.variable for race in races] == ["x", "y"]


class TestOrderedPairs:
    def test_includes_transitive(self):
        sc = _sc([Constraint("a", "b"), Constraint("b", "c")])
        pairs = ordered_pairs(sc)
        assert ("a", "c") in pairs

    def test_conditional_fact_not_ordered(self):
        sc = _sc([Constraint("g", "a"), Constraint("a", "b", "T")],
                 activities=("g", "a", "b"))
        assert ("a", "b") not in ordered_pairs(sc)

    def test_guard_implied_condition_is_ordered(self):
        # b runs only when a = T, and a ->T b: on every execution where b
        # runs, the edge is active -- the pair is ordered.
        sc = _sc(
            [Constraint("g", "a"), Constraint("a", "b", "T")],
            activities=("g", "a", "b"),
            guards={"b": {Cond("a", "T")}},
        )
        assert ("a", "b") in ordered_pairs(sc)


class TestPurchasingRaceFreedom:
    def test_asc_is_race_free(self, purchasing_process, purchasing_weave):
        races = find_races(
            purchasing_weave.asc,
            process=purchasing_process,
            exclusives=purchasing_weave.exclusives,
        )
        assert races == []

    def test_minimal_is_race_free(self, purchasing_process, purchasing_weave):
        races = find_races(
            purchasing_weave.minimal,
            process=purchasing_process,
            exclusives=purchasing_weave.exclusives,
        )
        assert races == []

    def test_deleting_any_data_edge_introduces_race(
        self, purchasing_process, purchasing_dependencies, purchasing_weave
    ):
        minimal = purchasing_weave.minimal
        data_edges = {
            (dep.source, dep.target) for dep in purchasing_dependencies.data
        }
        minimal_data = [
            c for c in minimal.constraints if (c.source, c.target) in data_edges
        ]
        assert minimal_data, "minimal set should retain data-dependency edges"
        for removed in minimal_data:
            pruned = SynchronizationConstraintSet(
                activities=minimal.activities,
                constraints=[c for c in minimal.constraints if c != removed],
                guards=minimal.guards,
                domains=minimal.domains,
            )
            races = find_races(
                pruned,
                process=purchasing_process,
                exclusives=purchasing_weave.exclusives,
            )
            assert races, "deleting %s should introduce a race" % (removed,)


@st.composite
def sets_with_accesses(draw):
    """A random constraint set plus random read/write maps over its nodes."""
    sc = draw(constraint_sets(min_nodes=3, max_nodes=7, max_edges=10))
    names = sorted(sc.activities)
    variables = ["x", "y"]
    reads = {}
    writes = {}
    for variable in variables:
        readers = draw(st.lists(st.sampled_from(names), max_size=3, unique=True))
        writers = draw(st.lists(st.sampled_from(names), max_size=3, unique=True))
        if readers:
            reads[variable] = set(readers)
        if writers:
            writes[variable] = set(writers)
    return sc, reads, writes


class TestMinimizationPreservesRaces:
    @given(sets_with_accesses())
    @settings(max_examples=60, deadline=None)
    def test_minimal_races_iff_full_races(self, drawn):
        sc, reads, writes = drawn
        minimal = minimize(sc)
        full_races = find_races_from_accesses(sc, reads, writes)
        minimal_races = find_races_from_accesses(minimal, reads, writes)
        # Minimization preserves guard-aware transitive equivalence, so the
        # ordered pairs -- and therefore the races -- are identical.
        assert full_races == minimal_races
