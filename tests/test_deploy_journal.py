"""`{"rt": "dep"}` control records through the journal and mining paths.

A swap journal must (a) round-trip its deploy frames through
`read_journal` in both strict and ingestion modes, and (b) stay
invisible to `repro.discover` — dep records carry no case events, so
mining a post-swap journal must count exactly the events it would have
counted without the swap.
"""

from __future__ import annotations

import json

import pytest

from repro.core.constraints import Constraint
from repro.deploy import MigrationEngine, ProgramRegistry, execute_swap
from repro.discover import load_log, sniff_format
from repro.runtime.coordinator import Runtime
from repro.runtime.journal import JournalError, read_journal

REDUNDANT_EDGE = Constraint("recClient_po", "invPurchase_po")


def _plans(count):
    return {
        "case-%03d" % i: {"if_au": "T" if i % 2 == 0 else "F"}
        for i in range(count)
    }


@pytest.fixture()
def swap_journal(purchasing_weave, tmp_path):
    """A completed 12-case run with one committed v1 -> v2 swap."""
    registry = ProgramRegistry.from_weave(purchasing_weave)
    result = registry.redeploy(removed=(REDUNDANT_EDGE,))
    path = str(tmp_path / "journal.jsonl")
    runtime = Runtime(registry.version(1).program, journal_path=path)
    runtime.submit_batch(_plans(12))
    runtime.run_until_completed(4)
    plan = execute_swap(
        runtime, MigrationEngine(registry.version(1), result.version)
    )
    report = runtime.run()
    return path, plan, report


class TestRoundTrip:
    def test_deploy_frames_survive_strict_reads(self, swap_journal):
        path, plan, report = swap_journal
        state = read_journal(path)
        kinds = [record["kind"] for record in state.deploys]
        assert kinds[0] == "begin"
        assert kinds[-1] == "commit"
        assert kinds.count("assign") == len(plan.decisions)
        assert state.current_version() == 2
        assert state.pending_deploy() is None
        assert state.version_map() == dict(report.versions)

    def test_assigns_set_case_version_and_migration(self, swap_journal):
        path, plan, _ = swap_journal
        state = read_journal(path)
        for decision in plan.decisions:
            journaled = state.cases[decision.case]
            assert journaled.version == decision.version
            assert journaled.migration == decision.action
        untouched = set(state.cases) - {d.case for d in plan.decisions}
        assert all(state.cases[c].migration is None for c in untouched)

    def test_non_strict_read_agrees(self, swap_journal):
        path, _, report = swap_journal
        strict = read_journal(path, strict=True)
        loose = read_journal(path, strict=False)
        assert loose.deploys == strict.deploys
        assert loose.version_map() == dict(report.versions)

    def test_unknown_dep_kind_strictness(self, swap_journal, tmp_path):
        path, _, _ = swap_journal
        mangled = tmp_path / "mangled.jsonl"
        content = open(path).read()
        mangled.write_text(
            content + json.dumps({"rt": "dep", "kind": "rollback"}) + "\n"
        )
        with pytest.raises(JournalError, match="unknown dep record kind"):
            read_journal(str(mangled))
        state = read_journal(str(mangled), strict=False)
        assert all(r["kind"] != "rollback" for r in state.deploys)

    def test_stray_assign_strictness(self, swap_journal, tmp_path):
        path, _, _ = swap_journal
        mangled = tmp_path / "stray.jsonl"
        stray = {"rt": "dep", "kind": "assign", "case": "ghost",
                 "version": 2, "action": "upgrade", "time": 0.0}
        mangled.write_text(open(path).read() + json.dumps(stray) + "\n")
        with pytest.raises(JournalError, match="unknown *case|unknown\n *case"):
            read_journal(str(mangled))
        state = read_journal(str(mangled), strict=False)
        assert "ghost" not in state.cases


class TestDiscoverIngestion:
    def test_swap_journal_sniffs_as_a_journal(self, swap_journal):
        path, _, _ = swap_journal
        assert sniff_format(path) == "journal"

    def test_dep_records_do_not_miscount_events(
        self, swap_journal, purchasing_weave, tmp_path
    ):
        path, _, _ = swap_journal
        # Reference: the identical run without any swap.
        registry = ProgramRegistry.from_weave(purchasing_weave)
        plain_path = str(tmp_path / "plain.jsonl")
        runtime = Runtime(registry.version(1).program, journal_path=plain_path)
        runtime.submit_batch(_plans(12))
        runtime.run()

        swapped = load_log(path)
        plain = load_log(plain_path)
        assert len(swapped.events) == len(plain.events)
        assert set(swapped.cases()) == set(plain.cases())
        # The swap was behavior-preserving, so per-case event multisets
        # match the no-swap run exactly.
        for case, events in plain.cases().items():
            swapped_case = swapped.cases()[case]
            assert sorted((e.activity, e.lifecycle) for e in swapped_case) == \
                sorted((e.activity, e.lifecycle) for e in events)

    def test_mining_a_swap_journal_round_trips(self, swap_journal):
        from repro.discover import LogStatistics, mine

        path, _, _ = swap_journal
        log = load_log(path)
        mined = mine(LogStatistics.from_log(log))
        assert mined.candidates
