"""Tests for the Petri-net backend: nets, reachability, soundness,
constraint-set translation."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.closure import Semantics
from repro.core.constraints import Constraint, SynchronizationConstraintSet
from repro.core.minimize import minimize
from repro.errors import NotEnabledError, PetriNetError
from repro.petri.from_constraints import constraint_set_to_petri_net
from repro.petri.net import Marking, PetriNet
from repro.petri.reachability import (
    build_reachability_graph,
    can_reach,
    find_deadlocks,
    is_bounded,
)
from repro.petri.soundness import check_soundness, is_workflow_net, workflow_places
from tests.strategies import constraint_sets

SLOW = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def simple_net() -> PetriNet:
    net = PetriNet("simple")
    net.add_place("i")
    net.add_place("m")
    net.add_place("o")
    net.add_transition("t1")
    net.add_transition("t2")
    net.add_arc("i", "t1")
    net.add_arc("t1", "m")
    net.add_arc("m", "t2")
    net.add_arc("t2", "o")
    return net


class TestMarking:
    def test_immutability(self):
        marking = Marking({"p": 1})
        with pytest.raises(AttributeError):
            marking.x = 1  # type: ignore[attr-defined]

    def test_add_remove(self):
        marking = Marking({"p": 1})
        assert marking.add("p").count("p") == 2
        assert marking.remove("p").count("p") == 0
        with pytest.raises(PetriNetError):
            marking.remove("p", 2)

    def test_zero_counts_dropped(self):
        assert Marking({"p": 0}).places() == []

    def test_covers(self):
        assert Marking({"p": 2}).covers(Marking({"p": 1}))
        assert not Marking({"p": 1}).covers(Marking({"q": 1}))

    def test_hash_and_eq(self):
        assert Marking({"p": 1}) == Marking({"p": 1})
        assert len({Marking({"p": 1}), Marking({"p": 1})}) == 1


class TestFiring:
    def test_enabled_and_fire(self):
        net = simple_net()
        start = Marking({"i": 1})
        assert net.is_enabled("t1", start)
        assert not net.is_enabled("t2", start)
        after = net.fire("t1", start)
        assert after == Marking({"m": 1})

    def test_fire_disabled_raises(self):
        net = simple_net()
        with pytest.raises(NotEnabledError):
            net.fire("t2", Marking({"i": 1}))

    def test_fire_sequence(self):
        net = simple_net()
        final = net.fire_sequence(["t1", "t2"], Marking({"i": 1}))
        assert final == Marking({"o": 1})

    def test_weighted_arcs(self):
        net = PetriNet()
        net.add_place("p")
        net.add_place("q")
        net.add_transition("t")
        net.add_arc("p", "t", weight=2)
        net.add_arc("t", "q")
        assert not net.is_enabled("t", Marking({"p": 1}))
        assert net.is_enabled("t", Marking({"p": 2}))

    def test_arc_must_be_bipartite(self):
        net = simple_net()
        with pytest.raises(PetriNetError):
            net.add_arc("i", "o")
        with pytest.raises(PetriNetError):
            net.add_arc("t1", "t2")


class TestReachability:
    def test_simple_graph(self):
        net = simple_net()
        graph = build_reachability_graph(net, Marking({"i": 1}))
        assert len(graph) == 3
        assert not graph.truncated
        assert graph.fired_transitions() == {"t1", "t2"}

    def test_deadlocks(self):
        net = simple_net()
        graph = build_reachability_graph(net, Marking({"i": 1}))
        deadlocks = find_deadlocks(net, graph)
        assert deadlocks == [Marking({"o": 1})]

    def test_can_reach(self):
        net = simple_net()
        graph = build_reachability_graph(net, Marking({"i": 1}))
        reaching = can_reach(net, graph, Marking({"o": 1}))
        assert reaching == {0, 1, 2}

    def test_state_limit_truncation(self):
        net = PetriNet()
        net.add_place("p")
        net.add_transition("t")
        net.add_arc("p", "t")
        net.add_arc("t", "p", weight=2)  # unbounded growth
        graph = build_reachability_graph(net, Marking({"p": 1}), state_limit=10)
        assert graph.truncated

    def test_boundedness(self):
        net = simple_net()
        graph = build_reachability_graph(net, Marking({"i": 1}))
        assert is_bounded(graph, 1)


class TestWorkflowNet:
    def test_simple_is_workflow_net(self):
        assert is_workflow_net(simple_net())
        assert workflow_places(simple_net()) == ("i", "o")

    def test_two_sources_is_not(self):
        net = simple_net()
        net.add_place("i2")
        net.add_arc("i2", "t1")
        assert not is_workflow_net(net)

    def test_disconnected_node_is_not(self):
        net = simple_net()
        net.add_transition("island")
        net.add_place("island_in")
        net.add_arc("island_in", "island")
        assert not is_workflow_net(net)

    def test_soundness_of_simple(self):
        report = check_soundness(simple_net())
        assert report.is_sound
        assert report.reachable_markings == 3

    def test_unsound_deadlocking_net(self):
        net = simple_net()
        net.add_place("never")
        net.add_arc("never", "t2")  # t2 now requires an unmarked place
        # Repair connectivity so the structural check passes: feed `never`
        # from nothing is impossible; instead expect not-workflow-net.
        report = check_soundness(net)
        assert not report.is_sound


class TestConstraintTranslation:
    def test_purchasing_minimal_net_sound(self, purchasing_weave):
        net, initial = constraint_set_to_petri_net(purchasing_weave.minimal)
        assert initial == Marking({"i": 1})
        report = check_soundness(net)
        assert report.is_sound
        assert report.reachable_markings == 166

    def test_full_asc_net_sound_same_state_space(self, purchasing_weave):
        net, _ = constraint_set_to_petri_net(purchasing_weave.asc)
        report = check_soundness(net)
        assert report.is_sound
        # The redundant constraints do not change behavior: identical
        # reachable-marking count as the minimal net.
        assert report.reachable_markings == 166

    def test_cyclic_set_is_unsound(self):
        sc = SynchronizationConstraintSet(
            ["a", "b", "c"],
            constraints=[Constraint("a", "b"), Constraint("b", "c"), Constraint("c", "a")],
        )
        net, _ = constraint_set_to_petri_net(sc)
        report = check_soundness(net)
        assert not report.is_sound

    def test_rejects_externals(self, purchasing_weave):
        with pytest.raises(PetriNetError):
            constraint_set_to_petri_net(purchasing_weave.merged)

    def test_rejects_multi_guard_activity(self):
        from repro.analysis.conditions import Cond

        sc = SynchronizationConstraintSet(
            ["g1", "g2", "x"],
            constraints=[Constraint("g1", "x", "T"), Constraint("g2", "x", "T")],
            guards={"x": frozenset({Cond("g1", "T"), Cond("g2", "T")})},
        )
        with pytest.raises(PetriNetError):
            constraint_set_to_petri_net(sc)

    def test_branch_taken_vs_skipped(self, purchasing_weave):
        """On the F branch the net must still complete (dead-path
        elimination through the skip transitions)."""
        net, initial = constraint_set_to_petri_net(purchasing_weave.minimal)
        graph = build_reachability_graph(net, initial)
        # Both outcome transitions of the guard fire somewhere.
        fired = graph.fired_transitions()
        assert "exec__if_au__T" in fired
        assert "exec__if_au__F" in fired
        assert "skip__t__set_oi" in fired  # skipped on the T branch
        assert "skip__t__invPurchase_po" in fired  # skipped on the F branch

    @SLOW
    @given(constraint_sets(max_nodes=6, max_edges=9))
    def test_random_acyclic_sets_translate_to_sound_nets(self, sc):
        net, _ = constraint_set_to_petri_net(sc)
        report = check_soundness(net, state_limit=50_000)
        assert report.is_sound, report.problems

    @SLOW
    @given(constraint_sets(max_nodes=6, max_edges=9))
    def test_minimization_preserves_soundness(self, sc):
        minimal = minimize(sc, Semantics.GUARD_AWARE)
        net, _ = constraint_set_to_petri_net(minimal)
        assert check_soundness(net, state_limit=50_000).is_sound
