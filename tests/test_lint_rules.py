"""The built-in rules and the engine running them."""

from __future__ import annotations

import pytest

import repro.conformance.rules  # noqa: F401  (registers the CONF00x rules)
import repro.deploy.rules  # noqa: F401  (registers the DEP00x rules)
import repro.objects.rules  # noqa: F401  (registers the OBJ00x rules)
import repro.runtime.rules  # noqa: F401  (registers the RT00x rules)
from repro.analysis.conditions import Cond, ConditionDomains
from repro.core.constraints import Constraint, SynchronizationConstraintSet
from repro.dscl.ast import Exclusive, StateRef
from repro.lint import (
    Baseline,
    LintConfig,
    LintContext,
    Severity,
    all_rules,
    get_rule,
    rule,
    run_lint,
)
from repro.model.activity import ActivityState

ALL_CODES = (
    "CONF001",
    "CONF002",
    "CONF003",
    "CONF004",
    "CONF005",
    "CONF006",
    "CONF007",
    "DEP001",
    "DEP002",
    "DEP003",
    "DEP004",
    "DEP005",
    "DIS001",
    "DIS002",
    "DIS003",
    "DIS004",
    "DIS005",
    "OBJ001",
    "OBJ002",
    "OBJ003",
    "RED001",
    "RT001",
    "RT002",
    "RT003",
    "RT004",
    "RT005",
    "RT006",
    "SPEC001",
    "SPEC002",
    "SVC001",
    "SVC002",
    "SYNC001",
    "SYNC002",
    "SYNC003",
    "SYNC004",
    "SYNC005",
    "SYNC006",
    "VER001",
    "VER002",
    "VER003",
    "VER004",
    "VER005",
)


def _context(constraints, activities=("a", "b", "c"), **kwargs):
    sc = SynchronizationConstraintSet(
        activities=activities,
        constraints=constraints,
        guards=kwargs.pop("guards", None),
        domains=kwargs.pop("domains", None),
    )
    return LintContext.from_constraints(sc, **kwargs)


class TestRegistry:
    def test_all_rules_registered(self):
        assert tuple(r.code for r in all_rules()) == ALL_CODES

    def test_get_rule(self):
        assert get_rule("SYNC001").severity is Severity.WARNING
        assert get_rule("SYNC003").severity is Severity.ERROR
        assert get_rule("RED001").severity is Severity.INFO
        with pytest.raises(KeyError, match="unknown rule code"):
            get_rule("NOPE999")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="registered twice"):
            rule("SYNC001", "dup", "dup", Severity.INFO)(lambda context: [])


class TestLintConfig:
    def test_default_runs_everything(self):
        config = LintConfig()
        assert all(config.enabled(code) for code in ALL_CODES)

    def test_select_exact_and_prefix(self):
        config = LintConfig.from_codes(select=["SYNC001", "SVC"])
        assert config.enabled("SYNC001")
        assert config.enabled("SVC002")
        assert not config.enabled("SYNC002")
        assert not config.enabled("RED001")

    def test_ignore_wins_over_select(self):
        config = LintConfig.from_codes(select=["SYNC"], ignore=["SYNC002"])
        assert config.enabled("SYNC001")
        assert not config.enabled("SYNC002")

    def test_codes_are_case_normalized(self):
        config = LintConfig.from_codes(select=["sync001"])
        assert config.enabled("SYNC001")


class TestSyncRules:
    def test_sync003_cycle_is_error(self):
        context = _context([Constraint("a", "b"), Constraint("b", "a")])
        report = run_lint(context, LintConfig.from_codes(select=["SYNC003"]))
        (finding,) = report.findings
        assert finding.code == "SYNC003"
        assert finding.severity is Severity.ERROR
        assert report.has_errors

    def test_cycle_suppresses_order_dependent_rules(self):
        # On a cyclic set, ordering is undefined: the race/redundancy rules
        # bail instead of reporting nonsense.
        context = _context([Constraint("a", "b"), Constraint("b", "a")])
        report = run_lint(context)
        assert {finding.code for finding in report.findings} == {"SYNC003"}

    def test_sync004_unsatisfiable_guard(self):
        guards = {"b": {Cond("g", "T"), Cond("g", "F")}}
        context = _context(
            [Constraint("g", "b")], activities=("g", "b"), guards=guards
        )
        report = run_lint(context, LintConfig.from_codes(select=["SYNC004"]))
        (finding,) = report.findings
        assert finding.severity is Severity.ERROR
        assert finding.location.name == "b"

    def test_sync005_vacuous_exclusive_is_info(self):
        exclusive = Exclusive(
            StateRef("a", ActivityState.RUN), StateRef("b", ActivityState.RUN)
        )
        context = _context([Constraint("a", "b")], exclusives=[exclusive])
        report = run_lint(context, LintConfig.from_codes(select=["SYNC005"]))
        (finding,) = report.findings
        assert finding.severity is Severity.INFO
        assert report.exit_code() == 0  # info never gates by default

    def test_sync006_undeclared_outcome(self):
        domains = ConditionDomains()
        domains.declare("g", ["T", "F"])
        context = _context(
            [Constraint("g", "b", "MAYBE")],
            activities=("g", "b"),
            domains=domains,
        )
        report = run_lint(context, LintConfig.from_codes(select=["SYNC006"]))
        (finding,) = report.findings
        assert "MAYBE" in finding.message
        assert finding.severity is Severity.WARNING

    def test_sync001_on_undersynchronized_set(self, purchasing_process):
        # Drop all constraints: every def-use pair races.
        sc = SynchronizationConstraintSet(
            activities=[a.name for a in purchasing_process.activities]
        )
        context = LintContext.from_constraints(sc, process=purchasing_process)
        report = run_lint(context, LintConfig.from_codes(select=["SYNC"]))
        assert report.by_code("SYNC002")  # read/write races abound
        for finding in report.by_code("SYNC002"):
            assert finding.severity is Severity.WARNING
            assert finding.fix is not None


class TestRedundancyRule:
    def test_red001_reports_covering_path(self):
        context = _context(
            [Constraint("a", "b"), Constraint("b", "c"), Constraint("a", "c")]
        )
        report = run_lint(context, LintConfig.from_codes(select=["RED001"]))
        (finding,) = report.findings
        assert finding.location.name == "a -> c"
        assert any("a -> b -> c" in item for item in finding.evidence)

    def test_red001_counts_match_minimization(self, purchasing_weave):
        context = LintContext.from_weave(purchasing_weave)
        report = run_lint(context, LintConfig.from_codes(select=["RED001"]))
        expected = len(purchasing_weave.asc) - len(purchasing_weave.minimal)
        assert len(report.findings) == expected

    def test_red001_findings_carry_dscl_spans(self, purchasing_weave):
        context = LintContext.from_weave(purchasing_weave)
        report = run_lint(context, LintConfig.from_codes(select=["RED001"]))
        spanned = [f for f in report.findings if f.location.span is not None]
        assert spanned, "program-backed findings should map to DSCL lines"
        first, last = spanned[0].location.span
        assert 1 <= first <= last


class TestSpecificationRules:
    def test_spec001_reports_figure2_overspecified_edge(
        self, purchasing_weave, purchasing_constructs
    ):
        context = LintContext.from_weave(
            purchasing_weave, construct=purchasing_constructs
        )
        report = run_lint(context, LintConfig.from_codes(select=["SPEC"]))
        names = {f.location.name for f in report.by_code("SPEC001")}
        assert "invProduction_po -> invProduction_ss" in names
        assert report.by_code("SPEC002") == ()

    def test_spec002_reports_missing_ordering(
        self, purchasing_weave, purchasing_constructs
    ):
        asc = purchasing_weave.asc
        augmented = SynchronizationConstraintSet(
            activities=asc.activities,
            constraints=list(asc.constraints)
            + [Constraint("invShip_po", "invPurchase_po")],
            guards=asc.guards,
            domains=asc.domains,
        )
        context = LintContext.from_constraints(
            augmented,
            process=purchasing_weave.process,
            construct=purchasing_constructs,
        )
        report = run_lint(context, LintConfig.from_codes(select=["SPEC002"]))
        names = {f.location.name for f in report.findings}
        assert "invShip_po -> invPurchase_po" in names
        assert report.has_errors

    def test_spec_rules_skip_without_construct(self, purchasing_weave):
        context = LintContext.from_weave(purchasing_weave)
        report = run_lint(context, LintConfig.from_codes(select=["SPEC"]))
        assert report.findings == ()


class TestEngine:
    def test_baseline_suppression(self):
        context = _context([Constraint("a", "b"), Constraint("b", "a")])
        first = run_lint(context)
        assert first.findings
        baseline = Baseline.from_diagnostics(first.findings)
        second = run_lint(context, LintConfig(baseline=baseline))
        assert second.findings == ()
        assert len(second.suppressed) == len(first.findings)
        assert second.exit_code() == 0

    def test_rules_run_recorded(self):
        context = _context([])
        report = run_lint(context, LintConfig.from_codes(select=["SYNC"]))
        assert all(code.startswith("SYNC") for code in report.rules_run)
        assert "SYNC001" in report.rules_run

    def test_context_ordered_helper(self):
        context = _context([Constraint("a", "b"), Constraint("b", "c")])
        assert context.ordered("a", "c")
        assert not context.ordered("c", "a")

    def test_minimal_not_computed_for_cyclic_sets(self):
        context = _context([Constraint("a", "b"), Constraint("b", "a")])
        assert context.has_cycles
        assert context.minimal is None
