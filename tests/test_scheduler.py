"""Tests for the scheduling engine, services, metrics and baseline."""

from __future__ import annotations

import pytest

from repro.core.constraints import Constraint, SynchronizationConstraintSet
from repro.dscl.parser import parse
from repro.errors import DeadlockError, ProtocolViolation, SchedulingError
from repro.model.builder import ProcessBuilder
from repro.scheduler.baseline import execute_constructs
from repro.scheduler.engine import ConstraintScheduler
from repro.scheduler.metrics import (
    average_concurrency,
    concurrency_profile,
    max_concurrency,
    serialization_overhead,
)
from repro.scheduler.services import ServiceSimulator


class TestServiceSimulator:
    def test_async_callback_after_all_requests(self, purchasing_process):
        simulator = ServiceSimulator(purchasing_process)
        assert simulator.invoke("Purchase", "Purchase1", 1.0) is None
        callback = simulator.invoke("Purchase", "Purchase2", 3.0)
        assert callback == 4.0  # latency 1.0 after the last request
        assert simulator.message_available("Purchase", 4.0)
        assert not simulator.message_available("Purchase", 3.5)

    def test_sequential_violation_strict(self, purchasing_process):
        simulator = ServiceSimulator(purchasing_process, strict=True)
        with pytest.raises(ProtocolViolation):
            simulator.invoke("Purchase", "Purchase2", 0.0)

    def test_sequential_violation_recorded_when_lenient(self, purchasing_process):
        simulator = ServiceSimulator(purchasing_process, strict=False)
        simulator.invoke("Purchase", "Purchase2", 0.0)
        assert simulator.violations()
        assert "Purchase2" in simulator.violations()[0]

    def test_double_invocation_rejected(self, purchasing_process):
        simulator = ServiceSimulator(purchasing_process)
        simulator.invoke("Credit", "Credit", 0.0)
        with pytest.raises(SchedulingError):
            simulator.invoke("Credit", "Credit", 1.0)

    def test_unknown_service_and_port(self, purchasing_process):
        simulator = ServiceSimulator(purchasing_process)
        with pytest.raises(SchedulingError):
            simulator.invoke("Nope", "x", 0.0)
        with pytest.raises(SchedulingError):
            simulator.invoke("Credit", "NotAPort", 0.0)

    def test_sync_service_never_calls_back(self, purchasing_process):
        simulator = ServiceSimulator(purchasing_process)
        assert simulator.invoke("Production", "Production1", 0.0) is None
        assert simulator.invoke("Production", "Production2", 1.0) is None
        assert simulator.callback_time("Production") is None


class TestEngineBasics:
    def test_chain_execution_times(self):
        process = (
            ProcessBuilder("p")
            .compute("a", duration=2.0)
            .compute("b", duration=3.0)
            .build()
        )
        sc = SynchronizationConstraintSet(
            ["a", "b"], constraints=[Constraint("a", "b")]
        )
        result = ConstraintScheduler(process, sc).run()
        assert result.makespan == 5.0
        assert result.trace.happened_before("a", "b")

    def test_independent_activities_run_concurrently(self):
        process = (
            ProcessBuilder("p").compute("a", duration=2.0).compute("b", duration=2.0).build()
        )
        sc = SynchronizationConstraintSet(["a", "b"])
        result = ConstraintScheduler(process, sc).run()
        assert result.makespan == 2.0
        assert max_concurrency(result.trace) == 2

    def test_requires_activity_set(self, purchasing_weave, purchasing_process):
        with pytest.raises(SchedulingError):
            ConstraintScheduler(purchasing_process, purchasing_weave.merged)

    def test_every_constraint_respected(self, purchasing_process, purchasing_weave):
        result = ConstraintScheduler(purchasing_process, purchasing_weave.minimal).run()
        for constraint in purchasing_weave.asc:
            record_u = result.trace.records[constraint.source]
            record_v = result.trace.records[constraint.target]
            if record_u.executed and record_v.executed:
                assert record_u.finish <= record_v.start, str(constraint)

    def test_branch_skipping(self, purchasing_process, purchasing_weave):
        result = ConstraintScheduler(purchasing_process, purchasing_weave.minimal).run(
            outcomes={"if_au": "F"}
        )
        assert result.trace.skipped() == [
            "invProduction_po",
            "invProduction_ss",
            "invPurchase_po",
            "invPurchase_si",
            "invShip_po",
            "recPurchase_oi",
            "recShip_si",
            "recShip_ss",
        ]
        assert result.outcomes == {"if_au": "F"}
        reply = result.trace.records["replyClient_oi"]
        assert reply.executed

    def test_makespan_equal_minimal_vs_full(
        self, purchasing_process, purchasing_weave
    ):
        """Transitive equivalence means identical schedules."""
        for outcome in ("T", "F"):
            minimal = ConstraintScheduler(
                purchasing_process, purchasing_weave.minimal
            ).run(outcomes={"if_au": outcome})
            full = ConstraintScheduler(purchasing_process, purchasing_weave.asc).run(
                outcomes={"if_au": outcome}
            )
            assert minimal.makespan == full.makespan

    def test_monitoring_cost_lower_for_minimal(
        self, purchasing_process, purchasing_weave
    ):
        minimal = ConstraintScheduler(purchasing_process, purchasing_weave.minimal).run()
        full = ConstraintScheduler(purchasing_process, purchasing_weave.asc).run()
        assert minimal.constraint_checks < full.constraint_checks

    def test_deadlock_detection(self):
        process = ProcessBuilder("p").compute("a").compute("b").build()
        sc = SynchronizationConstraintSet(
            ["a", "b"], constraints=[Constraint("a", "b"), Constraint("b", "a")]
        )
        with pytest.raises(DeadlockError):
            ConstraintScheduler(process, sc).run()
        result = ConstraintScheduler(process, sc).run(raise_on_deadlock=False)
        assert result.deadlocked
        assert result.pending_at_deadlock == ("a", "b")

    def test_invalid_outcome_rejected(self, purchasing_process, purchasing_weave):
        with pytest.raises(SchedulingError):
            ConstraintScheduler(purchasing_process, purchasing_weave.minimal).run(
                outcomes={"if_au": "MAYBE"}
            )

    def test_callable_outcome_policy(self, purchasing_process, purchasing_weave):
        result = ConstraintScheduler(purchasing_process, purchasing_weave.minimal).run(
            outcomes=lambda guard: "F"
        )
        assert result.outcomes["if_au"] == "F"


class TestServiceInteraction:
    def test_dropping_service_dependency_violates_protocol(
        self, purchasing_process, purchasing_weave
    ):
        """Remove invPurchase_po -> invPurchase_si (the translated service
        dependency) and give the shipping invoice a head start: the
        state-aware Purchase service sees port 2 first and faults."""
        broken = purchasing_weave.minimal.without(
            Constraint("invPurchase_po", "invPurchase_si")
        )
        # Slow down invPurchase_po so the si invocation overtakes it.
        process = ProcessBuilder("Purchasing2")
        # Rebuild with a longer duration for invPurchase_po.
        from repro.workloads.purchasing import build_purchasing_process

        slow = _process_with_duration("invPurchase_po", 10.0)
        with pytest.raises(ProtocolViolation):
            ConstraintScheduler(slow, broken).run()

    def test_lenient_mode_records_violation(self, purchasing_weave):
        broken = purchasing_weave.minimal.without(
            Constraint("invPurchase_po", "invPurchase_si")
        )
        slow = _process_with_duration("invPurchase_po", 10.0)
        result = ConstraintScheduler(slow, broken, strict_services=False).run()
        assert result.violations

    def test_receive_waits_for_callback(self, purchasing_process, purchasing_weave):
        result = ConstraintScheduler(purchasing_process, purchasing_weave.minimal).run()
        invoke = result.trace.records["invCredit_po"]
        receive = result.trace.records["recCredit_au"]
        # Credit latency is 1.0: the receive cannot start before the
        # callback arrives.
        assert receive.start >= invoke.finish + 1.0


def _process_with_duration(activity_name: str, duration: float):
    """The Purchasing process with one activity's duration overridden."""
    from repro.model.activity import Activity
    from repro.model.process import BusinessProcess
    from repro.workloads.purchasing import build_purchasing_process

    original = build_purchasing_process()
    rebuilt = BusinessProcess(original.name)
    for service in original.services:
        rebuilt.add_service(service)
    for activity in original.activities:
        if activity.name == activity_name:
            activity = Activity(
                name=activity.name,
                kind=activity.kind,
                reads=activity.reads,
                writes=activity.writes,
                port=activity.port,
                outcomes=activity.outcomes if activity.is_guard else frozenset(),
                duration=duration,
            )
        rebuilt.add_activity(activity)
    for branch in original.branches:
        rebuilt.add_branch(branch)
    return rebuilt


class TestDynamicConstraints:
    def test_exclusive_serializes(self):
        process = (
            ProcessBuilder("p").compute("a", duration=2.0).compute("b", duration=2.0).build()
        )
        sc = SynchronizationConstraintSet(["a", "b"])
        exclusives = parse("R(a) O R(b);").statements
        result = ConstraintScheduler(process, sc, exclusives=exclusives).run()
        record_a = result.trace.records["a"]
        record_b = result.trace.records["b"]
        # Intervals must not overlap.
        assert record_a.finish <= record_b.start or record_b.finish <= record_a.start
        assert result.makespan == 4.0

    def test_fine_grained_start_before_finish(self):
        """S(survey) -> F(close): closing cannot finish before the survey
        has started (the paper's overlapping-lifespan example)."""
        process = (
            ProcessBuilder("p")
            .compute("open", duration=1.0)
            .compute("close", duration=1.0)
            .compute("survey", duration=5.0)
            .build()
        )
        sc = SynchronizationConstraintSet(
            ["open", "close", "survey"],
            constraints=[Constraint("open", "close"), Constraint("open", "survey")],
        )
        fine = parse("S(survey) -> F(close);").statements
        result = ConstraintScheduler(process, sc, fine_grained=fine).run()
        close = result.trace.records["close"]
        survey = result.trace.records["survey"]
        assert survey.start <= close.finish
        # Overlap is allowed: close may finish long before survey finishes.
        assert close.finish < survey.finish

    def test_fine_grained_vacuous_when_left_skipped(self):
        from repro.analysis.conditions import Cond
        from repro.model.process import Branch

        process = (
            ProcessBuilder("p")
            .receive("in", writes=["x"])
            .guard("g", reads=["x"])
            .compute("maybe")
            .compute("end")
            .build()
        )
        process.add_branch(Branch("g", {"T": ("maybe",)}))
        sc = SynchronizationConstraintSet(
            ["in", "g", "maybe", "end"],
            constraints=[
                Constraint("in", "g"),
                Constraint("g", "maybe", "T"),
                Constraint("g", "end"),
            ],
            guards={"maybe": frozenset({Cond("g", "T")})},
        )
        fine = parse("S(maybe) -> F(end);").statements
        result = ConstraintScheduler(process, sc, fine_grained=fine).run(
            outcomes={"g": "F"}
        )
        assert "maybe" in result.trace.skipped()
        assert result.trace.records["end"].executed


class TestMetrics:
    def test_concurrency_profile(self):
        process = (
            ProcessBuilder("p")
            .compute("a", duration=2.0)
            .compute("b", duration=4.0)
            .build()
        )
        sc = SynchronizationConstraintSet(["a", "b"])
        result = ConstraintScheduler(process, sc).run()
        profile = concurrency_profile(result.trace)
        assert profile[0] == (0.0, 2)
        assert profile[-1] == (4.0, 0)
        assert average_concurrency(result.trace) == pytest.approx(6.0 / 4.0)

    def test_serialization_overhead(self):
        assert serialization_overhead(10.0, 5.0) == 2.0
        assert serialization_overhead(5.0, 0.0) == 1.0


class TestBaseline:
    def test_figure2_baseline_runs(self, purchasing_process, purchasing_constructs):
        result = execute_constructs(purchasing_process, purchasing_constructs)
        assert result.trace.records["replyClient_oi"].executed
        assert not result.violations

    def test_fully_sequential_baseline_is_slower(
        self, purchasing_process, purchasing_weave
    ):
        """A naive all-sequence implementation (common in practice) pays
        real makespan against the dependency-driven schedule."""
        from repro.constructs.ast import Act, Sequence, Switch

        sequential = Sequence(
            Act("recClient_po"),
            Act("invCredit_po"),
            Act("recCredit_au"),
            Switch(
                "if_au",
                cases={
                    "T": Sequence(
                        Act("invShip_po"),
                        Act("recShip_si"),
                        Act("recShip_ss"),
                        Act("invPurchase_po"),
                        Act("invPurchase_si"),
                        Act("recPurchase_oi"),
                        Act("invProduction_po"),
                        Act("invProduction_ss"),
                    ),
                    "F": Act("set_oi"),
                },
            ),
            Act("replyClient_oi"),
        )
        baseline = execute_constructs(purchasing_process, sequential)
        optimized = ConstraintScheduler(
            purchasing_process, purchasing_weave.minimal
        ).run()
        assert baseline.makespan > optimized.makespan
