"""CLI tests for the observability flags and the ``trace`` subcommand.

``--trace-out`` must emit schema-valid Chrome ``trace_event`` JSON and
``--metrics-out`` valid Prometheus exposition (or JSON for ``*.json``
paths) — validated here with the in-repo validators, the same contract CI's
``obs-smoke`` job enforces on real artifacts.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import (
    CHROME_TRACE_SCHEMA,
    load_trace,
    validate_chrome_trace,
    validate_prometheus_text,
)


class TestServeObsFlags:
    def test_trace_and_metrics_files_are_written_and_valid(self, tmp_path, capsys):
        trace_path = tmp_path / "spans.json"
        metrics_path = tmp_path / "metrics.prom"
        code = main(
            [
                "serve",
                "purchasing",
                "--cases",
                "20",
                "--trace-out",
                str(trace_path),
                "--metrics-out",
                str(metrics_path),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "20 completed" in captured.out
        assert "wrote trace to" in captured.err
        assert "wrote metrics to" in captured.err

        payload = load_trace(str(trace_path))
        assert validate_chrome_trace(payload) == []
        names = {e["name"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert "runtime.run" in names
        assert "runtime.batch" in names

        text = metrics_path.read_text()
        assert validate_prometheus_text(text) == []
        assert 'repro_runtime_cases_total{status="completed"} 20' in text

    def test_trace_file_matches_json_schema(self, tmp_path):
        jsonschema = pytest.importorskip("jsonschema")
        trace_path = tmp_path / "spans.json"
        assert main(
            ["serve", "purchasing", "--cases", "8", "--trace-out", str(trace_path)]
        ) == 0
        jsonschema.validate(load_trace(str(trace_path)), CHROME_TRACE_SCHEMA)

    def test_metrics_json_flavour(self, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        assert main(
            ["serve", "purchasing", "--cases", "8", "--metrics-out", str(metrics_path)]
        ) == 0
        payload = json.loads(metrics_path.read_text())
        names = [family["name"] for family in payload["metrics"]]
        assert "repro_runtime_cases_total" in names

    def test_without_flags_no_files_and_same_output(self, tmp_path, capsys):
        assert main(["serve", "purchasing", "--cases", "8"]) == 0
        captured = capsys.readouterr()
        assert "8 completed" in captured.out
        assert "wrote" not in captured.err
        assert list(tmp_path.iterdir()) == []


class TestServeJsonFormat:
    def test_json_summary_parses_and_matches(self, capsys):
        assert main(
            ["serve", "purchasing", "--cases", "12", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "purchasing"
        assert payload["set"] == "minimal"
        assert payload["metrics"]["completed"] == 12
        assert payload["metrics"]["submitted"] == 12
        assert payload["findings"]["findings"] == []

    def test_json_summary_with_recover(self, tmp_path, capsys):
        journal = tmp_path / "wal.jsonl"
        assert main(
            [
                "serve",
                "purchasing",
                "--cases",
                "6",
                "--journal",
                str(journal),
            ]
        ) == 0
        capsys.readouterr()
        assert main(
            [
                "serve",
                "purchasing",
                "--cases",
                "6",
                "--journal",
                str(journal),
                "--recover",
                "--format",
                "json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["recovery"]["adopted_or_resumed"] == 6
        assert payload["recovery"]["resubmitted"] == 0

    def test_text_recover_message_unchanged(self, tmp_path, capsys):
        journal = tmp_path / "wal.jsonl"
        assert main(
            ["serve", "purchasing", "--cases", "4", "--journal", str(journal)]
        ) == 0
        capsys.readouterr()
        assert main(
            [
                "serve",
                "purchasing",
                "--cases",
                "4",
                "--journal",
                str(journal),
                "--recover",
            ]
        ) == 0
        assert "recovered journal" in capsys.readouterr().out


class TestReplayObsFlags:
    def _record(self, tmp_path, capsys):
        log = tmp_path / "run.jsonl"
        assert main(
            ["simulate", "--workload", "purchasing", "--record", str(log)]
        ) == 0
        capsys.readouterr()
        return log

    def test_replay_json_combines_summary_and_findings(self, tmp_path, capsys):
        log = self._record(tmp_path, capsys)
        assert main(
            ["replay", "purchasing", "--log", str(log), "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["fitness"] == 1.0
        assert payload["summary"]["cases"] == 1
        assert payload["summary"]["events"] > 0
        assert payload["findings"]["counts"]["error"] == 0

    def test_replay_trace_out(self, tmp_path, capsys):
        log = self._record(tmp_path, capsys)
        trace_path = tmp_path / "replay.json"
        assert main(
            ["replay", "purchasing", "--log", str(log), "--trace-out", str(trace_path)]
        ) == 0
        payload = load_trace(str(trace_path))
        assert validate_chrome_trace(payload) == []
        names = [e["name"] for e in payload["traceEvents"] if e["ph"] == "X"]
        assert names == ["conformance.replay"]

    def test_replay_metrics_out(self, tmp_path, capsys):
        log = self._record(tmp_path, capsys)
        metrics_path = tmp_path / "replay.prom"
        assert main(
            [
                "replay",
                "purchasing",
                "--log",
                str(log),
                "--metrics-out",
                str(metrics_path),
            ]
        ) == 0
        text = metrics_path.read_text()
        assert validate_prometheus_text(text) == []
        assert "repro_conformance_events_total" in text


class TestMinimizeSimulateObsFlags:
    def test_minimize_metrics_out_has_kernel_counters(self, tmp_path, capsys):
        metrics_path = tmp_path / "kernel.prom"
        assert main(
            [
                "minimize",
                "--workload",
                "purchasing",
                "--metrics-out",
                str(metrics_path),
            ]
        ) == 0
        text = metrics_path.read_text()
        assert validate_prometheus_text(text) == []
        assert "repro_core_candidates_total" in text
        assert "repro_core_try_remove_seconds_bucket" in text

    def test_simulate_trace_out_has_scheduler_span(self, tmp_path, capsys):
        trace_path = tmp_path / "sim.json"
        assert main(
            ["simulate", "--workload", "purchasing", "--trace-out", str(trace_path)]
        ) == 0
        payload = load_trace(str(trace_path))
        names = [e["name"] for e in payload["traceEvents"] if e["ph"] == "X"]
        assert "scheduler.run" in names


class TestTraceSubcommand:
    def test_flame_summary_of_a_serve_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "spans.json"
        assert main(
            ["serve", "purchasing", "--cases", "10", "--trace-out", str(trace_path)]
        ) == 0
        capsys.readouterr()
        assert main(["trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "runtime.run" in out
        assert "runtime.batch" in out
        assert "self(us)" in out
        assert "complete event(s) in trace" in out

    def test_top_limits_rows(self, tmp_path, capsys):
        trace_path = tmp_path / "spans.json"
        assert main(
            ["serve", "purchasing", "--cases", "10", "--trace-out", str(trace_path)]
        ) == 0
        capsys.readouterr()
        assert main(["trace", str(trace_path), "--top", "1"]) == 0
        out = capsys.readouterr().out
        # header + single row + footer
        rows = [line for line in out.splitlines() if line.startswith("runtime.")]
        assert len(rows) == 1

    def test_missing_file_is_a_usage_error(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "absent.json")]) == 2
        assert "cannot load trace" in capsys.readouterr().err

    def test_malformed_json_is_a_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["trace", str(bad)]) == 2
        assert "cannot load trace" in capsys.readouterr().err

    def test_empty_trace_renders_notice(self, tmp_path, capsys):
        empty = tmp_path / "empty.json"
        empty.write_text('{"traceEvents": []}')
        assert main(["trace", str(empty)]) == 0
        assert "no complete (ph=X) events" in capsys.readouterr().out
