"""Tests for the exception hierarchy and the execution-trace API."""

from __future__ import annotations

import pytest

from repro import errors
from repro.scheduler.events import ActivityRecord, ExecutionTrace


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "ModelError",
            "DependencyError",
            "DSCLSyntaxError",
            "DSCLSemanticError",
            "ConstraintError",
            "CycleError",
            "TranslationError",
            "PetriNetError",
            "NotEnabledError",
            "SoundnessError",
            "BPELError",
            "WSCLError",
            "SchedulingError",
            "ProtocolViolation",
            "DeadlockError",
            "ValidationError",
        ):
            error_class = getattr(errors, name)
            assert issubclass(error_class, errors.ReproError), name

    def test_cycle_error_carries_cycle(self):
        error = errors.CycleError(["a", "b", "c"])
        assert error.cycle == ["a", "b", "c"]
        assert "a -> b -> c -> a" in str(error)

    def test_dscl_syntax_error_position(self):
        error = errors.DSCLSyntaxError("bad token", line=3, column=7)
        assert error.line == 3
        assert error.column == 7
        assert "line 3, column 7" in str(error)

    def test_dscl_syntax_error_without_position(self):
        error = errors.DSCLSyntaxError("bad token")
        assert "line" not in str(error)

    def test_protocol_violation_is_scheduling_error(self):
        assert issubclass(errors.ProtocolViolation, errors.SchedulingError)

    def test_not_enabled_is_petri_error(self):
        assert issubclass(errors.NotEnabledError, errors.PetriNetError)


class TestActivityRecord:
    def test_executed_record(self):
        record = ActivityRecord("a", start=1.0, finish=2.0)
        assert record.executed and not record.skipped

    def test_skipped_record(self):
        record = ActivityRecord("a", skipped_at=3.0)
        assert record.skipped and not record.executed


class TestExecutionTrace:
    def _trace(self) -> ExecutionTrace:
        trace = ExecutionTrace()
        trace.record(ActivityRecord("a", start=0.0, finish=1.0))
        trace.record(ActivityRecord("b", start=1.0, finish=3.0, outcome="T"))
        trace.record(ActivityRecord("c", skipped_at=3.0))
        return trace

    def test_executed_sorted_by_start(self):
        executed = self._trace().executed()
        assert [r.name for r in executed] == ["a", "b"]

    def test_skipped_names(self):
        assert self._trace().skipped() == ["c"]

    def test_happened_before(self):
        trace = self._trace()
        assert trace.happened_before("a", "b")
        assert not trace.happened_before("b", "a")
        # Skipped or missing activities never "happen before".
        assert not trace.happened_before("a", "c")
        assert not trace.happened_before("a", "ghost")

    def test_makespan(self):
        assert self._trace().makespan() == 3.0
        assert ExecutionTrace().makespan() == 0.0

    def test_order_of(self):
        trace = self._trace()
        assert trace.order_of("b") == 1.0
        assert trace.order_of("ghost") is None

    def test_notes_accumulate(self):
        trace = ExecutionTrace()
        trace.note(0.0, "start a")
        trace.note(1.0, "finish a")
        assert trace.log == [(0.0, "start a"), (1.0, "finish a")]


class TestTraceSerialization:
    def _trace(self) -> ExecutionTrace:
        trace = ExecutionTrace()
        trace.note(0.0, "start a")
        trace.note(1.0, "finish a")
        trace.note(1.0, "start b")
        trace.record(ActivityRecord("a", start=0.0, finish=1.0))
        trace.record(ActivityRecord("b", start=1.0, finish=3.0, outcome="T"))
        trace.record(ActivityRecord("c", skipped_at=3.0))
        return trace

    def test_record_dict_round_trip(self):
        record = ActivityRecord("b", start=1.0, finish=3.0, outcome="T")
        assert ActivityRecord.from_dict(record.to_dict()) == record

    def test_record_dict_omits_none_fields(self):
        assert ActivityRecord("c", skipped_at=3.0).to_dict() == {
            "name": "c",
            "skipped_at": 3.0,
        }

    def test_jsonl_round_trip(self):
        trace = self._trace()
        rebuilt = ExecutionTrace.from_jsonl(trace.to_jsonl())
        assert rebuilt.records == trace.records
        assert rebuilt.log == trace.log

    def test_jsonl_preserves_note_order(self):
        rebuilt = ExecutionTrace.from_jsonl(self._trace().to_jsonl())
        assert [message for _time, message in rebuilt.log] == [
            "start a",
            "finish a",
            "start b",
        ]

    def test_empty_trace_round_trip(self):
        assert ExecutionTrace.from_jsonl(ExecutionTrace().to_jsonl()).records == {}

    def test_invalid_json_reports_line(self):
        with pytest.raises(ValueError, match="line 1"):
            ExecutionTrace.from_jsonl("not json")

    def test_unknown_entry_type_rejected(self):
        with pytest.raises(ValueError, match="unknown entry type"):
            ExecutionTrace.from_jsonl('{"type": "mystery"}')
