"""Differential validation of the mask-compiled serving fast path.

The bitmask evaluator (``fast=True``, the default) must be observationally
identical to the object-walking reference (``fast=False``) — not just on
the paper's workloads but on *random* guarded DAGs, under every
minimization semantics, and at arbitrary crash points:

* byte-for-byte identical write-ahead journals,
* identical per-case final states,
* identical metrics counters — except ``checks``, which deliberately
  counts different units (dirty-set re-checks vs constraint walks),
* identical conformance-monitor verdicts over the journaled event log.

The random sets come from :mod:`tests.strategies`; the process is
synthesized from the constraint set the same way the verifier's
differential oracle does it.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.conformance.monitor import compile_monitor
from repro.conformance.replay import replay
from repro.core.closure import Semantics
from repro.core.minimize import minimize
from repro.discover.ingest import log_from_journal
from repro.runtime import Runtime, SimulatedCrash
from repro.runtime.program import compile_program
from repro.verify import synthesize_process

from tests.strategies import constraint_sets

CASES = 6
SHARDS = 3

SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _program(sc, semantics):
    minimal = minimize(sc, semantics=semantics)
    return compile_program(synthesize_process(minimal), minimal), minimal


def _plans(program, count=CASES):
    """Outcome plans cycling through guard-domain combinations."""
    guards = program.guard_names()
    domains = {guard: program.outcome_domain(guard) for guard in guards}
    plans = {}
    for index in range(count):
        plan, shift = {}, index
        for guard in guards:
            domain = domains[guard]
            plan[guard] = domain[shift % len(domain)]
            shift //= len(domain)
        plans["case-%03d" % index] = plan
    return plans


def _serve(program, plans, path, fast):
    runtime = Runtime(program, shards=SHARDS, journal_path=path, fast=fast)
    runtime.submit_batch(plans)
    report = runtime.run()
    runtime.close()
    return report


def _crash_and_recover(program, plans, path, fast, crash_after):
    crashing = Runtime(
        program,
        shards=SHARDS,
        journal_path=path,
        fast=fast,
        crash_after=crash_after,
    )
    try:
        crashing.submit_batch(plans)
        crashing.run()
        pytest.fail("crash point %d beyond the journal" % crash_after)
    except SimulatedCrash:
        pass
    finally:
        crashing.close()
    recovered = Runtime.recover(path, program, shards=SHARDS, fast=fast)
    for case, outcomes in plans.items():
        if case not in recovered.known_cases:
            recovered.submit(case, outcomes)
    report = recovered.run()
    recovered.close()
    return report


def _counters(report):
    """Every deterministic metrics counter — ``checks`` excluded by design
    (the fast path counts dirty-set re-checks, the reference counts
    constraint walks), wall/peak fields excluded as timing-dependent."""
    metrics = report.metrics
    return {
        "submitted": metrics.submitted,
        "admitted": metrics.admitted,
        "completed": metrics.completed,
        "failed": metrics.failed,
        "rejected": metrics.rejected,
        "recovered": metrics.recovered,
        "retries": metrics.retries,
        "transitions": metrics.transitions,
        "journal_records": metrics.journal_records,
        "latency_p50": metrics.latency_p50,
        "latency_p95": metrics.latency_p95,
        "shard_assigned": metrics.shard_assigned,
    }


def _verdicts(path, sc):
    report = replay(log_from_journal(path), compile_monitor(sc))
    return report.case_verdicts(), report.verdict_counts


class TestMaskObjectDifferential:
    @settings(max_examples=25, **SETTINGS)
    @given(
        sc=constraint_sets(max_nodes=7, max_edges=12),
        semantics=st.sampled_from(sorted(Semantics, key=lambda s: s.value)),
    )
    def test_identical_serving(self, tmp_path_factory, sc, semantics):
        program, minimal = _program(sc, semantics)
        plans = _plans(program)
        directory = tmp_path_factory.mktemp("diff")
        fast_path = str(directory / "fast.jsonl")
        ref_path = str(directory / "ref.jsonl")
        fast = _serve(program, plans, fast_path, fast=True)
        ref = _serve(program, plans, ref_path, fast=False)

        with open(fast_path, "rb") as a, open(ref_path, "rb") as b:
            assert a.read() == b.read()
        assert fast.final_states() == ref.final_states()
        assert _counters(fast) == _counters(ref)
        assert _verdicts(fast_path, minimal) == _verdicts(ref_path, minimal)

    @settings(max_examples=12, **SETTINGS)
    @given(
        sc=constraint_sets(min_nodes=3, max_nodes=7, max_edges=12),
        semantics=st.sampled_from(sorted(Semantics, key=lambda s: s.value)),
        fraction=st.floats(min_value=0.1, max_value=0.9),
    )
    def test_identical_across_crash_points(
        self, tmp_path_factory, sc, semantics, fraction
    ):
        program, minimal = _program(sc, semantics)
        plans = _plans(program)
        directory = tmp_path_factory.mktemp("crash")
        baseline_path = str(directory / "baseline.jsonl")
        baseline = _serve(program, plans, baseline_path, fast=True)
        crash_after = max(1, int(baseline.metrics.journal_records * fraction))

        fast_path = str(directory / "fast.jsonl")
        ref_path = str(directory / "ref.jsonl")
        fast = _crash_and_recover(program, plans, fast_path, True, crash_after)
        ref = _crash_and_recover(program, plans, ref_path, False, crash_after)

        with open(fast_path, "rb") as a, open(ref_path, "rb") as b:
            assert a.read() == b.read()
        assert fast.final_states() == ref.final_states()
        assert fast.final_states() == baseline.final_states()
        assert _counters(fast) == _counters(ref)
        assert not [d for d in fast.diagnostics if d.code == "RT003"]
        assert not [d for d in ref.diagnostics if d.code == "RT003"]
        assert _verdicts(fast_path, minimal) == _verdicts(ref_path, minimal)
