"""DSCL object statements: parse, print round-trip, desugar neutrality.

``object parent 1..* child``, ``child.a ->A parent.b`` and
``role.a ->1 role`` land in :attr:`Program.objects`, leaving the
single-case statement stream untouched — existing consumers must not
notice them.
"""

from __future__ import annotations

import pytest

from repro.dscl import (
    CrossCaseAll,
    CrossCaseOnce,
    ObjectRelationDecl,
    desugar,
    parse,
    to_text,
)
from repro.errors import DSCLSemanticError, DSCLSyntaxError

ORDERS = (
    "object order 1..* item;\n"
    "item.pack_item ->A order.ship_order;\n"
    "order.invoice_order ->1 order;\n"
)


class TestParsing:
    def test_orders_declaration(self):
        program = parse(ORDERS)
        assert program.statements == []
        relation, all_of, once = program.objects
        assert relation == ObjectRelationDecl("order", "item")
        assert all_of == CrossCaseAll("item", "pack_item", "order", "ship_order")
        assert once == CrossCaseOnce("order", "invoice_order")

    def test_mixes_with_single_case_statements(self):
        program = parse("F(a) -> S(b);\nobject order 1..* item;\n")
        assert len(program.statements) == 1
        assert len(program.objects) == 1

    def test_missing_semicolon(self):
        with pytest.raises(DSCLSyntaxError):
            parse("object order 1..* item")

    def test_self_relation_rejected(self):
        with pytest.raises(DSCLSyntaxError, match="itself"):
            parse("object order 1..* order;")

    def test_all_of_requires_qualified_names(self):
        with pytest.raises((DSCLSyntaxError, DSCLSemanticError)):
            parse("pack_item ->A order.ship_order;")

    def test_once_must_scope_to_its_own_role(self):
        with pytest.raises(DSCLSyntaxError, match="own role"):
            parse("order.invoice_order ->1 item;")


class TestPrinting:
    def test_round_trip(self):
        program = parse(ORDERS)
        printed = to_text(program)
        assert parse(printed) == program

    def test_statement_rendering(self):
        printed = to_text(parse(ORDERS))
        assert "object order 1..* item;" in printed
        assert "item.pack_item ->A order.ship_order;" in printed
        assert "order.invoice_order ->1 order;" in printed

    def test_mixed_program_round_trips(self):
        source = "F(a) -> S(b);\n" + ORDERS
        program = parse(source)
        assert parse(to_text(program)) == program


class TestDesugar:
    def test_desugar_passes_objects_through(self):
        program = parse("S(a) <-> S(b);\n" + ORDERS)
        result = desugar(program)
        assert result.program.objects == program.objects
        # the barrier itself still desugars into single-case statements
        assert len(result.program.statements) > 1

    def test_desugar_of_pure_object_program_is_identity(self):
        program = parse(ORDERS)
        result = desugar(program)
        assert result.program.statements == []
        assert result.program.objects == program.objects
