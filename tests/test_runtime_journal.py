"""Tests for the write-ahead journal, fault injection and crash recovery.

The acceptance property: a run that crashes mid-flight and is then
recovered completes *exactly* the same set of cases, with identical
per-case final states, as an uninterrupted run of the same load.
"""

from __future__ import annotations

import json

import pytest

from repro.conformance import EventLog, replay
from repro.conformance import program_from_weave as conformance_program
from repro.runtime import (
    COMPLETED,
    Journal,
    JournalError,
    Runtime,
    SimulatedCrash,
    program_from_weave,
    read_journal,
)


@pytest.fixture(scope="module")
def program(purchasing_weave):
    return program_from_weave(purchasing_weave, "minimal", target="runtime")


def purchasing_plans(count):
    return {
        "case-%03d" % index: {"if_au": "T" if index % 2 == 0 else "F"}
        for index in range(count)
    }


def run_uninterrupted(program, plans, journal_path=None):
    runtime = Runtime(program, journal_path=journal_path)
    runtime.submit_batch(plans)
    report = runtime.run()
    runtime.close()
    return report


class TestJournalFile:
    def test_round_trip(self, tmp_path, program):
        path = str(tmp_path / "wal.jsonl")
        report = run_uninterrupted(program, purchasing_plans(6), path)
        state = read_journal(path)
        assert state.records == report.metrics.journal_records
        assert sorted(state.cases) == sorted(purchasing_plans(6))
        assert not state.in_flight()
        for journaled in state.completed():
            assert journaled.status == COMPLETED
            assert journaled.events

    def test_event_stream_preserves_commit_order(self, tmp_path, program):
        path = str(tmp_path / "wal.jsonl")
        run_uninterrupted(program, purchasing_plans(4), path)
        state = read_journal(path)
        # Reconstructing per-case sequences from the interleaved stream
        # must give each case's own journaled order.
        per_case = {}
        for event in state.event_stream:
            per_case.setdefault(event.case, []).append(event)
        for case, journaled in state.cases.items():
            assert per_case[case] == journaled.events

    def test_journal_is_a_conformance_log(self, tmp_path, purchasing_weave, program):
        """Stripped of control records, the journal replays cleanly."""
        path = str(tmp_path / "wal.jsonl")
        run_uninterrupted(program, purchasing_plans(5), path)
        state = read_journal(path)
        monitor = conformance_program(purchasing_weave, which="minimal")
        report = replay(EventLog(state.event_stream), monitor)
        assert report.clean

    def test_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(JournalError, match="invalid JSON"):
            read_journal(str(path))

    def test_rejects_event_before_admission(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps(
                {"case": "ghost", "activity": "a", "lifecycle": "start", "time": 0.0}
            )
            + "\n"
        )
        with pytest.raises(JournalError, match="unadmitted"):
            read_journal(str(path))

    def test_rejects_double_admission(self, tmp_path):
        line = json.dumps({"rt": "admit", "case": "c", "time": 0.0, "outcomes": {}})
        path = tmp_path / "bad.jsonl"
        path.write_text(line + "\n" + line + "\n")
        with pytest.raises(JournalError, match="admitted twice"):
            read_journal(str(path))


class TestFaultInjection:
    def test_crash_after_n_records(self, tmp_path):
        journal = Journal(str(tmp_path / "wal.jsonl"), crash_after=2)
        journal.admit("a", 0.0, {})
        with pytest.raises(SimulatedCrash) as caught:
            journal.admit("b", 0.0, {})
        assert caught.value.records_written == 2
        # the journal was durably flushed before the crash fired
        assert read_journal(str(tmp_path / "wal.jsonl")).records == 2

    def test_crash_propagates_out_of_run(self, tmp_path, program):
        runtime = Runtime(
            program, journal_path=str(tmp_path / "wal.jsonl"), crash_after=30
        )
        runtime.submit_batch(purchasing_plans(4))
        with pytest.raises(SimulatedCrash):
            runtime.run()


class TestCrashRecovery:
    @pytest.mark.parametrize("crash_after", [10, 45, 120, 200])
    def test_recovered_run_matches_uninterrupted(
        self, tmp_path, program, crash_after
    ):
        plans = purchasing_plans(10)
        baseline = run_uninterrupted(program, plans).final_states()

        path = str(tmp_path / "wal.jsonl")
        crashed = Runtime(program, journal_path=path, crash_after=crash_after)
        with pytest.raises(SimulatedCrash):
            crashed.submit_batch(plans)
            crashed.run()

        recovered = Runtime.recover(path, program)
        for case, outcomes in plans.items():
            if case not in recovered.known_cases:
                recovered.submit(case, outcomes)
        report = recovered.run()
        recovered.close()

        assert report.completed_cases() == tuple(sorted(plans))
        assert report.final_states() == baseline
        assert not report.diagnostics

    def test_completed_cases_are_not_rerun(self, tmp_path, program):
        plans = purchasing_plans(8)
        path = str(tmp_path / "wal.jsonl")
        crashed = Runtime(program, journal_path=path, crash_after=170)
        with pytest.raises(SimulatedCrash):
            crashed.submit_batch(plans)
            crashed.run()
        adopted = len(read_journal(path).completed())
        assert adopted > 0, "pick crash_after so some cases completed"

        recovered = Runtime.recover(path, program)
        report = recovered.run()
        recovered.close()
        assert report.metrics.recovered == adopted
        # adopted cases carry journal-derived results with real schedules
        for case in report.completed_cases():
            assert report.results[case].executed

    def test_recovered_journal_extends_in_place(self, tmp_path, program):
        plans = purchasing_plans(6)
        path = str(tmp_path / "wal.jsonl")
        crashed = Runtime(program, journal_path=path, crash_after=40)
        with pytest.raises(SimulatedCrash):
            crashed.submit_batch(plans)
            crashed.run()

        recovered = Runtime.recover(path, program)
        recovered.run()
        recovered.close()
        state = read_journal(path)
        assert not state.in_flight()
        assert sorted(state.cases) == sorted(plans)

    def test_tampered_journal_raises_rt003(self, tmp_path, program):
        path = str(tmp_path / "wal.jsonl")
        crashed = Runtime(program, journal_path=path, crash_after=12)
        with pytest.raises(SimulatedCrash):
            crashed.submit("case-a")
            crashed.run()

        lines = open(path, encoding="utf-8").read().splitlines()
        for index, line in enumerate(lines):
            record = json.loads(line)
            if record.get("lifecycle") == "finish":
                record["time"] += 99.0
                lines[index] = json.dumps(record)
                break
        else:
            pytest.fail("no finish event journaled before the crash")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")

        recovered = Runtime.recover(path, program)
        report = recovered.run()
        recovered.close()
        assert [d.code for d in report.diagnostics] == ["RT003"]
        assert report.results["case-a"].status == "failed"
        assert report.exit_code() == 1
