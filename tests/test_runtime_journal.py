"""Tests for the write-ahead journal, fault injection and crash recovery.

The acceptance property: a run that crashes mid-flight and is then
recovered completes *exactly* the same set of cases, with identical
per-case final states, as an uninterrupted run of the same load.
"""

from __future__ import annotations

import json

import pytest

from repro.conformance import EventLog, replay
from repro.conformance import program_from_weave as conformance_program
from repro.runtime import (
    COMPLETED,
    Journal,
    JournalError,
    Runtime,
    SimulatedCrash,
    program_from_weave,
    read_journal,
)


@pytest.fixture(scope="module")
def program(purchasing_weave):
    return program_from_weave(purchasing_weave, "minimal", target="runtime")


def purchasing_plans(count):
    return {
        "case-%03d" % index: {"if_au": "T" if index % 2 == 0 else "F"}
        for index in range(count)
    }


def run_uninterrupted(program, plans, journal_path=None):
    runtime = Runtime(program, journal_path=journal_path)
    runtime.submit_batch(plans)
    report = runtime.run()
    runtime.close()
    return report


class TestJournalFile:
    def test_round_trip(self, tmp_path, program):
        path = str(tmp_path / "wal.jsonl")
        report = run_uninterrupted(program, purchasing_plans(6), path)
        state = read_journal(path)
        assert state.records == report.metrics.journal_records
        assert sorted(state.cases) == sorted(purchasing_plans(6))
        assert not state.in_flight()
        for journaled in state.completed():
            assert journaled.status == COMPLETED
            assert journaled.events

    def test_event_stream_preserves_commit_order(self, tmp_path, program):
        path = str(tmp_path / "wal.jsonl")
        run_uninterrupted(program, purchasing_plans(4), path)
        state = read_journal(path)
        # Reconstructing per-case sequences from the interleaved stream
        # must give each case's own journaled order.
        per_case = {}
        for event in state.event_stream:
            per_case.setdefault(event.case, []).append(event)
        for case, journaled in state.cases.items():
            assert per_case[case] == journaled.events

    def test_journal_is_a_conformance_log(self, tmp_path, purchasing_weave, program):
        """Stripped of control records, the journal replays cleanly."""
        path = str(tmp_path / "wal.jsonl")
        run_uninterrupted(program, purchasing_plans(5), path)
        state = read_journal(path)
        monitor = conformance_program(purchasing_weave, which="minimal")
        report = replay(EventLog(state.event_stream), monitor)
        assert report.clean

    def test_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(JournalError, match="invalid JSON"):
            read_journal(str(path))

    def test_rejects_event_before_admission(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps(
                {"case": "ghost", "activity": "a", "lifecycle": "start", "time": 0.0}
            )
            + "\n"
        )
        with pytest.raises(JournalError, match="unadmitted"):
            read_journal(str(path))

    def test_rejects_double_admission(self, tmp_path):
        line = json.dumps({"rt": "admit", "case": "c", "time": 0.0, "outcomes": {}})
        path = tmp_path / "bad.jsonl"
        path.write_text(line + "\n" + line + "\n")
        with pytest.raises(JournalError, match="admitted twice"):
            read_journal(str(path))


class TestFaultInjection:
    def test_crash_after_n_records(self, tmp_path):
        journal = Journal(str(tmp_path / "wal.jsonl"), crash_after=2)
        journal.admit("a", 0.0, {})
        with pytest.raises(SimulatedCrash) as caught:
            journal.admit("b", 0.0, {})
        assert caught.value.records_written == 2
        # the journal was durably flushed before the crash fired
        assert read_journal(str(tmp_path / "wal.jsonl")).records == 2

    def test_crash_propagates_out_of_run(self, tmp_path, program):
        runtime = Runtime(
            program, journal_path=str(tmp_path / "wal.jsonl"), crash_after=30
        )
        runtime.submit_batch(purchasing_plans(4))
        with pytest.raises(SimulatedCrash):
            runtime.run()


class TestCrashRecovery:
    @pytest.mark.parametrize("crash_after", [10, 45, 120, 200])
    def test_recovered_run_matches_uninterrupted(
        self, tmp_path, program, crash_after
    ):
        plans = purchasing_plans(10)
        baseline = run_uninterrupted(program, plans).final_states()

        path = str(tmp_path / "wal.jsonl")
        crashed = Runtime(program, journal_path=path, crash_after=crash_after)
        with pytest.raises(SimulatedCrash):
            crashed.submit_batch(plans)
            crashed.run()

        recovered = Runtime.recover(path, program)
        for case, outcomes in plans.items():
            if case not in recovered.known_cases:
                recovered.submit(case, outcomes)
        report = recovered.run()
        recovered.close()

        assert report.completed_cases() == tuple(sorted(plans))
        assert report.final_states() == baseline
        assert not report.diagnostics

    def test_completed_cases_are_not_rerun(self, tmp_path, program):
        plans = purchasing_plans(8)
        path = str(tmp_path / "wal.jsonl")
        crashed = Runtime(program, journal_path=path, crash_after=170)
        with pytest.raises(SimulatedCrash):
            crashed.submit_batch(plans)
            crashed.run()
        adopted = len(read_journal(path).completed())
        assert adopted > 0, "pick crash_after so some cases completed"

        recovered = Runtime.recover(path, program)
        report = recovered.run()
        recovered.close()
        assert report.metrics.recovered == adopted
        # adopted cases carry journal-derived results with real schedules
        for case in report.completed_cases():
            assert report.results[case].executed

    def test_recovered_journal_extends_in_place(self, tmp_path, program):
        plans = purchasing_plans(6)
        path = str(tmp_path / "wal.jsonl")
        crashed = Runtime(program, journal_path=path, crash_after=40)
        with pytest.raises(SimulatedCrash):
            crashed.submit_batch(plans)
            crashed.run()

        recovered = Runtime.recover(path, program)
        recovered.run()
        recovered.close()
        state = read_journal(path)
        assert not state.in_flight()
        assert sorted(state.cases) == sorted(plans)

    def test_tampered_journal_raises_rt003(self, tmp_path, program):
        path = str(tmp_path / "wal.jsonl")
        crashed = Runtime(program, journal_path=path, crash_after=12)
        with pytest.raises(SimulatedCrash):
            crashed.submit("case-a")
            crashed.run()

        lines = open(path, encoding="utf-8").read().splitlines()
        for index, line in enumerate(lines):
            record = json.loads(line)
            if record.get("lifecycle") == "finish":
                record["time"] += 99.0
                lines[index] = json.dumps(record)
                break
        else:
            pytest.fail("no finish event journaled before the crash")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")

        recovered = Runtime.recover(path, program)
        report = recovered.run()
        recovered.close()
        assert [d.code for d in report.diagnostics] == ["RT003"]
        assert report.results["case-a"].status == "failed"
        assert report.exit_code() == 1


class TestGroupCommit:
    """``flush_every=N`` batches durability without changing the record
    stream, and fault injection stays exact under batching."""

    def test_rejects_bad_batch_size(self, tmp_path):
        with pytest.raises(ValueError, match="at least 1"):
            Journal(str(tmp_path / "wal.jsonl"), flush_every=0)

    def test_buffers_until_the_batch_fills(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        journal = Journal(path, flush_every=4)
        for index in range(3):
            journal.admit("case-%d" % index, 0.0, {})
        # three buffered records: nothing durable yet
        assert read_journal(path).records == 0
        journal.admit("case-3", 0.0, {})
        assert read_journal(path).records == 4
        journal.admit("case-4", 0.0, {})
        journal.close()  # close flushes the partial batch
        assert read_journal(path).records == 5

    def test_explicit_flush_is_a_commit_boundary(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        journal = Journal(path, flush_every=64)
        journal.admit("case-0", 0.0, {})
        journal.flush()
        assert read_journal(path).records == 1
        journal.close()

    def test_crash_after_stays_exact_under_batching(self, tmp_path):
        """The buffer is flushed before the simulated crash fires, so the
        journal holds precisely N records at every batch size."""
        for flush_every in (1, 3, 7):
            path = str(tmp_path / ("wal-%d.jsonl" % flush_every))
            journal = Journal(path, crash_after=5, flush_every=flush_every)
            with pytest.raises(SimulatedCrash) as caught:
                for index in range(10):
                    journal.admit("case-%d" % index, 0.0, {})
            assert caught.value.records_written == 5
            assert read_journal(path).records == 5

    def test_batched_journal_is_byte_identical(self, tmp_path, program):
        """Group commit changes *when* bytes hit disk, never which bytes."""
        plans = purchasing_plans(8)
        paths = []
        for flush_every in (1, 16):
            path = str(tmp_path / ("wal-%d.jsonl" % flush_every))
            runtime = Runtime(program, journal_path=path, flush_every=flush_every)
            runtime.submit_batch(plans)
            runtime.run()
            runtime.close()
            paths.append(path)
        first, second = (open(path, "rb").read() for path in paths)
        assert first == second

    def test_recovery_resumes_a_batched_journal(self, tmp_path, program):
        plans = purchasing_plans(6)
        expected = run_uninterrupted(program, plans)
        path = str(tmp_path / "wal.jsonl")
        crashed = Runtime(
            program, journal_path=path, crash_after=40, flush_every=8
        )
        crashed.submit_batch(plans)
        with pytest.raises(SimulatedCrash):
            crashed.run()
        recovered = Runtime.recover(path, program, flush_every=8)
        for case, outcomes in plans.items():
            if case not in recovered.known_cases:
                recovered.submit(case, outcomes)
        report = recovered.run()
        recovered.close()
        assert report.final_states() == expected.final_states()


class TestCompactSerialization:
    """Journal records are compact JSON with a fixed key order."""

    def test_records_are_compact_with_stable_key_order(self, tmp_path, program):
        path = str(tmp_path / "wal.jsonl")
        runtime = Runtime(program, journal_path=path)
        runtime.submit_batch(purchasing_plans(2))
        runtime.run()
        runtime.close()
        for line in open(path, encoding="utf-8").read().splitlines():
            # compact separators: no space after ',' or ':'
            assert ", " not in line and ": " not in line
            payload = json.loads(line)
            # fixed insertion order per record type: re-serializing with the
            # same constructors' order reproduces the line verbatim
            assert json.dumps(payload, separators=(",", ":")) == line
            if payload.get("rt") == "admit":
                keys = [k for k in payload if k != "object"]
                assert keys == ["rt", "case", "time", "outcomes"]
            elif payload.get("rt") == "obj":
                assert list(payload) == [
                    "rt", "kind", "case", "object", "sync", "time",
                ]
            elif payload.get("rt") == "complete":
                keys = [k for k in payload if k != "reason"]
                assert keys == ["rt", "case", "time", "status"]

    def test_compact_journal_round_trips_through_ingestion(
        self, tmp_path, program
    ):
        from repro.discover.ingest import log_from_journal

        path = str(tmp_path / "wal.jsonl")
        plans = purchasing_plans(4)
        runtime = Runtime(program, journal_path=path)
        runtime.submit_batch(plans)
        report = runtime.run()
        runtime.close()
        log = log_from_journal(path)
        assert {event.case for event in log} == set(plans)
        # start + finish per executed activity, one record per skip
        assert len(log) == sum(
            len(result.executed) * 2 + len(result.skipped)
            for result in report.results.values()
        )
