"""Extra event attributes (``Event.attrs``) survive every log format.

Object-centric runs tag each event with its ``object``/``role`` binding;
the attributes must round-trip through JSONL and CSV — including
non-ASCII object keys — because the journal doubles as a conformance
event log and the monitor rebuilds bindings from these attributes.
"""

from __future__ import annotations

import pytest

from repro.conformance.events import Event, EventLog

UNICODE_KEY = "bestellung-µ42-łódź"


def _tagged_log():
    return EventLog(
        [
            Event("c-1", "pack_item", "start", 1.0, attrs=(("object", UNICODE_KEY), ("role", "item"))),
            Event("c-1", "pack_item", "finish", 2.0, attrs=(("object", UNICODE_KEY), ("role", "item"))),
            Event("c-2", "approve_order", "start", 0.0),  # untagged event mixes in
        ]
    )


class TestEventAttrs:
    def test_attr_lookup_and_default(self):
        event = _tagged_log().events[0]
        assert event.attr("object") == UNICODE_KEY
        assert event.attr("role") == "item"
        assert event.attr("missing", "fallback") == "fallback"

    def test_attrs_are_sorted_and_hashable(self):
        event = Event("c", "a", "start", 0.0, attrs=(("z", 1), ("a", 2)))
        assert event.attrs == (("a", 2), ("z", 1))
        assert hash(event) == hash(
            Event("c", "a", "start", 0.0, attrs={"a": 2, "z": 1})
        )

    def test_dict_round_trip_keeps_extra_keys(self):
        event = _tagged_log().events[0]
        payload = event.to_dict()
        assert payload["object"] == UNICODE_KEY
        assert Event.from_dict(payload) == event

    def test_reserved_keys_never_collide_into_attrs(self):
        event = Event.from_dict(
            {"case": "c", "activity": "a", "lifecycle": "start", "time": 0.0}
        )
        assert event.attrs == ()


class TestLogRoundTrips:
    def test_jsonl(self):
        log = _tagged_log()
        assert EventLog.from_jsonl(log.to_jsonl()) == log

    def test_csv(self):
        log = _tagged_log()
        text = log.to_csv()
        assert UNICODE_KEY in text
        assert EventLog.from_csv(text) == log

    def test_csv_without_attrs_keeps_legacy_header(self):
        log = EventLog([Event("c", "a", "start", 0.0)])
        header = log.to_csv().splitlines()[0]
        assert "attrs" not in header
        assert EventLog.from_csv(log.to_csv()) == log

    def test_jsonl_file_round_trip(self, tmp_path):
        log = _tagged_log()
        path = tmp_path / "tagged.jsonl"
        log.save_jsonl(str(path))
        assert EventLog.load_jsonl(str(path)) == log

    @pytest.mark.parametrize("value", [3, 2.5, True, None, "text"])
    def test_non_string_attr_values_round_trip(self, value):
        log = EventLog([Event("c", "a", "start", 0.0, attrs=(("extra", value),))])
        assert EventLog.from_jsonl(log.to_jsonl()) == log
        assert EventLog.from_csv(log.to_csv()) == log
