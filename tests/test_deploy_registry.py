"""Tests for the versioned program registry (`repro.deploy.registry`).

Pinned contract: version 1 of a registry seeded from a weave serves the
same minimal set the pipeline computed; every `redeploy` produces a
minimal set bit-identical to a cold minimize of the edited declared set
(the incremental rebase is an optimization, never a semantic change);
invalid edit batches raise before any registry state changes.
"""

from __future__ import annotations

import json

import pytest

from repro.core.constraints import Constraint
from repro.deploy import ProgramRegistry, load_edits
from repro.core.minimize import minimize_fast


@pytest.fixture(scope="module")
def registry(purchasing_weave):
    return ProgramRegistry.from_weave(purchasing_weave)


def _keys(sc):
    return {(c.source, c.target, c.condition) for c in sc.constraints}


def _redundant(version):
    """Declared edges the minimizer removed — behavior-preserving removals."""
    minimal = _keys(version.minimal)
    return [c for c in version.declared.constraints if
            (c.source, c.target, c.condition) not in minimal]


class TestSeeding:
    def test_v1_matches_the_weave(self, registry, purchasing_weave):
        assert registry.versions() == (1,)
        assert registry.current_version == 1
        v1 = registry.current
        assert v1.version == 1
        assert _keys(v1.minimal) == _keys(purchasing_weave.minimal)
        assert _keys(v1.declared) == _keys(purchasing_weave.asc)

    def test_rejects_port_level_sets(self, purchasing_weave, purchasing_process):
        with pytest.raises(ValueError, match="activity"):
            ProgramRegistry(purchasing_process, purchasing_weave.merged)

    def test_programs_map_serves_runtime_recover(self, registry):
        programs = registry.programs()
        assert set(programs) == set(registry.versions())
        assert programs[1] is registry.version(1).program

    def test_unknown_version_lookup(self, registry):
        with pytest.raises(KeyError, match="no deployed version 99"):
            registry.version(99)


class TestRedeploy:
    def test_incremental_equals_cold(self, purchasing_weave):
        registry = ProgramRegistry.from_weave(purchasing_weave)
        removed = (_redundant(registry.current)[0],)
        result = registry.redeploy(removed=removed)
        assert result.incremental
        assert result.version.version == 2
        cold = minimize_fast(result.version.declared, semantics=registry.semantics)
        assert _keys(result.version.minimal) == _keys(cold)

    def test_cold_flag_forces_the_baseline(self, purchasing_weave):
        registry = ProgramRegistry.from_weave(purchasing_weave)
        removed = (_redundant(registry.current)[0],)
        result = registry.redeploy(removed=removed, cold=True)
        assert not result.incremental
        reference = ProgramRegistry.from_weave(purchasing_weave)
        assert _keys(result.version.minimal) == _keys(
            reference.redeploy(removed=removed).version.minimal
        )

    def test_versions_accumulate(self, purchasing_weave):
        registry = ProgramRegistry.from_weave(purchasing_weave)
        for index, constraint in enumerate(_redundant(registry.current)[:3]):
            registry.redeploy(removed=(constraint,))
            assert registry.current_version == index + 2
        assert registry.versions() == (1, 2, 3, 4)
        # Old versions stay addressable for in-flight drain cohorts.
        assert registry.version(1).program is not registry.current.program

    def test_unknown_removal_raises_before_publishing(self, purchasing_weave):
        registry = ProgramRegistry.from_weave(purchasing_weave)
        with pytest.raises(ValueError, match="undeclared"):
            registry.redeploy(removed=(Constraint("nope", "also_nope"),))
        assert registry.versions() == (1,)

    def test_unknown_activity_raises_before_publishing(self, purchasing_weave):
        registry = ProgramRegistry.from_weave(purchasing_weave)
        with pytest.raises(ValueError, match="unknown activity"):
            registry.redeploy(added=(Constraint("recClient_po", "martian"),))
        assert registry.versions() == (1,)

    def test_duplicate_addition_is_deduped(self, purchasing_weave):
        registry = ProgramRegistry.from_weave(purchasing_weave)
        existing = registry.current.declared.constraints[0]
        result = registry.redeploy(added=(existing, existing))
        assert _keys(result.version.declared) == _keys(registry.version(1).declared)

    def test_obs_counters(self, purchasing_weave):
        from repro.obs import Observability

        obs = Observability()
        registry = ProgramRegistry.from_weave(purchasing_weave, obs=obs)
        registry.redeploy(removed=(_redundant(registry.current)[0],))
        assert obs.metrics.get("repro_deploy_redeploys_total").value() == 1.0
        histogram = obs.metrics.get("repro_deploy_rebase_seconds")
        assert histogram is not None
        names = [s.name for s in obs.tracer.finished_spans()]
        assert "deploy.redeploy" in names


class TestLoadEdits:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "edits.json"
        path.write_text(json.dumps({
            "add": [{"source": "a", "target": "b", "condition": "T"}],
            "remove": [{"source": "c", "target": "d"}],
        }))
        added, removed = load_edits(str(path))
        assert added == (Constraint("a", "b", "T"),)
        assert removed == (Constraint("c", "d"),)

    def test_missing_keys_default_empty(self, tmp_path):
        path = tmp_path / "edits.json"
        path.write_text("{}")
        assert load_edits(str(path)) == ((), ())

    def test_malformed_entries_raise(self, tmp_path):
        path = tmp_path / "edits.json"
        path.write_text(json.dumps({"add": [{"source": "a"}]}))
        with pytest.raises(ValueError, match="source.*target|'source' and 'target'"):
            load_edits(str(path))

    def test_non_object_payload_raises(self, tmp_path):
        path = tmp_path / "edits.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="JSON object"):
            load_edits(str(path))
