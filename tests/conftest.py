"""Shared fixtures: the paper's workloads, woven once per session."""

from __future__ import annotations

import pytest

from repro.core.pipeline import DSCWeaver, extract_all_dependencies
from repro.workloads.deployment import build_deployment_process, deployment_cooperation
from repro.workloads.loan import build_loan_process, loan_cooperation
from repro.workloads.purchasing import (
    build_purchasing_process,
    purchasing_cooperation_dependencies,
)
from repro.workloads.purchasing_constructs import build_purchasing_constructs
from repro.workloads.insurance import build_insurance_process, insurance_cooperation
from repro.workloads.orders import build_orders_process, orders_dependency_set
from repro.workloads.travel import build_travel_process, travel_cooperation


@pytest.fixture(scope="session")
def purchasing_process():
    return build_purchasing_process()


@pytest.fixture(scope="session")
def purchasing_dependencies(purchasing_process):
    return extract_all_dependencies(
        purchasing_process,
        cooperation=purchasing_cooperation_dependencies(purchasing_process),
    )


@pytest.fixture(scope="session")
def purchasing_weave(purchasing_process, purchasing_dependencies):
    return DSCWeaver().weave(purchasing_process, purchasing_dependencies)


@pytest.fixture(scope="session")
def purchasing_constructs():
    return build_purchasing_constructs()


@pytest.fixture(scope="session")
def loan_weave():
    process = build_loan_process()
    dependencies = extract_all_dependencies(
        process, cooperation=loan_cooperation(process).dependencies
    )
    return process, DSCWeaver().weave(process, dependencies)


@pytest.fixture(scope="session")
def travel_weave():
    process = build_travel_process()
    dependencies = extract_all_dependencies(
        process, cooperation=travel_cooperation(process).dependencies
    )
    return process, DSCWeaver().weave(process, dependencies)


@pytest.fixture(scope="session")
def deployment_weave():
    process = build_deployment_process()
    dependencies = extract_all_dependencies(
        process, cooperation=deployment_cooperation(process).dependencies
    )
    return process, DSCWeaver().weave(process, dependencies)


@pytest.fixture(scope="session")
def insurance_weave():
    process = build_insurance_process()
    dependencies = extract_all_dependencies(
        process, cooperation=insurance_cooperation(process).dependencies
    )
    return process, DSCWeaver().weave(process, dependencies)


@pytest.fixture(scope="session")
def orders_weave():
    process = build_orders_process()
    return process, DSCWeaver().weave(process, orders_dependency_set())


@pytest.fixture(scope="session")
def orders_runtime_program(orders_weave):
    from repro.runtime import program_from_weave

    _process, result = orders_weave
    return program_from_weave(result, "minimal", target="runtime")


@pytest.fixture(scope="session")
def all_weaves(
    purchasing_process,
    purchasing_weave,
    deployment_weave,
    loan_weave,
    travel_weave,
    insurance_weave,
):
    """``name -> (process, weave result)`` for every workload."""
    return {
        "purchasing": (purchasing_process, purchasing_weave),
        "deployment": deployment_weave,
        "loan": loan_weave,
        "travel": travel_weave,
        "insurance": insurance_weave,
    }
