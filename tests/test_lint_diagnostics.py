"""Diagnostics framework: severities, locations, reports, baselines."""

from __future__ import annotations

import pytest

from repro.lint import (
    Baseline,
    Diagnostic,
    LintReport,
    Severity,
    SourceLocation,
    activity_location,
    constraint_location,
)


def _diag(code="SYNC001", severity=Severity.WARNING, name="a", message="m"):
    return Diagnostic(
        code=code,
        severity=severity,
        message=message,
        location=activity_location(name),
    )


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO.rank < Severity.WARNING.rank < Severity.ERROR.rank
        assert Severity.ERROR.at_least(Severity.WARNING)
        assert Severity.WARNING.at_least(Severity.WARNING)
        assert not Severity.INFO.at_least(Severity.WARNING)

    def test_from_name(self):
        assert Severity.from_name("warning") is Severity.WARNING
        with pytest.raises(ValueError):
            Severity.from_name("fatal")

    def test_str(self):
        assert str(Severity.ERROR) == "error"


class TestSourceLocation:
    def test_fully_qualified(self):
        assert activity_location("shipOrder").fully_qualified == "activity:shipOrder"

    def test_constraint_rendering(self):
        unconditional = constraint_location("a", "b")
        assert unconditional.name == "a -> b"
        conditional = constraint_location("g", "b", "T")
        assert conditional.name == "g ->T b"

    def test_span_rendering(self):
        location = SourceLocation("constraint", "a -> b", span=(3, 4))
        assert "dscl:3-4" in str(location)


class TestDiagnostic:
    def test_fingerprint_stable_across_wording(self):
        first = _diag(message="one wording")
        second = _diag(message="another wording")
        assert first.fingerprint == second.fingerprint

    def test_fingerprint_differs_by_location_and_code(self):
        assert _diag(name="a").fingerprint != _diag(name="b").fingerprint
        assert _diag(code="SYNC001").fingerprint != _diag(code="SYNC002").fingerprint

    def test_render_includes_evidence_and_fix(self):
        diagnostic = Diagnostic(
            code="SYNC001",
            severity=Severity.WARNING,
            message="race",
            location=activity_location("a"),
            evidence=("variable: x",),
            fix="add a constraint",
        )
        rendered = diagnostic.render()
        assert "evidence: variable: x" in rendered
        assert "fix: add a constraint" in rendered

    def test_with_severity(self):
        assert _diag().with_severity(Severity.ERROR).severity is Severity.ERROR


class TestLintReport:
    def test_sorted_errors_first(self):
        report = LintReport.from_diagnostics(
            [
                _diag(code="ZZZ001", severity=Severity.INFO),
                _diag(code="AAA001", severity=Severity.ERROR),
                _diag(code="MMM001", severity=Severity.WARNING),
            ]
        )
        assert [d.severity for d in report.findings] == [
            Severity.ERROR,
            Severity.WARNING,
            Severity.INFO,
        ]

    def test_counts_and_max_severity(self):
        report = LintReport.from_diagnostics(
            [_diag(severity=Severity.WARNING), _diag(name="b", severity=Severity.INFO)]
        )
        assert report.counts_by_severity() == {"info": 1, "warning": 1, "error": 0}
        assert report.max_severity is Severity.WARNING
        assert not report.has_errors

    def test_empty_report(self):
        report = LintReport.from_diagnostics([])
        assert report.max_severity is None
        assert report.exit_code() == 0
        assert "0 finding(s)" in report.summary()

    def test_gating_thresholds(self):
        report = LintReport.from_diagnostics([_diag(severity=Severity.WARNING)])
        assert report.exit_code(Severity.ERROR) == 0
        assert report.exit_code(Severity.WARNING) == 1
        assert report.exit_code(Severity.INFO) == 1

    def test_by_code_and_by_severity(self):
        report = LintReport.from_diagnostics(
            [_diag(code="SYNC001"), _diag(code="RED001", severity=Severity.INFO)]
        )
        assert len(report.by_code("SYNC001")) == 1
        assert len(report.by_severity(Severity.INFO)) == 1

    def test_summary_mentions_suppressed(self):
        report = LintReport.from_diagnostics([], suppressed=[_diag()])
        assert "1 suppressed" in report.summary()


class TestBaseline:
    def test_round_trip(self):
        diagnostics = [_diag(name="a"), _diag(name="b")]
        baseline = Baseline.from_diagnostics(diagnostics)
        restored = Baseline.from_json(baseline.to_json())
        assert len(restored) == 2
        assert all(restored.matches(d) for d in diagnostics)
        assert not restored.matches(_diag(name="c"))

    def test_save_and_load(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        Baseline.from_diagnostics([_diag()]).save(path)
        assert Baseline.load(path).matches(_diag())

    def test_version_check(self):
        with pytest.raises(ValueError, match="version"):
            Baseline.from_json('{"version": 99, "suppressions": []}')

    def test_contains(self):
        diagnostic = _diag()
        baseline = Baseline.from_diagnostics([diagnostic])
        assert diagnostic.fingerprint in baseline
