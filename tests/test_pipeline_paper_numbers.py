"""End-to-end reproduction of the paper's published numbers.

This is the headline test module: Table 1, Table 2, Figure 7, Figure 8 and
Figure 9 of the Purchasing process, exactly as reported, plus the strict /
reachability ablation documented in DESIGN.md.
"""

from __future__ import annotations

import pytest

from repro.core.closure import Semantics
from repro.core.equivalence import transitive_equivalent
from repro.core.minimize import is_minimal, minimize
from repro.core.pipeline import DSCWeaver
from repro.errors import CycleError

#: The 17 constraints of Figure 9 as produced by insertion-order
#: minimization.  (Minimal sets are not unique; this one is the
#: deterministic output of the pipeline and is transitive-equivalent to the
#: paper's figure.)
FIGURE9_EDGES = {
    "recClient_po -> invCredit_po",
    "invCredit_po -> recCredit_au",
    "recCredit_au -> if_au",
    "if_au ->T invPurchase_po",
    "if_au ->T invShip_po",
    "if_au ->T invProduction_po",
    "if_au ->F set_oi",
    "invPurchase_po -> invPurchase_si",
    "invPurchase_si -> recPurchase_oi",
    "recPurchase_oi -> replyClient_oi",
    "invShip_po -> recShip_si",
    "invShip_po -> recShip_ss",
    "recShip_si -> invPurchase_si",
    "recShip_ss -> invProduction_ss",
    "invProduction_po -> replyClient_oi",
    "invProduction_ss -> replyClient_oi",
    "set_oi -> replyClient_oi",
}


class TestTable1:
    def test_category_counts(self, purchasing_weave):
        assert purchasing_weave.report.raw_by_kind == {
            "data": 9,
            "control": 10,
            "service": 15,
            "cooperation": 6,
        }

    def test_total(self, purchasing_weave):
        assert purchasing_weave.report.raw_total == 40


class TestTable2:
    def test_23_constraints_removed(self, purchasing_weave):
        """The paper: 'There are 23 constraints removed from the original
        synchronization constraints set in Table 1.'"""
        assert purchasing_weave.report.removed == 23

    def test_stage_counts(self, purchasing_weave):
        report = purchasing_weave.report
        assert report.raw_total == 40
        assert report.merged == 39  # one data/cooperation duplicate
        assert report.translated == 30
        assert report.minimal == 17

    def test_stage_decomposition_sums(self, purchasing_weave):
        report = purchasing_weave.report
        assert (
            report.removed_by_merge
            + report.removed_by_translation
            + report.removed_by_minimization
            == report.removed
        )

    def test_reduction_ratio(self, purchasing_weave):
        assert purchasing_weave.report.reduction_ratio == pytest.approx(23 / 40)

    def test_table_rendering(self, purchasing_weave):
        table = purchasing_weave.report.as_table()
        assert "40" in table and "17" in table and "23" in table


class TestFigure7:
    def test_merged_set_shape(self, purchasing_weave):
        merged = purchasing_weave.merged
        assert len(merged) == 39
        assert len(merged.activities) == 14
        # S contains every port incl. the dummies (Figure 7 shows them).
        assert set(merged.externals) == {
            "Credit",
            "Credit_d",
            "Purchase1",
            "Purchase2",
            "Purchase_d",
            "Ship",
            "Ship_d",
            "Production1",
            "Production2",
        }

    def test_merged_contains_each_dimension(self, purchasing_weave):
        merged = purchasing_weave.merged
        assert merged.has_constraint("recClient_po", "invCredit_po")  # data
        assert merged.has_constraint("if_au", "invPurchase_po", "T")  # control
        assert merged.has_constraint("Purchase1", "Purchase2")  # service
        assert merged.has_constraint("invShip_po", "replyClient_oi")  # cooperation


class TestFigure9:
    def test_exact_minimal_edges(self, purchasing_weave):
        rendered = {str(c) for c in purchasing_weave.minimal.constraints}
        assert rendered == FIGURE9_EDGES

    def test_minimal_is_minimal(self, purchasing_weave):
        assert is_minimal(purchasing_weave.minimal, Semantics.GUARD_AWARE)

    def test_minimal_equivalent_to_translated(self, purchasing_weave):
        assert transitive_equivalent(
            purchasing_weave.minimal, purchasing_weave.asc, Semantics.GUARD_AWARE
        )

    def test_redundant_cooperation_edges_removed(self, purchasing_weave):
        """recPurchase_oi ->o replyClient_oi's cooperation duplicate and the
        Ship-side cooperation constraints are covered by data paths."""
        minimal = purchasing_weave.minimal
        assert not minimal.has_constraint("invShip_po", "replyClient_oi")
        assert not minimal.has_constraint("recShip_si", "replyClient_oi")
        assert not minimal.has_constraint("recShip_ss", "replyClient_oi")

    def test_production_cooperation_edges_kept(self, purchasing_weave):
        """Production has no callback, so only cooperation orders it before
        the reply — those edges must survive."""
        minimal = purchasing_weave.minimal
        assert minimal.has_constraint("invProduction_po", "replyClient_oi")
        assert minimal.has_constraint("invProduction_ss", "replyClient_oi")

    def test_service_required_sequencing_kept(self, purchasing_weave):
        """invPurchase_po -> invPurchase_si is required (state-aware
        Purchase service) even though no data is exchanged."""
        assert purchasing_weave.minimal.has_constraint(
            "invPurchase_po", "invPurchase_si"
        )


class TestSemanticsAblation:
    def test_strict_semantics_keeps_more(
        self, purchasing_process, purchasing_dependencies
    ):
        """Under the literal Definition 3-5 semantics the data fan-out edges
        from recClient_po are not removable (their bypass runs through the
        conditional guard) and the minimal set has 21 constraints."""
        result = DSCWeaver(semantics=Semantics.STRICT).weave(
            purchasing_process, purchasing_dependencies
        )
        assert result.report.minimal == 21
        assert result.minimal.has_constraint("recClient_po", "invPurchase_po")

    def test_reachability_semantics_matches_guard_aware_here(
        self, purchasing_process, purchasing_dependencies
    ):
        """On the Purchasing process, pure reachability happens to coincide
        with guard-aware (every conditional fact is guard-implied)."""
        result = DSCWeaver(semantics=Semantics.REACHABILITY).weave(
            purchasing_process, purchasing_dependencies
        )
        assert result.report.minimal == 17

    def test_naive_algorithm_same_result(
        self, purchasing_process, purchasing_dependencies, purchasing_weave
    ):
        result = DSCWeaver(algorithm="naive").weave(
            purchasing_process, purchasing_dependencies
        )
        assert set(result.minimal.constraints) == set(
            purchasing_weave.minimal.constraints
        )


class TestCycleDetection:
    def test_contradictory_cooperation_raises(self, purchasing_process):
        from repro.core.pipeline import extract_all_dependencies
        from repro.deps.types import Dependency, DependencyKind

        bad = extract_all_dependencies(
            purchasing_process,
            cooperation=[
                Dependency(
                    DependencyKind.COOPERATION, "replyClient_oi", "recClient_po"
                )
            ],
        )
        with pytest.raises(CycleError) as excinfo:
            DSCWeaver().weave(purchasing_process, bad)
        assert "recClient_po" in str(excinfo.value)
