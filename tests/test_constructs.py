"""Tests for the sequencing-construct baseline: AST, orderings, CFG, PDG,
specification analysis (Figure 2) and rewriting."""

from __future__ import annotations

import pytest

from repro.constructs.analysis import (
    activities_of,
    immediate_orderings,
    implied_orderings,
    sinks,
    sources,
)
from repro.constructs.ast import Act, Flow, Link, Sequence, Switch, While
from repro.constructs.cfg import construct_to_cfg
from repro.constructs.pdg import build_pdg, structural_control_dependencies
from repro.constructs.rewrite import constructs_to_constraints
from repro.constructs.specification import analyze_specification
from repro.core.closure import Semantics
from repro.core.minimize import minimize
from repro.errors import ModelError


def sample_switch() -> Sequence:
    return Sequence(
        Act("in"),
        Switch("g", cases={"T": Sequence(Act("a"), Act("b")), "F": Act("c")}),
        Act("out"),
    )


class TestAst:
    def test_empty_sequence_rejected(self):
        with pytest.raises(ModelError):
            Sequence()

    def test_link_self_loop_rejected(self):
        with pytest.raises(ModelError):
            Link("a", "a")

    def test_switch_requires_cases(self):
        with pytest.raises(ModelError):
            Switch("g", cases={})

    def test_rendering(self):
        tree = sample_switch()
        text = str(tree)
        assert "sequence(" in text and "switch(g;" in text


class TestActivitiesAndBoundaries:
    def test_activities_in_order(self):
        assert activities_of(sample_switch()) == ["in", "g", "a", "b", "c", "out"]

    def test_duplicate_activity_rejected(self):
        with pytest.raises(ModelError):
            activities_of(Sequence(Act("x"), Act("x")))

    def test_sources_and_sinks(self):
        tree = sample_switch()
        assert sources(tree) == {"in"}
        assert sinks(tree) == {"out"}
        switch = tree.children[1]
        assert sources(switch) == {"g"}
        assert sinks(switch) == {"b", "c", "g"}

    def test_flow_sources_sinks(self):
        flow = Flow(Sequence(Act("a"), Act("b")), Act("c"))
        assert sources(flow) == {"a", "c"}
        assert sinks(flow) == {"b", "c"}

    def test_while_sinks_are_guard(self):
        loop = While("g", Sequence(Act("a"), Act("b")))
        assert sinks(loop) == {"g"}


class TestOrderings:
    def test_sequence_orders_all_pairs(self):
        tree = Sequence(Act("a"), Act("b"), Act("c"))
        assert implied_orderings(tree) == {("a", "b"), ("b", "c"), ("a", "c")}

    def test_flow_is_unordered_without_links(self):
        tree = Flow(Act("a"), Act("b"))
        assert implied_orderings(tree) == set()

    def test_flow_links_add_order(self):
        tree = Flow(
            Sequence(Act("a"), Act("b")),
            Sequence(Act("c"), Act("d")),
            links=[Link("b", "c")],
        )
        implied = implied_orderings(tree)
        assert ("b", "c") in implied
        assert ("a", "d") in implied  # transitively through the link

    def test_switch_cases_unordered_across(self):
        implied = implied_orderings(sample_switch())
        assert ("a", "c") not in implied and ("c", "a") not in implied
        assert ("g", "a") in implied and ("g", "c") in implied
        assert ("b", "out") in implied and ("c", "out") in implied
        # The guard itself precedes the join (empty-path case).
        assert ("g", "out") in implied

    def test_switch_edge_conditions(self):
        edges = immediate_orderings(sample_switch())
        conditions = {(s, t): c for s, t, c in edges}
        assert conditions[("g", "a")] == "T"
        assert conditions[("g", "c")] == "F"

    def test_while_body_after_guard_only(self):
        tree = Sequence(Act("in"), While("g", Act("body")), Act("out"))
        implied = implied_orderings(tree)
        assert ("g", "body") in implied
        assert ("g", "out") in implied
        # Zero-iteration possibility: body does not precede out.
        assert ("body", "out") not in implied


class TestCfg:
    def test_linear_cfg(self):
        cfg = construct_to_cfg(Sequence(Act("a"), Act("b")))
        assert cfg.graph.has_edge("a", "b")
        assert cfg.graph.has_edge(cfg.entry, "a")
        assert cfg.graph.has_edge("b", cfg.exit)

    def test_flow_fork_join(self):
        cfg = construct_to_cfg(Flow(Act("a"), Act("b")))
        assert cfg.graph.has_edge("__fork_1", "a") or cfg.graph.has_edge(
            "__fork_1", "b"
        )
        assert cfg.real_nodes() == ["a", "b"]

    def test_switch_branch_labels(self):
        cfg = construct_to_cfg(sample_switch())
        assert cfg.branch_labels[("g", "a")] == "T"
        assert cfg.branch_labels[("g", "c")] == "F"

    def test_flow_links_present_in_cfg(self):
        cfg = construct_to_cfg(
            Flow(Act("a"), Act("b"), links=[Link("a", "b")])
        )
        assert cfg.graph.has_edge("a", "b")


class TestPdg:
    def test_purchasing_pdg_matches_table1(
        self, purchasing_process, purchasing_constructs
    ):
        pdg = build_pdg(purchasing_process, purchasing_constructs)
        data = {str(d) for d in pdg.data_dependencies}
        control = {str(d) for d in pdg.control_dependencies}
        assert len(data) == 9
        assert "recShip_si ->d invPurchase_si" in data
        assert "recShip_ss ->d invProduction_ss" in data
        assert len(control) == 10
        assert "if_au ->T invPurchase_po" in control
        assert "if_au ->F set_oi" in control
        assert "if_au ->NONE replyClient_oi" in control

    def test_structural_control_nested(self):
        tree = Sequence(
            Act("in"),
            Switch(
                "g1",
                cases={
                    "T": Sequence(
                        Act("x"),
                        Switch("g2", cases={"T": Act("y"), "F": Act("z")}),
                        Act("w"),
                    ),
                    "F": Act("other"),
                },
            ),
            Act("out"),
        )
        control = {str(d) for d in structural_control_dependencies(tree)}
        assert "g1 ->T x" in control
        assert "g1 ->T g2" in control
        assert "g2 ->T y" in control
        assert "g1 ->T y" not in control  # nested guard owns it
        assert "g1 ->NONE out" in control
        assert "g1 ->T w" in control

    def test_flow_members_control_dependent_on_enclosing_switch(self):
        tree = Sequence(
            Act("in"),
            Switch("g", cases={"T": Flow(Act("p"), Act("q"))}),
        )
        control = {str(d) for d in structural_control_dependencies(tree)}
        assert "g ->T p" in control
        assert "g ->T q" in control

    def test_pdg_as_dependency_set(self, purchasing_process, purchasing_constructs):
        pdg = build_pdg(purchasing_process, purchasing_constructs)
        merged = pdg.as_dependency_set()
        assert merged.counts()["data"] == 9
        assert merged.counts()["control"] == 10


class TestSpecificationAnalysis:
    def test_figure2_diagnosis(self, purchasing_weave, purchasing_constructs):
        """The paper's Section 2 analysis: the Production sequencing is
        over-specified; everything required is satisfied."""
        report = analyze_specification(purchasing_constructs, purchasing_weave.asc)
        assert ("invProduction_po", "invProduction_ss") in report.over_specified
        assert report.under_specified == ()
        assert not report.is_exact  # over-specification exists

    def test_figure2_purchase_sequencing_is_required(
        self, purchasing_weave, purchasing_constructs
    ):
        report = analyze_specification(purchasing_constructs, purchasing_weave.asc)
        assert ("invPurchase_po", "invPurchase_si") in report.satisfied
        assert ("invPurchase_po", "invPurchase_si") not in report.over_specified

    def test_figure5_scheme_is_under_specified(
        self, purchasing_process, purchasing_weave, purchasing_constructs
    ):
        """Data + control dependencies alone miss the cooperation and
        service requirements (Section 3.1's observation about Figure 5)."""
        from repro.constructs.rewrite import constructs_to_constraints
        from repro.deps.controlflow import extract_control_dependencies
        from repro.deps.dataflow import extract_data_dependencies
        from repro.dscl.compiler import compile_dependencies
        from repro.deps.registry import DependencySet
        from repro.validation.coverage import compare_constraint_sets

        data_control_only = DependencySet(
            extract_data_dependencies(purchasing_process)
            + extract_control_dependencies(purchasing_process)
        )
        compiled = compile_dependencies(purchasing_process, data_control_only)
        report = compare_constraint_sets(compiled.sc, purchasing_weave.asc)
        assert not report.is_sufficient
        missing = set(report.missing)
        # The invoice can escape before the subprocesses finish...
        assert ("invProduction_ss", "replyClient_oi") in missing
        # ...and the Purchase port ordering is unenforced.
        assert ("invPurchase_po", "invPurchase_si") in missing

    def test_summary_format(self, purchasing_weave, purchasing_constructs):
        report = analyze_specification(purchasing_constructs, purchasing_weave.asc)
        assert "over-specified=" in report.summary()


class TestRewrite:
    def test_rewrite_minimizes_to_constructs_shape(
        self, purchasing_process, purchasing_constructs
    ):
        sc = constructs_to_constraints(purchasing_process, purchasing_constructs)
        # The rewrite keeps the over-specified Production edge.
        assert sc.has_constraint("invProduction_po", "invProduction_ss")
        minimal = minimize(sc, Semantics.GUARD_AWARE)
        # Minimization of the construct set cannot remove it (it is not
        # redundant *within* the construct semantics, only against the
        # true dependencies).
        assert minimal.has_constraint("invProduction_po", "invProduction_ss")

    def test_rewrite_guard_map(self, purchasing_process, purchasing_constructs):
        sc = constructs_to_constraints(purchasing_process, purchasing_constructs)
        from repro.analysis.conditions import Cond

        assert sc.guard_of("invPurchase_po") == frozenset({Cond("if_au", "T")})
        assert sc.guard_of("set_oi") == frozenset({Cond("if_au", "F")})
        assert sc.guard_of("replyClient_oi") == frozenset()

    def test_rewrite_switch_conditions(self, purchasing_process, purchasing_constructs):
        sc = constructs_to_constraints(purchasing_process, purchasing_constructs)
        assert sc.has_constraint("if_au", "set_oi", "F")
        assert sc.has_constraint("if_au", "invPurchase_po", "T")
