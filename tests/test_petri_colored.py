"""Tests for the Colored Petri Net extension (Section 4.1's CPN remark)."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.closure import Semantics
from repro.core.constraints import Constraint, SynchronizationConstraintSet
from repro.core.minimize import minimize
from repro.errors import NotEnabledError, PetriNetError
from repro.petri.colored import (
    PLAIN,
    SKIPPED,
    ColoredMarking,
    ColoredPetriNet,
    InputArc,
    OutputArc,
    colored_net_completes,
    colored_reachable_markings,
    constraint_set_to_colored_net,
)
from tests.strategies import constraint_sets

SLOW = settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestColoredMarking:
    def test_immutability(self):
        marking = ColoredMarking({("p", "T"): 1})
        with pytest.raises(AttributeError):
            marking.x = 1  # type: ignore[attr-defined]

    def test_colors_at(self):
        marking = ColoredMarking({("p", "T"): 1, ("p", "F"): 2, ("q", PLAIN): 1})
        assert sorted(marking.colors_at("p")) == ["F", "T"]
        assert marking.total_at("p") == 3
        assert marking.total() == 4

    def test_add_remove_by_color(self):
        marking = ColoredMarking()
        marking = marking.add("p", "T")
        assert marking.count("p", "T") == 1
        assert marking.count("p", "F") == 0
        with pytest.raises(PetriNetError):
            marking.remove("p", "F")

    def test_eq_and_hash(self):
        assert ColoredMarking({("p", "T"): 1}) == ColoredMarking({("p", "T"): 1})
        assert ColoredMarking({("p", "T"): 1}) != ColoredMarking({("p", "F"): 1})


class TestColoredFiring:
    def _net(self) -> ColoredPetriNet:
        net = ColoredPetriNet()
        for place in ("a", "b"):
            net.add_place(place)
        net.add_transition("only_t")
        net.add_input("only_t", InputArc.of("a", "T"))
        net.add_output("only_t", OutputArc("b", PLAIN))
        net.add_transition("any_color")
        net.add_input("any_color", InputArc.any("a"))
        net.add_output("any_color", OutputArc("b", "out"))
        return net

    def test_color_filtering(self):
        net = self._net()
        assert not net.is_enabled("only_t", ColoredMarking({("a", "F"): 1}))
        assert net.is_enabled("only_t", ColoredMarking({("a", "T"): 1}))
        assert net.is_enabled("any_color", ColoredMarking({("a", "F"): 1}))

    def test_fire_moves_token(self):
        net = self._net()
        after = net.fire("only_t", ColoredMarking({("a", "T"): 1}))
        assert after == ColoredMarking({("b", PLAIN): 1})

    def test_fire_disabled_raises(self):
        net = self._net()
        with pytest.raises(NotEnabledError):
            net.fire("only_t", ColoredMarking({("a", "F"): 1}))

    def test_unknown_place_rejected(self):
        net = ColoredPetriNet()
        net.add_transition("t")
        with pytest.raises(PetriNetError):
            net.add_input("t", InputArc.any("ghost"))


class TestColoredTranslation:
    def test_purchasing_completes_on_all_branches(self, purchasing_weave):
        net, initial = constraint_set_to_colored_net(purchasing_weave.minimal)
        assert colored_net_completes(net, initial)
        markings, truncated = colored_reachable_markings(net, initial)
        assert not truncated
        # Same behavioral state-space size as the black-token translation.
        assert len(markings) == 166

    def test_outcome_colors_visible_in_markings(self, purchasing_weave):
        net, initial = constraint_set_to_colored_net(purchasing_weave.minimal)
        markings, _ = colored_reachable_markings(net, initial)
        colored = {
            color
            for marking in markings
            for (_place, color), _count in marking.items()
        }
        assert "T" in colored and "F" in colored  # outcomes are first-class

    def test_nested_guards_emit_skipped_color(self):
        from repro.core.pipeline import DSCWeaver, extract_all_dependencies
        from repro.workloads.insurance import (
            build_insurance_process,
            insurance_cooperation,
        )

        process = build_insurance_process()
        result = DSCWeaver().weave(
            process,
            extract_all_dependencies(
                process, cooperation=insurance_cooperation(process).dependencies
            ),
        )
        net, initial = constraint_set_to_colored_net(result.minimal)
        assert colored_net_completes(net, initial)
        markings, _ = colored_reachable_markings(net, initial)
        colors = {
            color for marking in markings for (_p, color), _n in marking.items()
        }
        # When if_valid=F, the inner guard if_severity is skipped and its
        # dependents see the SKIPPED color.
        assert SKIPPED in colors

    def test_rejects_mixed_sets(self, purchasing_weave):
        with pytest.raises(PetriNetError):
            constraint_set_to_colored_net(purchasing_weave.merged)

    def test_cyclic_set_does_not_complete(self):
        sc = SynchronizationConstraintSet(
            ["a", "b"],
            constraints=[Constraint("a", "b"), Constraint("b", "a")],
        )
        net, initial = constraint_set_to_colored_net(sc)
        assert not colored_net_completes(net, initial)

    @SLOW
    @given(constraint_sets(max_nodes=6, max_edges=9))
    def test_random_sets_complete(self, sc):
        net, initial = constraint_set_to_colored_net(sc)
        assert colored_net_completes(net, initial, state_limit=50_000)

    @SLOW
    @given(constraint_sets(max_nodes=6, max_edges=9))
    def test_agrees_with_black_token_translation(self, sc):
        """Both Petri translations agree on behavioral acceptability."""
        from repro.petri.from_constraints import constraint_set_to_petri_net
        from repro.petri.soundness import check_soundness

        colored_net, initial = constraint_set_to_colored_net(sc)
        colored_ok = colored_net_completes(colored_net, initial, state_limit=50_000)
        black_net, _ = constraint_set_to_petri_net(sc)
        black_ok = check_soundness(black_net, state_limit=50_000).is_sound
        assert colored_ok == black_ok
