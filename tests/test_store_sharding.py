"""The shared shard-key helper and both placement paths that use it.

``shard_index`` is the single crc32-based placement function: the store
hashes the case id by default and the object key when co-sharding.  The
golden values pin the assignment so a refactor cannot silently reshuffle
journaled runs (recovery re-places every case and must land it on a
shard with the same deterministic batch interleaving).
"""

from __future__ import annotations

import pytest

from repro.runtime.store import Shard, ShardedStore, shard_index


class _Stub:
    """Minimal stand-in for a CaseInstance (the store only reads .case)."""

    def __init__(self, case: str) -> None:
        self.case = case


class TestShardIndex:
    #: Golden crc32 placements; changing the hash or its input encoding
    #: breaks recovery of existing journals, so these are pinned.
    GOLDEN = (
        ("case-000", 2, 6),
        ("case-001", 0, 0),
        ("ord-0000", 3, 3),
        ("ord-0001", 1, 5),
        ("naïve-ключ", 2, 6),
    )

    @pytest.mark.parametrize("key, at4, at8", GOLDEN)
    def test_golden_assignments(self, key, at4, at8):
        assert shard_index(key, 4) == at4
        assert shard_index(key, 8) == at8

    def test_stable_across_calls(self):
        keys = ["k-%03d" % i for i in range(200)]
        assert [shard_index(k, 16) for k in keys] == [
            shard_index(k, 16) for k in keys
        ]

    def test_range(self):
        for count in (1, 2, 7, 64):
            assert all(
                0 <= shard_index("case-%d" % i, count) < count for i in range(100)
            )


class TestPlacementPaths:
    def test_default_path_hashes_the_case_id(self):
        store = ShardedStore(8)
        for case in ("case-%03d" % i for i in range(50)):
            assert store.shard_of(case).index == shard_index(case, 8)

    def test_keyed_path_hashes_the_placement_key(self):
        store = ShardedStore(8)
        for case in ("ord-0001-item-%03d" % i for i in range(20)):
            shard = store.shard_of(case, key="ord-0001")
            assert shard.index == shard_index("ord-0001", 8)

    def test_co_sharding_groups_an_object_family(self):
        store = ShardedStore(4)
        family = ["ord-0042-order"] + ["ord-0042-item-%03d" % i for i in range(9)]
        for case in family:
            store.add(_Stub(case), key="ord-0042")
        landed = {
            index
            for index, shard in enumerate(store.shards)
            if shard.cases
        }
        assert len(landed) == 1
        only = store.shards[landed.pop()]
        assert sorted(only.cases) == sorted(family)
        assert only.assigned == len(family)

    def test_unkeyed_add_spreads_the_same_family(self):
        store = ShardedStore(4)
        family = ["ord-0042-order"] + ["ord-0042-item-%03d" % i for i in range(9)]
        for case in family:
            store.add(_Stub(case))
        landed = [index for index, s in enumerate(store.shards) if s.cases]
        assert len(landed) > 1

    def test_shard_is_a_fifo(self):
        shard = Shard(index=0)
        for case in ("a", "b", "c"):
            shard.add(_Stub(case))
        batch = shard.take_batch(2)
        assert [i.case for i in batch] == ["a", "b"]
        shard.requeue(batch[0])
        assert [i.case for i in shard.take_batch(3)] == ["c", "a"]
