"""Tests for the ``dscweaver replay`` / ``monitor`` / ``simulate --record``
commands and their exit-code contract (0 clean, 1 gated finding, 2 bad
input)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.conformance import EventLog, perturb, program_from_weave


@pytest.fixture()
def recorded_log(tmp_path, capsys):
    path = tmp_path / "run.jsonl"
    assert main(["simulate", "--workload", "purchasing", "--record", str(path)]) == 0
    capsys.readouterr()
    return path


@pytest.fixture()
def perturbed_log(recorded_log, tmp_path, purchasing_weave):
    program = program_from_weave(purchasing_weave, which="minimal")
    log = EventLog.load_jsonl(str(recorded_log))
    broken, _ = perturb(log, "swap", constraints=program.constraints)
    path = tmp_path / "bad.jsonl"
    broken.save_jsonl(str(path))
    return path


class TestSimulateRecord:
    def test_record_writes_replayable_jsonl(self, recorded_log):
        log = EventLog.load_jsonl(str(recorded_log))
        assert len(log) > 0
        assert log.case_ids() == ["purchasing"]

    def test_case_flag_overrides_case_id(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert (
            main(
                [
                    "simulate",
                    "--workload",
                    "purchasing",
                    "--record",
                    str(path),
                    "--case",
                    "order-42",
                ]
            )
            == 0
        )
        assert EventLog.load_jsonl(str(path)).case_ids() == ["order-42"]

    def test_record_respects_outcomes(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert (
            main(
                [
                    "simulate",
                    "--workload",
                    "purchasing",
                    "--outcome",
                    "if_au=F",
                    "--record",
                    str(path),
                ]
            )
            == 0
        )
        log = EventLog.load_jsonl(str(path))
        assert any(e.lifecycle == "skip" for e in log)


class TestReplayCommand:
    def test_clean_log_exits_zero(self, recorded_log, capsys):
        assert main(["replay", "purchasing", "--log", str(recorded_log)]) == 0
        out = capsys.readouterr().out
        assert "no findings" in out or "fitness: 1.000" in out

    def test_replay_against_full_set(self, recorded_log, capsys):
        assert (
            main(["replay", "purchasing", "--log", str(recorded_log), "--set", "full"])
            == 0
        )

    def test_compare_reports_identical_verdicts(self, recorded_log, capsys):
        assert (
            main(["replay", "purchasing", "--log", str(recorded_log), "--compare"])
            == 0
        )
        out = capsys.readouterr().out
        assert "verdicts vs full set: identical" in out
        assert "checks:" in out

    def test_violation_exits_one(self, perturbed_log, capsys):
        assert main(["replay", "purchasing", "--log", str(perturbed_log)]) == 1
        out = capsys.readouterr().out
        assert "CONF001" in out

    def test_fail_on_error_still_gates_order_violation(self, perturbed_log, capsys):
        assert (
            main(
                [
                    "replay",
                    "purchasing",
                    "--log",
                    str(perturbed_log),
                    "--fail-on",
                    "error",
                ]
            )
            == 1
        )

    def test_naive_mode_same_verdict(self, perturbed_log, capsys):
        assert (
            main(["replay", "purchasing", "--log", str(perturbed_log), "--naive"]) == 1
        )

    def test_missing_log_exits_two(self, tmp_path, capsys):
        assert main(["replay", "purchasing", "--log", str(tmp_path / "nope.jsonl")]) == 2

    def test_malformed_log_exits_two(self, tmp_path, capsys):
        path = tmp_path / "garbage.jsonl"
        path.write_text("this is not json\n")
        assert main(["replay", "purchasing", "--log", str(path)]) == 2

    def test_csv_log_format(self, recorded_log, tmp_path, capsys):
        csv_path = tmp_path / "run.csv"
        csv_path.write_text(EventLog.load_jsonl(str(recorded_log)).to_csv())
        assert main(["replay", "purchasing", "--log", str(csv_path)]) == 0

    def test_sarif_output(self, recorded_log, capsys):
        assert (
            main(
                [
                    "replay",
                    "purchasing",
                    "--log",
                    str(recorded_log),
                    "--format",
                    "sarif",
                ]
            )
            == 0
        )
        sarif = json.loads(capsys.readouterr().out)
        rules = sarif["runs"][0]["tool"]["driver"]["rules"]
        assert any(rule["id"] == "CONF001" for rule in rules)


class TestMonitorCommand:
    def test_clean_stream_exits_zero(self, recorded_log, capsys):
        assert main(["monitor", "purchasing", "--log", str(recorded_log)]) == 0
        out = capsys.readouterr().out
        assert "0 gating" in out

    def test_violating_stream_exits_one(self, perturbed_log, capsys):
        assert main(["monitor", "purchasing", "--log", str(perturbed_log)]) == 1
        out = capsys.readouterr().out
        assert "CONF001" in out

    def test_stdin_stream(self, recorded_log, capsys, monkeypatch):
        import io

        monkeypatch.setattr(
            "sys.stdin", io.StringIO(recorded_log.read_text())
        )
        assert main(["monitor", "purchasing"]) == 0

    def test_bad_event_exits_two(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"case": "c"}\n')
        assert main(["monitor", "purchasing", "--log", str(path)]) == 2
