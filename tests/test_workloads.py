"""Tests for the workload library: paper examples, extra processes, the
synthetic generator."""

from __future__ import annotations

import pytest

from repro.analysis.graphs import find_cycle
from repro.core.pipeline import DSCWeaver, extract_all_dependencies
from repro.petri.from_constraints import constraint_set_to_petri_net
from repro.petri.soundness import check_soundness
from repro.scheduler.engine import ConstraintScheduler
from repro.workloads.figure3 import build_figure3_process
from repro.workloads.synthetic import (
    SyntheticSpec,
    generate_dependency_set,
    generate_process,
)


class TestFigure3:
    def test_branch_structure(self):
        process = build_figure3_process()
        branch = process.branches[0]
        assert branch.guard == "a1"
        assert set(branch.cases["T"]) == {"a2", "a3", "a4"}
        assert set(branch.cases["F"]) == {"a5", "a6"}
        assert branch.join == "a7"

    def test_weaves_cleanly(self):
        process = build_figure3_process()
        result = DSCWeaver().weave(process)
        assert result.report.minimal <= result.report.raw_total
        # a7 is ordered after the guard through the join edge.
        assert any(
            c.target == "a7" for c in result.minimal
        )


class TestDeployment:
    def test_cooperation_dependency_survives(self, deployment_weave):
        """The mid-before-app constraint has no data/control backing, so
        minimization must keep it (Figure 6's point)."""
        _process, weave = deployment_weave
        assert weave.minimal.has_constraint(
            "invDeploy_midConfig", "invDeploy_appConfig"
        )

    def test_executes(self, deployment_weave):
        process, weave = deployment_weave
        result = ConstraintScheduler(process, weave.minimal).run()
        assert result.trace.happened_before(
            "invDeploy_midConfig", "invDeploy_appConfig"
        )


class TestLoan:
    def test_weave_and_both_branches(self, loan_weave):
        process, weave = loan_weave
        approve = ConstraintScheduler(process, weave.minimal).run(
            outcomes={"if_score": "T"}
        )
        assert approve.trace.records["setApproved"].executed
        assert "setRejected" in approve.trace.skipped()
        reject = ConstraintScheduler(process, weave.minimal).run(
            outcomes={"if_score": "F"}
        )
        assert reject.trace.records["setRejected"].executed
        assert "invRisk_profile" in reject.trace.skipped()

    def test_sequential_risk_service_ordering_kept(self, loan_weave):
        _process, weave = loan_weave
        assert weave.minimal.has_constraint("invRisk_profile", "invRisk_score")

    def test_notification_gates_reply(self, loan_weave):
        process, weave = loan_weave
        result = ConstraintScheduler(process, weave.minimal).run()
        assert result.trace.happened_before(
            "invNotify_decision", "replyClient_decision"
        )

    def test_petri_sound(self, loan_weave):
        _process, weave = loan_weave
        net, _ = constraint_set_to_petri_net(weave.minimal)
        assert check_soundness(net).is_sound


class TestTravel:
    def test_reservations_fan_out(self, travel_weave):
        process, weave = travel_weave
        result = ConstraintScheduler(process, weave.minimal).run()
        flight = result.trace.records["invFlight_trip"]
        hotel = result.trace.records["invHotel_trip"]
        car = result.trace.records["invCar_trip"]
        assert flight.start == hotel.start == car.start

    def test_payment_sequencing_kept(self, travel_weave):
        _process, weave = travel_weave
        assert weave.minimal.has_constraint("invPay_auth", "invPay_capture")

    def test_redundant_cooperation_removed(self, travel_weave):
        """recFlight_conf ->o replyClient_conf is covered by the dataflow
        through assembleTotal and the payment chain."""
        _process, weave = travel_weave
        assert not weave.minimal.has_constraint("recFlight_conf", "replyClient_conf")

    def test_report_reduces(self, travel_weave):
        _process, weave = travel_weave
        assert weave.report.removed > 0


class TestSyntheticGenerator:
    def test_deterministic(self):
        spec = SyntheticSpec(n_activities=40, seed=7)
        first_process, first_coop = generate_process(spec)
        second_process, second_coop = generate_process(spec)
        assert first_process.activity_names == second_process.activity_names
        assert [str(d) for d in first_coop] == [str(d) for d in second_coop]

    def test_acyclic_merged_set(self):
        for seed in range(5):
            process, dependencies = generate_dependency_set(
                SyntheticSpec(n_activities=40, seed=seed)
            )
            from repro.dscl.compiler import compile_dependencies

            compiled = compile_dependencies(process, dependencies)
            assert find_cycle(compiled.sc.as_graph()) is None

    def test_weaves_and_minimizes(self):
        process, dependencies = generate_dependency_set(
            SyntheticSpec(n_activities=40, coop_density=1.0, seed=3)
        )
        result = DSCWeaver().weave(process, dependencies)
        assert result.report.minimal < result.report.raw_total
        assert result.report.removed > 0

    def test_executes_all_outcome_combinations(self):
        process, dependencies = generate_dependency_set(
            SyntheticSpec(n_activities=40, seed=11)
        )
        result = DSCWeaver().weave(process, dependencies)
        for policy in ("T", "F"):
            run = ConstraintScheduler(process, result.minimal).run(
                outcomes=lambda guard: policy
            )
            assert not run.deadlocked

    def test_too_small_spec_rejected(self):
        with pytest.raises(ValueError):
            SyntheticSpec(n_activities=5, n_services=4, n_branches=3)

    def test_structure_knobs(self):
        spec = SyntheticSpec(n_activities=60, n_services=6, n_branches=3, seed=1)
        process, _ = generate_process(spec)
        assert len(process.services) <= 6
        assert len(process.branches) <= 3
        assert len(process.activities) == 60
