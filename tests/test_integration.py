"""Cross-subsystem integration tests: the full vertical story of the paper,
specification -> merge -> translation -> minimization -> validation ->
BPEL -> execution, plus the imperative import route."""

from __future__ import annotations

import pytest

from repro.bpel.parse import parse_bpel_flow
from repro.core.closure import Semantics
from repro.core.equivalence import transitive_equivalent
from repro.core.minimize import minimize
from repro.core.pipeline import DSCWeaver, extract_all_dependencies
from repro.deps.registry import DependencySet
from repro.petri.soundness import check_soundness
from repro.scheduler.engine import ConstraintScheduler
from repro.validation.conflicts import find_conflicts
from repro.validation.coverage import compare_constraint_sets


class TestVerticalPipeline:
    def test_full_story_purchasing(self, purchasing_process, purchasing_weave):
        """Weave -> validate (conflicts, Petri) -> emit BPEL -> re-import ->
        still equivalent -> execute and complete on both branches."""
        weave = purchasing_weave

        conflicts = find_conflicts(weave.minimal, weave.exclusives)
        assert not conflicts.has_conflicts

        net, _marking = weave.to_petri_net()
        assert check_soundness(net).is_sound

        recovered = parse_bpel_flow(weave.to_bpel())
        assert transitive_equivalent(recovered, weave.minimal, Semantics.GUARD_AWARE)

        for outcome in ("T", "F"):
            run = ConstraintScheduler(purchasing_process, recovered).run(
                outcomes={"if_au": outcome}
            )
            assert run.trace.records["replyClient_oi"].executed
            assert not run.deadlocked

    def test_imperative_import_route(self, purchasing_process, purchasing_constructs):
        """Section 5's claim: an imperative process can be parsed to a PDG,
        rewritten to constraints, and then optimized.  The result, merged
        with the service and cooperation dimensions, is exactly the same
        minimal scheme as the dataflow route."""
        from repro.constructs.pdg import build_pdg
        from repro.deps.servicedeps import extract_service_dependencies
        from repro.workloads.purchasing import purchasing_cooperation_dependencies

        pdg = build_pdg(purchasing_process, purchasing_constructs)
        dependencies = pdg.as_dependency_set()
        dependencies.extend(purchasing_cooperation_dependencies(purchasing_process))
        dependencies.extend(extract_service_dependencies(purchasing_process))

        from_pdg = DSCWeaver().weave(purchasing_process, dependencies)
        from_model = DSCWeaver().weave(
            purchasing_process,
            extract_all_dependencies(
                purchasing_process,
                cooperation=purchasing_cooperation_dependencies(purchasing_process),
            ),
        )
        assert set(map(str, from_pdg.minimal.constraints)) == set(
            map(str, from_model.minimal.constraints)
        )

    def test_wscl_submission_route(self, purchasing_process):
        """Section 1's automatic-composition story: each service submits a
        WSCL document; the engine merges those conversations with the
        process-side dependencies and infers the same global scheme."""
        from repro.deps.controlflow import extract_control_dependencies
        from repro.deps.dataflow import extract_data_dependencies
        from repro.deps.servicedeps import extract_service_dependencies
        from repro.deps.types import Dependency, DependencyKind
        from repro.model.activity import ActivityKind
        from repro.workloads.purchasing import purchasing_cooperation_dependencies
        from repro.wscl.derive import (
            conversation_for_service,
            service_dependencies_from_conversation,
        )

        dependencies = DependencySet()
        dependencies.extend(extract_data_dependencies(purchasing_process))
        dependencies.extend(extract_control_dependencies(purchasing_process))
        dependencies.extend(
            purchasing_cooperation_dependencies(purchasing_process)
        )
        # Port-to-port constraints come from the services' WSCL documents...
        for service in purchasing_process.services:
            conversation = conversation_for_service(service)
            dependencies.extend(
                service_dependencies_from_conversation(conversation)
            )
        # ...while the process contributes its own binding rows (which
        # activity talks to which port).
        ports = set(purchasing_process.port_names())
        for dependency in extract_service_dependencies(purchasing_process):
            if not (dependency.source in ports and dependency.target in ports):
                dependencies.add(dependency)

        result = DSCWeaver().weave(purchasing_process, dependencies)
        assert result.report.raw_total == 40
        assert result.report.minimal == 17

    def test_evolution_add_constraint(self, purchasing_process, purchasing_weave):
        """Adding one cooperation dependency re-weaves without touching any
        other constraint source — the adaptability claim."""
        from repro.deps.types import Dependency, DependencyKind
        from repro.workloads.purchasing import purchasing_cooperation_dependencies

        extra = Dependency(
            DependencyKind.COOPERATION,
            "invCredit_po",
            "invShip_po",
            rationale="new fraud-screening rule",
        )
        dependencies = extract_all_dependencies(
            purchasing_process,
            cooperation=purchasing_cooperation_dependencies(purchasing_process)
            + [extra],
        )
        result = DSCWeaver().weave(purchasing_process, dependencies)
        # The new requirement is already implied: invCredit_po precedes the
        # guard which precedes invShip_po, so the minimal set is unchanged.
        assert set(map(str, result.minimal.constraints)) == set(
            map(str, purchasing_weave.minimal.constraints)
        )

    def test_evolution_remove_requirement(self, purchasing_process):
        """Dropping the Production cooperation requirement frees the reply
        from waiting on Production — visible as a removed edge."""
        from repro.deps.cooperation import CooperationRegistry

        registry = CooperationRegistry(purchasing_process)
        registry.require_all_before(
            ["recPurchase_oi", "invShip_po", "recShip_si", "recShip_ss"],
            "replyClient_oi",
        )
        result = DSCWeaver().weave(
            purchasing_process,
            extract_all_dependencies(
                purchasing_process, cooperation=registry.dependencies
            ),
        )
        assert not result.minimal.has_constraint(
            "invProduction_po", "replyClient_oi"
        )
        assert not result.minimal.has_constraint(
            "invProduction_ss", "replyClient_oi"
        )

    def test_minimal_vs_required_coverage_all_workloads(
        self, loan_weave, travel_weave, deployment_weave
    ):
        for _process, weave in (loan_weave, travel_weave, deployment_weave):
            report = compare_constraint_sets(weave.minimal, weave.asc)
            assert report.is_exact

    def test_weave_without_explicit_dependencies(self, purchasing_process):
        """weave() extracts data/control/service deps automatically."""
        from repro.workloads.purchasing import purchasing_cooperation_dependencies

        result = DSCWeaver().weave(
            purchasing_process,
            cooperation=purchasing_cooperation_dependencies(purchasing_process),
        )
        assert result.report.raw_total == 40
        assert result.report.minimal == 17


class TestStructuredEmissionAcrossWorkloads:
    def test_structured_trees_execute_equivalently(
        self, loan_weave, travel_weave, deployment_weave
    ):
        """For every workload: recover structure from the minimal set, run
        the construct interpreter, and compare against the dependency
        schedule on every branch outcome."""
        import itertools

        from repro.bpel.structure import recover_structure
        from repro.scheduler.baseline import execute_constructs
        from repro.scheduler.engine import ConstraintScheduler

        for process, weave in (loan_weave, travel_weave, deployment_weave):
            tree = recover_structure(weave.minimal)
            guards = [a.name for a in process.activities if a.is_guard]
            for combo in itertools.product(["T", "F"], repeat=len(guards)):
                outcomes = dict(zip(guards, combo))
                structured = execute_constructs(process, tree, outcomes=outcomes)
                direct = ConstraintScheduler(process, weave.minimal).run(
                    outcomes=outcomes
                )
                assert structured.makespan == direct.makespan, process.name
                assert set(structured.executed_names()) == set(
                    direct.executed_names()
                ), process.name
