"""Additional coverage for dependency-layer corners and the module-level
weave entry point."""

from __future__ import annotations

import pytest

from repro.core.closure import Semantics
from repro.core.pipeline import weave
from repro.deps.registry import DependencySet
from repro.deps.types import (
    Dependency,
    DependencyKind,
    control,
    cooperation,
    data,
    service,
)
from repro.workloads.purchasing import (
    build_purchasing_process,
    purchasing_cooperation_dependencies,
)


class TestShorthandConstructors:
    def test_kinds(self):
        assert data("a", "b").kind is DependencyKind.DATA
        assert service("a", "p").kind is DependencyKind.SERVICE
        assert cooperation("a", "b").kind is DependencyKind.COOPERATION
        assert control("g", "b", "T").kind is DependencyKind.CONTROL
        assert control("g", "b", None).condition is None

    def test_rationale_preserved(self):
        dependency = data("a", "b", rationale="x flows")
        assert dependency.rationale == "x flows"


class TestDependencySetExtras:
    def test_endpoints(self):
        ds = DependencySet([data("a", "b"), service("b", "p1")])
        assert ds.endpoints() == {"a", "b", "p1"}

    def test_contains(self):
        d = data("a", "b")
        ds = DependencySet([d])
        assert d in ds
        assert cooperation("a", "b") not in ds  # different kind

    def test_by_kind_ordering_is_insertion(self):
        ds = DependencySet([data("x", "y"), data("a", "b")])
        assert [str(d) for d in ds.data] == ["x ->d y", "a ->d b"]

    def test_counts_with_empty_categories(self):
        ds = DependencySet([data("a", "b")])
        counts = ds.counts()
        assert counts["service"] == 0
        assert counts["total"] == 1


class TestModuleLevelWeave:
    def test_weave_function(self):
        process = build_purchasing_process()
        result = weave(
            process,
            cooperation=purchasing_cooperation_dependencies(process),
        )
        assert result.report.minimal == 17

    def test_weave_with_semantics(self):
        process = build_purchasing_process()
        result = weave(
            process,
            cooperation=purchasing_cooperation_dependencies(process),
            semantics=Semantics.STRICT,
        )
        assert result.report.minimal == 21
        assert result.semantics is Semantics.STRICT


class TestWeaveResultArtifacts:
    def test_program_matches_dependency_count(self, purchasing_weave):
        assert len(purchasing_weave.program) == 40

    def test_asc_property_alias(self, purchasing_weave):
        assert purchasing_weave.asc is purchasing_weave.translation.asc

    def test_translation_dropped_are_all_port_touching(self, purchasing_weave):
        external = set(purchasing_weave.merged.externals)
        for constraint in purchasing_weave.translation.dropped:
            assert constraint.source in external or constraint.target in external

    def test_petri_roundtrip_helper(self, purchasing_weave):
        net, marking = purchasing_weave.to_petri_net()
        assert marking.count("i") == 1
        assert len(net.transitions) > 14
