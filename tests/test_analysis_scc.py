"""Tests for strongly-connected-component analysis (multi-cycle detection)."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.graphs import (
    DirectedGraph,
    cyclic_components,
    strongly_connected_components,
)


class TestSccExamples:
    def test_acyclic_graph_all_singletons(self):
        graph = DirectedGraph(edges=[("a", "b"), ("b", "c")])
        components = strongly_connected_components(graph)
        assert sorted(len(c) for c in components) == [1, 1, 1]
        assert cyclic_components(graph) == []

    def test_one_cycle(self):
        graph = DirectedGraph(edges=[("a", "b"), ("b", "a"), ("b", "c")])
        cyclic = cyclic_components(graph)
        assert len(cyclic) == 1
        assert set(cyclic[0]) == {"a", "b"}

    def test_two_independent_cycles(self):
        graph = DirectedGraph(
            edges=[("a", "b"), ("b", "a"), ("x", "y"), ("y", "z"), ("z", "x")]
        )
        cyclic = cyclic_components(graph)
        assert len(cyclic) == 2
        sizes = sorted(len(c) for c in cyclic)
        assert sizes == [2, 3]

    def test_self_loop_detected(self):
        graph = DirectedGraph(edges=[("a", "a"), ("a", "b")])
        cyclic = cyclic_components(graph)
        assert [set(c) for c in cyclic] == [{"a"}]

    def test_reverse_topological_order(self):
        graph = DirectedGraph(edges=[("a", "b"), ("b", "c")])
        components = strongly_connected_components(graph)
        positions = {component[0]: i for i, component in enumerate(components)}
        # Tarjan emits sinks first.
        assert positions["c"] < positions["a"]


class TestSccAgainstNetworkx:
    @given(
        st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7)),
            max_size=20,
            unique=True,
        )
    )
    def test_matches_networkx(self, edges):
        edges = [(u, v) for u, v in edges if u != v]
        graph = DirectedGraph(nodes=range(8), edges=edges)
        reference = nx.DiGraph(edges)
        reference.add_nodes_from(range(8))
        ours = {frozenset(c) for c in strongly_connected_components(graph)}
        theirs = {frozenset(c) for c in nx.strongly_connected_components(reference)}
        assert ours == theirs


class TestMultiCycleConflictReport:
    def test_all_cycles_reported(self):
        from repro.core.constraints import Constraint, SynchronizationConstraintSet
        from repro.validation.conflicts import find_conflicts

        sc = SynchronizationConstraintSet(
            ["a", "b", "x", "y", "ok"],
            constraints=[
                Constraint("a", "b"),
                Constraint("b", "a"),
                Constraint("x", "y"),
                Constraint("y", "x"),
                Constraint("a", "ok"),
            ],
        )
        report = find_conflicts(sc)
        assert len(report.cycles) == 2
        assert {frozenset(c) for c in report.cycles} == {
            frozenset({"a", "b"}),
            frozenset({"x", "y"}),
        }
