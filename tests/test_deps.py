"""Tests for the dependency layer: the four categories and Table 1."""

from __future__ import annotations

import pytest

from repro.deps.cooperation import CooperationRegistry
from repro.deps.dataflow import dataflow_summary, extract_data_dependencies
from repro.deps.controlflow import (
    extract_control_dependencies,
    extract_control_dependencies_from_cfg,
)
from repro.deps.registry import DependencySet
from repro.deps.servicedeps import extract_service_dependencies
from repro.deps.types import Dependency, DependencyKind
from repro.errors import DependencyError
from repro.model.builder import ProcessBuilder
from repro.workloads.figure3 import ENTRY, EXIT, build_figure3_cfg


def dep(kind, source, target, condition=None):
    return Dependency(kind, source, target, condition)


class TestDependencyType:
    def test_self_dependency_rejected(self):
        with pytest.raises(DependencyError):
            dep(DependencyKind.DATA, "a", "a")

    def test_condition_only_on_control(self):
        with pytest.raises(DependencyError):
            Dependency(DependencyKind.DATA, "a", "b", condition="T")

    def test_rendering_uses_paper_arrows(self):
        assert str(dep(DependencyKind.DATA, "a", "b")) == "a ->d b"
        assert str(dep(DependencyKind.SERVICE, "a", "b")) == "a ->s b"
        assert str(dep(DependencyKind.COOPERATION, "a", "b")) == "a ->o b"
        assert (
            str(Dependency(DependencyKind.CONTROL, "g", "b", "T")) == "g ->T b"
        )
        assert (
            str(Dependency(DependencyKind.CONTROL, "g", "b", None)) == "g ->NONE b"
        )

    def test_key_ignores_kind(self):
        a = dep(DependencyKind.DATA, "x", "y")
        b = dep(DependencyKind.COOPERATION, "x", "y")
        assert a.key == b.key


class TestDataExtraction:
    def test_purchasing_table1_data(self, purchasing_process):
        dependencies = extract_data_dependencies(purchasing_process)
        rendered = {str(d) for d in dependencies}
        assert rendered == {
            "recClient_po ->d invCredit_po",
            "recClient_po ->d invPurchase_po",
            "recClient_po ->d invShip_po",
            "recClient_po ->d invProduction_po",
            "recCredit_au ->d if_au",
            "recShip_si ->d invPurchase_si",
            "recShip_ss ->d invProduction_ss",
            "recPurchase_oi ->d replyClient_oi",
            "set_oi ->d replyClient_oi",
        }

    def test_multiple_writers_produce_one_dep_each(self):
        process = (
            ProcessBuilder("p")
            .compute("w1", writes=["v"])
            .compute("w2", writes=["v"])
            .compute("r", reads=["v"])
            .build()
        )
        dependencies = extract_data_dependencies(process)
        assert {str(d) for d in dependencies} == {"w1 ->d r", "w2 ->d r"}

    def test_self_read_write_produces_no_dep(self):
        process = ProcessBuilder("p").compute("a", reads=["v"], writes=["v"]).build()
        assert extract_data_dependencies(process) == []

    def test_summary(self, purchasing_process):
        summary = dataflow_summary(purchasing_process)
        assert summary["oi"]["writers"] == ["recPurchase_oi", "set_oi"]
        assert summary["oi"]["readers"] == ["replyClient_oi"]


class TestControlExtraction:
    def test_purchasing_table1_control(self, purchasing_process):
        dependencies = extract_control_dependencies(purchasing_process)
        rendered = {str(d) for d in dependencies}
        expected_true = {
            "if_au ->T %s" % name
            for name in (
                "invPurchase_po",
                "invPurchase_si",
                "recPurchase_oi",
                "invShip_po",
                "recShip_si",
                "recShip_ss",
                "invProduction_po",
                "invProduction_ss",
            )
        }
        assert rendered == expected_true | {
            "if_au ->F set_oi",
            "if_au ->NONE replyClient_oi",
        }

    def test_cfg_extraction_matches_figure4(self):
        cfg, labels = build_figure3_cfg()
        dependencies = extract_control_dependencies_from_cfg(cfg, ENTRY, EXIT, labels)
        rendered = {str(d) for d in dependencies}
        assert "a1 ->T a2" in rendered
        assert "a1 ->F a5" in rendered
        assert "a1 ->NONE a7" in rendered  # the join edge
        assert not any("a7" in r and r != "a1 ->NONE a7" for r in rendered)

    def test_cfg_extraction_without_join_edges(self):
        cfg, labels = build_figure3_cfg()
        dependencies = extract_control_dependencies_from_cfg(
            cfg, ENTRY, EXIT, labels, include_join_edges=False
        )
        assert all(d.condition is not None for d in dependencies)


class TestServiceExtraction:
    def test_purchasing_table1_service(self, purchasing_process):
        dependencies = extract_service_dependencies(purchasing_process)
        rendered = {str(d) for d in dependencies}
        assert rendered == {
            "invCredit_po ->s Credit",
            "Credit ->s Credit_d",
            "Credit_d ->s recCredit_au",
            "invPurchase_po ->s Purchase1",
            "invPurchase_si ->s Purchase2",
            "Purchase1 ->s Purchase2",
            "Purchase1 ->s Purchase_d",
            "Purchase2 ->s Purchase_d",
            "Purchase_d ->s recPurchase_oi",
            "invShip_po ->s Ship",
            "Ship ->s Ship_d",
            "Ship_d ->s recShip_si",
            "Ship_d ->s recShip_ss",
            "invProduction_po ->s Production1",
            "invProduction_ss ->s Production2",
        }
        assert len(dependencies) == 15

    def test_sync_service_without_callbacks(self):
        process = (
            ProcessBuilder("p")
            .service("S")
            .receive("in", writes=["x"])
            .invoke("call", service="S", reads=["x"])
            .build()
        )
        dependencies = extract_service_dependencies(process)
        assert {str(d) for d in dependencies} == {"call ->s S"}


class TestCooperation:
    def test_registry_validates_endpoints(self, purchasing_process):
        registry = CooperationRegistry(purchasing_process)
        with pytest.raises(Exception):
            registry.require_before("nope", "replyClient_oi")

    def test_duplicate_rejected(self, purchasing_process):
        registry = CooperationRegistry(purchasing_process)
        registry.require_before("invShip_po", "replyClient_oi")
        with pytest.raises(DependencyError):
            registry.require_before("invShip_po", "replyClient_oi")

    def test_require_all_before(self, purchasing_process):
        registry = CooperationRegistry(purchasing_process)
        created = registry.require_all_before(
            ["invShip_po", "recShip_si"], "replyClient_oi"
        )
        assert len(created) == 2
        assert len(registry) == 2


class TestDependencySet:
    def test_table1_counts(self, purchasing_dependencies):
        counts = purchasing_dependencies.counts()
        assert counts == {
            "data": 9,
            "control": 10,
            "service": 15,
            "cooperation": 6,
            "total": 40,
        }

    def test_cross_category_duplicate_detected(self, purchasing_dependencies):
        duplicates = purchasing_dependencies.cross_category_duplicates()
        assert len(duplicates) == 1
        first, second = duplicates[0]
        assert {first.kind, second.kind} == {
            DependencyKind.DATA,
            DependencyKind.COOPERATION,
        }
        assert first.key == ("recPurchase_oi", "replyClient_oi", None)

    def test_exact_duplicates_ignored(self):
        ds = DependencySet()
        ds.add(dep(DependencyKind.DATA, "a", "b"))
        ds.add(dep(DependencyKind.DATA, "a", "b"))
        assert len(ds) == 1

    def test_remove(self):
        d = dep(DependencyKind.DATA, "a", "b")
        ds = DependencySet([d])
        ds.remove(d)
        assert len(ds) == 0
        with pytest.raises(DependencyError):
            ds.remove(d)

    def test_validate_against_rejects_unknown(self, purchasing_process):
        ds = DependencySet([dep(DependencyKind.DATA, "ghost", "replyClient_oi")])
        with pytest.raises(DependencyError):
            ds.validate_against(purchasing_process)

    def test_validate_rejects_port_in_data_dep(self, purchasing_process):
        ds = DependencySet([dep(DependencyKind.DATA, "Purchase1", "replyClient_oi")])
        with pytest.raises(DependencyError):
            ds.validate_against(purchasing_process)

    def test_table_rendering(self, purchasing_dependencies):
        table = purchasing_dependencies.as_table()
        assert "data {->d}  (9)" in table
        assert "recShip_si ->d invPurchase_si" in table

    def test_union(self):
        a = DependencySet([dep(DependencyKind.DATA, "a", "b")])
        b = DependencySet([dep(DependencyKind.COOPERATION, "b", "c")])
        merged = a.union(b)
        assert len(merged) == 2
        assert len(a) == 1
