"""Static service-protocol conformance: invocation order + callbacks."""

from __future__ import annotations

import pytest

from repro.core.constraints import Constraint, SynchronizationConstraintSet
from repro.lint import check_callback_matching, check_invocation_order
from repro.model.builder import ProcessBuilder


@pytest.fixture()
def pay_process():
    """A state-aware async service with two sequential ports."""
    return (
        ProcessBuilder("Proto")
        .service(
            "Pay", ports=["Auth", "Capture"], asynchronous=True, sequential=True
        )
        .receive("start", writes=["po"])
        .invoke("invAuth", service="Pay", port="Auth", reads=["po"])
        .invoke("invCapture", service="Pay", port="Capture", reads=["po"])
        .receive("recReceipt", service="Pay", writes=["receipt"])
        .reply("done", reads=["receipt"])
        .build()
    )


def _sc(process, constraints):
    return SynchronizationConstraintSet(
        activities=[activity.name for activity in process.activities],
        constraints=constraints,
    )


class TestInvocationOrder:
    def test_unordered_invokes_violate_protocol(self, pay_process):
        sc = _sc(
            pay_process,
            [Constraint("start", "invAuth"), Constraint("start", "invCapture")],
        )
        violations = check_invocation_order(sc, pay_process)
        pairs = {(v.earlier_activity, v.later_activity) for v in violations}
        assert ("invAuth", "invCapture") in pairs
        violation = next(
            v for v in violations if v.later_activity == "invCapture"
        )
        assert violation.service == "Pay"
        assert violation.earlier_port == "Auth"
        assert violation.later_port == "Capture"
        assert "Auth" in str(violation)

    def test_ordered_invokes_conform(self, pay_process):
        sc = _sc(
            pay_process,
            [
                Constraint("start", "invAuth"),
                Constraint("invAuth", "invCapture"),
                Constraint("invCapture", "recReceipt"),
            ],
        )
        violations = check_invocation_order(sc, pay_process)
        assert [v for v in violations if v.later_port == "Capture"] == []

    def test_transitive_ordering_conforms(self, pay_process):
        sc = _sc(
            pay_process,
            [
                Constraint("invAuth", "start"),
                Constraint("start", "invCapture"),
                Constraint("invAuth", "recReceipt"),
                Constraint("invCapture", "recReceipt"),
            ],
        )
        assert check_invocation_order(sc, pay_process) == []

    def test_purchasing_conforms(self, purchasing_process, purchasing_weave):
        assert check_invocation_order(purchasing_weave.asc, purchasing_process) == []


class TestCallbackMatching:
    def test_reachable_receive_matches(self, pay_process):
        sc = _sc(
            pay_process,
            [
                Constraint("invAuth", "invCapture"),
                Constraint("invAuth", "recReceipt"),
                Constraint("invCapture", "recReceipt"),
            ],
        )
        assert check_callback_matching(sc, pay_process) == []

    def test_unreachable_receive_is_reported(self, pay_process):
        # recReceipt exists but nothing orders it after the invokes: the
        # callback could be consumed before the request is even sent.
        sc = _sc(pay_process, [Constraint("invAuth", "invCapture")])
        unmatched = check_callback_matching(sc, pay_process)
        invokes = {u.invoke for u in unmatched}
        assert invokes == {"invAuth", "invCapture"}
        assert all(u.callback_port == "Pay_d" for u in unmatched)
        assert all("recReceipt" in u.candidates for u in unmatched)

    def test_missing_receive_entirely(self):
        process = (
            ProcessBuilder("NoCallback")
            .service("Notify", asynchronous=True)
            .receive("start", writes=["msg"])
            .invoke("invNotify", service="Notify", reads=["msg"])
            .build()
        )
        sc = _sc(process, [Constraint("start", "invNotify")])
        unmatched = check_callback_matching(sc, process)
        assert len(unmatched) == 1
        assert unmatched[0].invoke == "invNotify"
        assert unmatched[0].candidates == ()
        assert "no receive listening" in str(unmatched[0])

    def test_synchronous_service_needs_no_callback(self):
        process = (
            ProcessBuilder("Sync")
            .service("Archive")
            .receive("start", writes=["doc"])
            .invoke("invArchive", service="Archive", reads=["doc"])
            .build()
        )
        sc = _sc(process, [Constraint("start", "invArchive")])
        assert check_callback_matching(sc, process) == []

    def test_purchasing_callbacks_all_matched(
        self, purchasing_process, purchasing_weave
    ):
        assert (
            check_callback_matching(purchasing_weave.asc, purchasing_process) == []
        )
