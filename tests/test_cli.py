"""Tests for the dscweaver command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1", "--workload", "purchasing"]) == 0
        out = capsys.readouterr().out
        assert "data {->d}  (9)" in out
        assert "service {->s}  (15)" in out

    def test_weave_prints_table2(self, capsys):
        assert main(["weave", "--workload", "purchasing"]) == 0
        out = capsys.readouterr().out
        assert "removed" in out and "23" in out

    def test_minimal_lists_17_edges(self, capsys):
        assert main(["minimal", "--workload", "purchasing"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 17
        assert "invPurchase_po ->T" not in "\n".join(out)

    def test_dscl_output_parses(self, capsys):
        from repro.dscl.parser import parse

        assert main(["dscl", "--workload", "purchasing"]) == 0
        out = capsys.readouterr().out
        program = parse(out)
        assert len(program) == 40

    def test_bpel_stdout(self, capsys):
        assert main(["bpel", "--workload", "travel"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("<process")

    def test_bpel_to_file(self, tmp_path, capsys):
        target = tmp_path / "out.xml"
        assert main(["bpel", "--workload", "loan", "--output", str(target)]) == 0
        assert target.read_text().startswith("<process")

    def test_validate(self, capsys):
        assert main(["validate", "--workload", "purchasing"]) == 0
        out = capsys.readouterr().out
        assert "sound: True" in out

    def test_simulate_with_outcome(self, capsys):
        assert main(["simulate", "--workload", "purchasing", "--outcome", "if_au=F"]) == 0
        out = capsys.readouterr().out
        assert "makespan=" in out
        assert "skipped:" in out

    def test_simulate_bad_outcome_syntax(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--outcome", "nonsense"])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["weave", "--workload", "nope"])

    def test_all_workloads_weave(self, capsys):
        for workload in ("purchasing", "deployment", "loan", "travel"):
            assert main(["weave", "--workload", workload]) == 0


class TestCliExtensions:
    def test_insurance_workload(self, capsys):
        assert main(["weave", "--workload", "insurance"]) == 0
        out = capsys.readouterr().out
        assert "minimal" in out

    def test_dot_minimal(self, capsys):
        assert main(["dot", "--workload", "purchasing", "--what", "minimal"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert out.count("->") >= 17

    def test_dot_translated_highlights(self, capsys):
        assert main(["dot", "--workload", "purchasing", "--what", "translated"]) == 0
        out = capsys.readouterr().out
        assert "style=bold penwidth=2" in out

    def test_dot_petri(self, capsys):
        assert main(["dot", "--workload", "deployment", "--what", "petri"]) == 0
        out = capsys.readouterr().out
        assert "shape=circle" in out

    def test_dot_to_file(self, tmp_path, capsys):
        target = tmp_path / "graph.dot"
        assert main(
            ["dot", "--workload", "loan", "--what", "dependencies", "--output", str(target)]
        ) == 0
        assert target.read_text().startswith("digraph")

    def test_uml_extraction(self, tmp_path, capsys):
        from repro.uml.xmlio import diagram_to_xml
        from tests.test_uml import figure3_diagram

        path = tmp_path / "fig3.xml"
        path.write_text(diagram_to_xml(figure3_diagram()))
        assert main(["uml", str(path)]) == 0
        out = capsys.readouterr().out
        assert "a2 ->d a3" in out
        assert "a1 ->NONE a7" in out

    def test_bpel_structured(self, capsys):
        assert main(["bpel", "--workload", "purchasing", "--structured"]) == 0
        out = capsys.readouterr().out
        assert "<sequence>" in out
        assert 'guard="if_au"' in out
