"""The object-centric model layer: spec validation, bindings, compilation.

``ObjectSpec`` is the validated form of the DSCL object statements and
``compile_objects`` lowers it through the interned-bitset kernel; both
must reject malformed declarations *before* the runtime sees them.
"""

from __future__ import annotations

import pytest

from repro.dscl import parse
from repro.objects import (
    ObjectBinding,
    ObjectRelation,
    ObjectSpec,
    ObjectSpecError,
    SyncAll,
    SyncOnce,
    compile_objects,
    spec_from_program,
)

PACK_SHIP = SyncAll("item", "pack_item", "order", "ship_order")
INVOICE_ONCE = SyncOnce("order", "invoice_order")


def _spec():
    return ObjectSpec(
        relations=(ObjectRelation("order", "item"),),
        alls=(PACK_SHIP,),
        onces=(INVOICE_ONCE,),
    )


class TestObjectSpec:
    def test_roles(self):
        spec = _spec()
        assert spec.roles() == ("order", "item")
        assert spec.parent_roles() == ("order",)
        assert spec.child_roles() == ("item",)
        assert bool(spec)

    def test_empty_spec_is_falsy(self):
        assert not ObjectSpec(relations=(), alls=(), onces=())

    def test_sync_roles_must_be_declared(self):
        with pytest.raises(ObjectSpecError, match="undeclared"):
            ObjectSpec(relations=(), alls=(PACK_SHIP,), onces=())

    def test_all_of_must_follow_a_declared_relation(self):
        backwards = SyncAll("order", "ship_order", "item", "pack_item")
        with pytest.raises(ObjectSpecError):
            ObjectSpec(
                relations=(ObjectRelation("order", "item"),),
                alls=(backwards,),
                onces=(),
            )

    def test_stable_sync_names(self):
        assert PACK_SHIP.name == "all:item.pack_item->order.ship_order"
        assert INVOICE_ONCE.name == "once:order.invoice_order"


class TestSpecFromProgram:
    def test_round_trips_the_orders_declaration(self):
        program = parse(
            "object order 1..* item;\n"
            "item.pack_item ->A order.ship_order;\n"
            "order.invoice_order ->1 order;\n"
        )
        spec = spec_from_program(program)
        assert spec == _spec()

    def test_program_without_objects_yields_empty_spec(self):
        spec = spec_from_program(parse("F(a) -> S(b);"))
        assert not spec

    def test_sync_without_relation_is_rejected(self):
        program = parse("item.pack_item ->A order.ship_order;")
        with pytest.raises(ObjectSpecError):
            spec_from_program(program)


class TestObjectBinding:
    def test_dict_round_trip(self):
        binding = ObjectBinding(object_key="ord-0001", role="order", children=7)
        assert ObjectBinding.from_dict(binding.to_dict()) == binding

    def test_children_omitted_for_child_roles(self):
        binding = ObjectBinding(object_key="ord-0001", role="item")
        payload = binding.to_dict()
        assert "children" not in payload
        assert ObjectBinding.from_dict(payload) == binding


class TestCompile:
    def test_programs_shape(self):
        program = compile_objects(_spec())
        assert bool(program)
        assert set(program.gates) == {("order", "ship_order")}
        assert set(program.contributes) == {("item", "pack_item")}
        assert set(program.onces) == {("order", "invoice_order")}
        (gate_mask,) = program.gates.values()
        (contributed,) = program.contributes.values()
        assert gate_mask == sum(1 << sid for sid in contributed)

    def test_sid_lookup_is_bidirectional(self):
        program = compile_objects(_spec())
        sid = program.sid_of(PACK_SHIP.name)
        assert program.name_of(sid) == PACK_SHIP.name
        with pytest.raises(KeyError, match="known"):
            program.sid_of("all:no.such->sync.here")

    def test_mask_names(self):
        program = compile_objects(_spec())
        sid = program.sid_of(PACK_SHIP.name)
        assert program.mask_names(1 << sid) == (PACK_SHIP.name,)

    def test_compilation_is_deterministic(self):
        first = compile_objects(_spec())
        second = compile_objects(_spec())
        assert {s.name for s in first.syncs.values()} == {
            s.name for s in second.syncs.values()
        }
        assert first.gates == second.gates
        assert first.contributes == second.contributes
