"""Unit tests for the SynchronizationConstraintSet container and the
ReductionReport."""

from __future__ import annotations

import pytest

from repro.analysis.conditions import Cond, ConditionDomains
from repro.core.constraints import Constraint, SynchronizationConstraintSet
from repro.core.report import ReductionReport
from repro.deps.registry import DependencySet
from repro.deps.types import Dependency, DependencyKind
from repro.errors import ConstraintError


class TestConstraint:
    def test_annotation_of_conditional(self):
        constraint = Constraint("g", "x", "T")
        assert constraint.annotation == frozenset({Cond("g", "T")})

    def test_annotation_of_unconditional(self):
        assert Constraint("a", "b").annotation == frozenset()

    def test_self_loop_rejected(self):
        with pytest.raises(ConstraintError):
            Constraint("a", "a")

    def test_rendering(self):
        assert str(Constraint("a", "b")) == "a -> b"
        assert str(Constraint("g", "b", "F")) == "g ->F b"

    def test_ordering_is_total(self):
        constraints = [Constraint("b", "c"), Constraint("a", "b"), Constraint("a", "b", "T")]
        assert sorted(constraints)[0] == Constraint("a", "b")


class TestConstraintSet:
    def test_unknown_endpoint_rejected(self):
        sc = SynchronizationConstraintSet(["a", "b"])
        with pytest.raises(ConstraintError):
            sc.add(Constraint("a", "ghost"))

    def test_internal_external_overlap_rejected(self):
        with pytest.raises(ConstraintError):
            SynchronizationConstraintSet(["a"], externals=["a"])

    def test_duplicate_constraints_collapse(self):
        sc = SynchronizationConstraintSet(
            ["a", "b"], constraints=[Constraint("a", "b"), Constraint("a", "b")]
        )
        assert len(sc) == 1

    def test_same_pair_different_conditions_both_kept(self):
        sc = SynchronizationConstraintSet(
            ["g", "x"],
            constraints=[Constraint("g", "x", "T"), Constraint("g", "x", None)],
        )
        assert len(sc) == 2

    def test_without_and_remove(self):
        constraint = Constraint("a", "b")
        sc = SynchronizationConstraintSet(["a", "b"], constraints=[constraint])
        smaller = sc.without(constraint)
        assert len(smaller) == 0
        assert len(sc) == 1  # original untouched
        sc.remove(constraint)
        assert len(sc) == 0
        with pytest.raises(ConstraintError):
            sc.remove(constraint)

    def test_is_activity_set(self):
        sc = SynchronizationConstraintSet(
            ["a"], externals=["p"], constraints=[Constraint("a", "p")]
        )
        assert not sc.is_activity_set
        assert sc.without(Constraint("a", "p")).is_activity_set

    def test_incoming_outgoing(self):
        sc = SynchronizationConstraintSet(
            ["a", "b", "c"],
            constraints=[Constraint("a", "b"), Constraint("b", "c")],
        )
        assert [str(c) for c in sc.outgoing("b")] == ["b -> c"]
        assert [str(c) for c in sc.incoming("b")] == ["a -> b"]

    def test_replace_constraints_preserves_guards(self):
        guards = {"x": frozenset({Cond("g", "T")})}
        sc = SynchronizationConstraintSet(
            ["g", "x"], constraints=[Constraint("g", "x", "T")], guards=guards
        )
        replaced = sc.replace_constraints([])
        assert replaced.guard_of("x") == frozenset({Cond("g", "T")})

    def test_effective_guard_caching_consistency(self):
        guards = {
            "inner": frozenset({Cond("outer", "T")}),
            "x": frozenset({Cond("inner", "F")}),
        }
        sc = SynchronizationConstraintSet(["outer", "inner", "x"], guards=guards)
        first = sc.effective_guard("x")
        second = sc.effective_guard("x")
        assert first is second  # cached
        assert first == frozenset({Cond("inner", "F"), Cond("outer", "T")})

    def test_derive_guards_from_constraints(self):
        sc = SynchronizationConstraintSet(
            ["g", "x", "y"],
            constraints=[Constraint("g", "x", "T"), Constraint("x", "y")],
        )
        derived = sc.derive_guards_from_constraints()
        assert derived == {"x": frozenset({Cond("g", "T")})}

    def test_pretty_rendering(self, purchasing_weave):
        text = purchasing_weave.merged.pretty()
        assert text.startswith("A = {")
        assert "S = {" in text
        assert "recClient_po -> invCredit_po" in text

    def test_as_graph(self):
        sc = SynchronizationConstraintSet(
            ["a", "b"], constraints=[Constraint("a", "b", "T")]
        )
        graph = sc.as_graph()
        assert graph.has_edge("a", "b")

    def test_contains_and_iteration(self):
        constraint = Constraint("a", "b")
        sc = SynchronizationConstraintSet(["a", "b"], constraints=[constraint])
        assert constraint in sc
        assert list(sc) == [constraint]
        assert sc.has_constraint("a", "b")
        assert not sc.has_constraint("a", "b", "T")


class TestReductionReport:
    def _report(self):
        dependencies = DependencySet(
            [
                Dependency(DependencyKind.DATA, "a", "b"),
                Dependency(DependencyKind.COOPERATION, "a", "b"),
                Dependency(DependencyKind.SERVICE, "b", "p"),
                Dependency(DependencyKind.CONTROL, "g", "c", "T"),
            ]
        )
        return ReductionReport.from_counts(
            dependencies, merged=3, translated=2, minimal=2
        )

    def test_stage_deltas(self):
        report = self._report()
        assert report.raw_total == 4
        assert report.removed == 2
        assert report.removed_by_merge == 1
        assert report.removed_by_translation == 1
        assert report.removed_by_minimization == 0

    def test_ratio(self):
        assert self._report().reduction_ratio == pytest.approx(0.5)

    def test_zero_division_guard(self):
        empty = ReductionReport(
            raw_by_kind={}, raw_total=0, merged=0, translated=0, minimal=0
        )
        assert empty.reduction_ratio == 0.0

    def test_as_dict_round_trip(self):
        data = self._report().as_dict()
        assert data["raw_total"] == 4
        assert data["removed"] == 2
        assert data["raw_by_kind"]["data"] == 1

    def test_table_contains_every_stage(self):
        table = self._report().as_table()
        for token in ("original", "merged", "translated", "minimal", "removed"):
            assert token in table
