"""Batch replay of scheduler-generated logs against woven constraint sets.

The acceptance properties of the conformance subsystem: a log recorded
from a legal scheduler run replays violation-free against both the full
ASC and the minimal set, the two monitors reach identical per-case
verdicts at lower cost for the minimal set, and the findings flow through
the :mod:`repro.lint` reporting stack (text/JSON/SARIF, exit codes).
"""

from __future__ import annotations

import json

import pytest

from repro.conformance import (
    CONF_CODES,
    EventLog,
    Verdict,
    events_from_trace,
    log_from_traces,
    program_from_weave,
    replay,
    verdicts_agree,
)
from repro.lint import Severity, render
from repro.scheduler.engine import ConstraintScheduler


@pytest.fixture(scope="module")
def purchasing_log(purchasing_process, purchasing_weave):
    """Two cases: one on each branch of the if_au guard."""
    traces = {}
    for case, outcomes in (("case-1", {}), ("case-2", {"if_au": "F"})):
        run = ConstraintScheduler(purchasing_process, purchasing_weave.minimal).run(
            outcomes=outcomes
        )
        traces[case] = run.trace
    return log_from_traces(traces)


@pytest.fixture(scope="module")
def minimal_program(purchasing_weave):
    return program_from_weave(purchasing_weave, which="minimal")


@pytest.fixture(scope="module")
def full_program(purchasing_weave):
    return program_from_weave(purchasing_weave, which="full")


class TestCleanReplay:
    def test_unperturbed_log_is_conformant(self, purchasing_log, minimal_program):
        report = replay(purchasing_log, minimal_program)
        assert report.clean
        assert report.fitness == 1.0
        assert report.violated_cases == ()

    def test_clean_against_full_set_too(self, purchasing_log, full_program):
        assert replay(purchasing_log, full_program).clean

    def test_minimal_and_full_verdicts_agree(
        self, purchasing_log, minimal_program, full_program
    ):
        minimal = replay(purchasing_log, minimal_program)
        full = replay(purchasing_log, full_program)
        assert verdicts_agree(minimal, full)

    def test_minimal_monitors_cheaper(
        self, purchasing_log, minimal_program, full_program
    ):
        minimal = replay(purchasing_log, minimal_program)
        full = replay(purchasing_log, full_program)
        assert minimal.program_size < full.program_size
        assert minimal.checks < full.checks
        assert minimal.checks_per_event < full.checks_per_event

    def test_indexed_beats_naive_with_same_outcome(
        self, purchasing_log, minimal_program
    ):
        fast = replay(purchasing_log, minimal_program, indexed=True)
        slow = replay(purchasing_log, minimal_program, indexed=False)
        assert fast.checks < slow.checks
        assert [d.message for d in fast.diagnostics] == [
            d.message for d in slow.diagnostics
        ]
        assert verdicts_agree(fast, slow)

    def test_dead_branch_obligations_are_vacuous(
        self, purchasing_log, minimal_program
    ):
        report = replay(purchasing_log, minimal_program)
        # case-2 skips the if_au=T branch: those obligations must be
        # vacuous or inactive, never pending residue.
        assert report.verdict_counts.get(Verdict.VACUOUS, 0) > 0
        assert report.residue == 0

    def test_all_workloads_replay_clean(self, all_weaves):
        for name, (process, weave) in all_weaves.items():
            run = ConstraintScheduler(process, weave.minimal).run()
            log = EventLog(events_from_trace(run.trace, name))
            minimal = replay(log, program_from_weave(weave, which="minimal"))
            full = replay(log, program_from_weave(weave, which="full"))
            assert minimal.clean, "%s: %s" % (name, minimal.diagnostics)
            assert full.clean, "%s: %s" % (name, full.diagnostics)
            assert verdicts_agree(minimal, full)
            assert minimal.checks <= full.checks


class TestTruncation:
    def test_truncated_log_only_residue(self, purchasing_log, minimal_program):
        events = list(purchasing_log)
        report = replay(EventLog(events[: len(events) // 2]), minimal_program)
        # A prefix of a clean stream is still order-conformant: residue only.
        assert report.clean
        assert {d.code for d in report.diagnostics} <= {"CONF007"}
        assert report.counts_by_code()["CONF007"] >= 1

    def test_residue_gates_only_at_info(self, purchasing_log, minimal_program):
        events = list(purchasing_log)
        report = replay(EventLog(events[: len(events) // 2]), minimal_program)
        assert report.exit_code(Severity.WARNING) == 0
        assert report.exit_code(Severity.INFO) == 1


class TestReporting:
    def test_summary_mentions_fitness_and_checks(
        self, purchasing_log, minimal_program
    ):
        summary = replay(purchasing_log, minimal_program).summary()
        assert "fitness: 1.000" in summary
        assert "monitored constraints:" in summary

    def test_counts_by_code_covers_all_codes(self, purchasing_log, minimal_program):
        counts = replay(purchasing_log, minimal_program).counts_by_code()
        assert set(CONF_CODES) <= set(counts)
        assert all(count == 0 for count in counts.values())

    def test_lint_report_exit_codes(self, purchasing_log, minimal_program):
        report = replay(purchasing_log, minimal_program)
        assert report.exit_code() == 0
        lint_report = report.to_lint_report()
        assert lint_report.rules_run == CONF_CODES

    def test_sarif_lists_conf_rules(self, purchasing_log, minimal_program):
        lint_report = replay(purchasing_log, minimal_program).to_lint_report()
        sarif = json.loads(render(lint_report, "sarif"))
        rules = sarif["runs"][0]["tool"]["driver"]["rules"]
        assert [rule["id"] for rule in rules] == list(CONF_CODES)

    def test_violation_shows_in_sarif_results(self, purchasing_log, minimal_program):
        events = [e for e in purchasing_log if e.case == "case-1"]
        # Drop every finish event: order obligations fail en masse.
        broken = EventLog([e for e in events if e.lifecycle != "finish"])
        report = replay(broken, minimal_program)
        assert not report.clean
        sarif = json.loads(render(report.to_lint_report(), "sarif"))
        results = sarif["runs"][0]["results"]
        assert any(result["ruleId"].startswith("CONF") for result in results)

    def test_program_from_weave_rejects_unknown_set(self, purchasing_weave):
        with pytest.raises(ValueError, match="minimal"):
            program_from_weave(purchasing_weave, which="bogus")


class TestCategories:
    def test_order_violations_carry_category_letters(
        self, purchasing_log, minimal_program
    ):
        events = [e for e in purchasing_log if e.case == "case-1"]
        broken = EventLog([e for e in events if e.lifecycle != "finish"])
        report = replay(broken, minimal_program)
        assert report.violations_by_category
        letters = set("dTFcsou")
        assert set(report.violations_by_category) <= letters
