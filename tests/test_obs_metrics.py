"""Tests for the metrics registry and its exporters.

The Prometheus exposition is pinned two ways: a golden exact-text test
(so any formatting drift is a visible diff) and the grammar validator
(so the golden text itself is provably well-formed exposition format).
"""

from __future__ import annotations

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    metrics_to_json,
    render_prometheus,
    validate_prometheus_text,
)


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_ops_total", "Ops.")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == pytest.approx(3.5)

    def test_negative_increment_raises(self):
        counter = MetricsRegistry().counter("repro_test_ops_total")
        with pytest.raises(ValueError):
            counter.inc(-1)
        labeled = MetricsRegistry().counter("repro_test_x_total", labelnames=("k",))
        with pytest.raises(ValueError):
            labeled.labels(k="a").inc(-0.5)

    def test_labeled_children_are_independent(self):
        counter = MetricsRegistry().counter(
            "repro_test_cases_total", "Cases.", labelnames=("status",)
        )
        counter.labels(status="completed").inc(3)
        counter.labels(status="failed").inc()
        assert counter.value(status="completed") == 3
        assert counter.value(status="failed") == 1
        assert counter.value(status="rejected") == 0.0

    def test_unlabeled_use_of_labeled_metric_raises(self):
        counter = MetricsRegistry().counter("repro_test_total", labelnames=("k",))
        with pytest.raises(ValueError):
            counter.inc()

    def test_wrong_label_set_raises(self):
        counter = MetricsRegistry().counter("repro_test_total", labelnames=("k",))
        with pytest.raises(ValueError):
            counter.labels(other="x")
        with pytest.raises(ValueError):
            counter.labels(k="x", extra="y")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("repro_test_depth", "Depth.")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value() == 13.0

    def test_gauges_may_go_negative(self):
        gauge = MetricsRegistry().gauge("repro_test_delta")
        gauge.dec(4)
        assert gauge.value() == -4.0


class TestHistogramBuckets:
    def test_value_on_bucket_boundary_is_inclusive(self):
        # Prometheus ``le`` is an inclusive upper bound: an observation of
        # exactly 2.0 belongs to the le="2" bucket, not the next one.
        histogram = MetricsRegistry().histogram(
            "repro_test_seconds", buckets=(1.0, 2.0, 5.0)
        )
        histogram.observe(2.0)
        child = histogram._default()
        assert child.counts == [0, 1, 0, 0]

    def test_value_just_over_boundary_spills_to_next_bucket(self):
        histogram = MetricsRegistry().histogram(
            "repro_test_seconds", buckets=(1.0, 2.0, 5.0)
        )
        histogram.observe(2.0000001)
        assert histogram._default().counts == [0, 0, 1, 0]

    def test_overflow_lands_in_implicit_inf_bucket(self):
        histogram = MetricsRegistry().histogram(
            "repro_test_seconds", buckets=(1.0, 2.0)
        )
        histogram.observe(99.0)
        child = histogram._default()
        assert child.counts == [0, 0, 1]
        assert child.cumulative() == [0, 0, 1]
        assert child.count == 1

    def test_cumulative_counts_and_sum(self):
        histogram = MetricsRegistry().histogram(
            "repro_test_seconds", buckets=(0.1, 0.5, 1.0)
        )
        for value in (0.05, 0.1, 0.3, 0.7, 3.0):
            histogram.observe(value)
        child = histogram._default()
        assert child.counts == [2, 1, 1, 1]
        assert child.cumulative() == [2, 3, 4, 5]
        assert child.count == 5
        assert child.sum == pytest.approx(4.15)

    def test_smallest_bucket_boundary(self):
        histogram = MetricsRegistry().histogram(
            "repro_test_seconds", buckets=(0.5, 1.0)
        )
        histogram.observe(0.0)
        histogram.observe(0.5)
        assert histogram._default().counts == [2, 0, 0]

    def test_buckets_must_be_strictly_increasing_and_finite(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("repro_bad_a", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("repro_bad_b", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("repro_bad_c", buckets=(1.0, float("inf")))

    def test_default_buckets_are_used(self):
        histogram = MetricsRegistry().histogram("repro_test_seconds")
        assert histogram.buckets == DEFAULT_BUCKETS


class TestHistogramQuantiles:
    def test_empty_histogram_estimates_zero(self):
        histogram = MetricsRegistry().histogram("repro_q", buckets=(1.0, 2.0))
        assert histogram.quantile(0.5) == 0.0

    def test_interpolation_inside_a_bucket(self):
        histogram = MetricsRegistry().histogram("repro_q", buckets=(10.0, 20.0))
        for _ in range(10):
            histogram.observe(15.0)  # all land in (10, 20]
        # median rank is halfway into the second bucket: 10 + 0.5 * 10
        assert histogram.quantile(0.5) == pytest.approx(15.0)

    def test_rank_in_inf_bucket_clamps_to_last_bound(self):
        histogram = MetricsRegistry().histogram("repro_q", buckets=(1.0, 2.0))
        histogram.observe(100.0)
        assert histogram.quantile(0.99) == 2.0

    def test_out_of_range_quantile_raises(self):
        histogram = MetricsRegistry().histogram("repro_q", buckets=(1.0,))
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_missing_labeled_child_estimates_zero(self):
        histogram = MetricsRegistry().histogram(
            "repro_q", labelnames=("stage",), buckets=(1.0,)
        )
        assert histogram.quantile(0.5, stage="absent") == 0.0


class TestRegistry:
    def test_registration_is_get_or_create(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_test_total", "Help.")
        second = registry.counter("repro_test_total", "Help.")
        assert first is second
        assert len(registry) == 1
        assert "repro_test_total" in registry
        assert registry.get("repro_test_total") is first
        assert registry.get("absent") is None

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total")
        with pytest.raises(ValueError):
            registry.gauge("repro_test_total")

    def test_label_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total", labelnames=("a",))
        with pytest.raises(ValueError):
            registry.counter("repro_test_total", labelnames=("b",))

    def test_invalid_names_raise(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("0bad")
        with pytest.raises(ValueError):
            registry.counter("bad-name")
        with pytest.raises(ValueError):
            registry.counter("repro_ok_total", labelnames=("le-bad",))
        with pytest.raises(ValueError):
            registry.counter("repro_ok_total", labelnames=("__reserved",))
        with pytest.raises(ValueError):
            registry.counter("repro_ok_total", labelnames=("a", "a"))


def _golden_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("repro_test_events_total", "Events fed.").inc(3)
    depth = registry.gauge("repro_test_queue_depth", "Queue depth.", ("shard",))
    depth.labels(shard="0").set(2)
    depth.labels(shard="1").set(0)
    latency = registry.histogram(
        "repro_test_latency_seconds", "Latency.", buckets=(0.1, 0.5)
    )
    for value in (0.1, 0.3, 2.0):
        latency.observe(value)
    return registry


GOLDEN_EXPOSITION = """\
# HELP repro_test_events_total Events fed.
# TYPE repro_test_events_total counter
repro_test_events_total 3
# HELP repro_test_queue_depth Queue depth.
# TYPE repro_test_queue_depth gauge
repro_test_queue_depth{shard="0"} 2
repro_test_queue_depth{shard="1"} 0
# HELP repro_test_latency_seconds Latency.
# TYPE repro_test_latency_seconds histogram
repro_test_latency_seconds_bucket{le="0.1"} 1
repro_test_latency_seconds_bucket{le="0.5"} 2
repro_test_latency_seconds_bucket{le="+Inf"} 3
repro_test_latency_seconds_sum 2.4
repro_test_latency_seconds_count 3
"""


class TestPrometheusExposition:
    def test_golden_text(self):
        assert render_prometheus(_golden_registry()) == GOLDEN_EXPOSITION

    def test_golden_text_passes_the_grammar(self):
        assert validate_prometheus_text(GOLDEN_EXPOSITION) == []

    def test_rendering_is_deterministic(self):
        assert render_prometheus(_golden_registry()) == render_prometheus(
            _golden_registry()
        )

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total", "Help.", ("path",))
        counter.labels(path='a\\b"c\nd').inc()
        text = render_prometheus(registry)
        assert 'path="a\\\\b\\"c\\nd"' in text
        assert validate_prometheus_text(text) == []

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
        assert validate_prometheus_text("") == []

    def test_to_prometheus_convenience(self):
        registry = _golden_registry()
        assert registry.to_prometheus() == GOLDEN_EXPOSITION


class TestPrometheusValidator:
    def test_rejects_malformed_sample(self):
        problems = validate_prometheus_text("this is { not a sample\n")
        assert problems and "malformed sample" in problems[0]

    def test_rejects_sample_before_type(self):
        problems = validate_prometheus_text("repro_x_total 1\n")
        assert any("before its TYPE" in p for p in problems)

    def test_rejects_histogram_inf_count_mismatch(self):
        text = (
            "# HELP repro_h H\n"
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 1\n'
            'repro_h_bucket{le="+Inf"} 2\n'
            "repro_h_sum 1\n"
            "repro_h_count 3\n"
        )
        problems = validate_prometheus_text(text)
        assert any("!= _count" in p for p in problems)

    def test_rejects_non_cumulative_buckets(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            'repro_h_bucket{le="2"} 3\n'
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_count 5\n"
        )
        problems = validate_prometheus_text(text)
        assert any("not cumulative" in p for p in problems)

    def test_rejects_missing_inf_bucket(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 1\n'
            "repro_h_count 1\n"
        )
        problems = validate_prometheus_text(text)
        assert any("missing +Inf" in p for p in problems)

    def test_histogram_family_with_no_samples_is_legal(self):
        text = "# HELP repro_h H\n# TYPE repro_h histogram\n"
        assert validate_prometheus_text(text) == []


class TestJsonExport:
    def test_structure(self):
        payload = metrics_to_json(_golden_registry())
        by_name = {family["name"]: family for family in payload["metrics"]}
        events = by_name["repro_test_events_total"]
        assert events["kind"] == "counter"
        assert events["samples"] == [{"labels": {}, "value": 3.0}]
        depth = by_name["repro_test_queue_depth"]
        assert depth["samples"][0] == {"labels": {"shard": "0"}, "value": 2.0}
        latency = by_name["repro_test_latency_seconds"]
        (sample,) = latency["samples"]
        assert sample["count"] == 3
        assert sample["sum"] == pytest.approx(2.4)
        assert sample["buckets"][-1] == {"le": "+Inf", "count": 3}
        assert sample["buckets"][0] == {"le": 0.1, "count": 1}

    def test_round_trips_through_json(self):
        import json

        payload = metrics_to_json(_golden_registry())
        assert json.loads(json.dumps(payload)) == payload

    def test_to_json_convenience(self):
        registry = _golden_registry()
        assert registry.to_json() == metrics_to_json(registry)
