"""Tests for the nested-branch insurance workload (transitive guards)."""

from __future__ import annotations

import pytest

from repro.analysis.conditions import Cond
from repro.core.pipeline import DSCWeaver, extract_all_dependencies
from repro.petri.from_constraints import constraint_set_to_petri_net
from repro.petri.soundness import check_soundness
from repro.scheduler.engine import ConstraintScheduler
from repro.workloads.insurance import (
    build_insurance_process,
    insurance_cooperation,
)


@pytest.fixture(scope="module")
def insurance():
    process = build_insurance_process()
    dependencies = extract_all_dependencies(
        process, cooperation=insurance_cooperation(process).dependencies
    )
    return process, DSCWeaver().weave(process, dependencies)


class TestNestedGuards:
    def test_transitive_effective_guard(self, insurance):
        _process, weave = insurance
        assert weave.minimal.effective_guard("payFastTrack") == frozenset(
            {Cond("if_severity", "T"), Cond("if_valid", "T")}
        )
        assert weave.minimal.effective_guard("settleClaim") == frozenset(
            {Cond("if_severity", "F"), Cond("if_valid", "T")}
        )
        assert weave.minimal.effective_guard("rejectClaim") == frozenset(
            {Cond("if_valid", "F")}
        )

    def test_direct_guards_are_single(self, insurance):
        """Nested structure keeps direct guards single-condition (the
        innermost branch), which the Petri translations require."""
        _process, weave = insurance
        for activity in weave.minimal.activities:
            assert len(weave.minimal.guard_of(activity)) <= 1

    def test_reduction(self, insurance):
        _process, weave = insurance
        assert weave.report.raw_total == 30
        assert weave.report.minimal == 14
        assert weave.report.removed == 16

    def test_petri_sound(self, insurance):
        _process, weave = insurance
        net, _ = constraint_set_to_petri_net(weave.minimal)
        assert check_soundness(net).is_sound


class TestNestedExecution:
    @pytest.mark.parametrize(
        "valid,severity,executed,skipped",
        [
            ("T", "T", ["payFastTrack"], ["settleClaim", "rejectClaim"]),
            ("T", "F", ["settleClaim"], ["payFastTrack", "rejectClaim"]),
            (
                "F",
                "T",
                ["rejectClaim"],
                ["if_severity", "payFastTrack", "settleClaim", "triage"],
            ),
        ],
    )
    def test_branch_combinations(self, insurance, valid, severity, executed, skipped):
        process, weave = insurance
        run = ConstraintScheduler(process, weave.minimal).run(
            outcomes={"if_valid": valid, "if_severity": severity}
        )
        for name in executed:
            assert run.trace.records[name].executed, name
        for name in skipped:
            assert run.trace.records[name].skipped, name
        # Archival and reply always happen, in order.
        assert run.trace.happened_before("invArchive_outcome", "replyClient_outcome")

    def test_skipped_inner_guard_resolves_no_outcome(self, insurance):
        process, weave = insurance
        run = ConstraintScheduler(process, weave.minimal).run(
            outcomes={"if_valid": "F"}
        )
        assert "if_severity" not in run.outcomes
        assert run.outcomes == {"if_valid": "F"}

    def test_investigation_uses_inspector_latency(self, insurance):
        process, weave = insurance
        run = ConstraintScheduler(process, weave.minimal).run(
            outcomes={"if_valid": "T", "if_severity": "F"}
        )
        invoke = run.trace.records["invInspector_claim"]
        receive = run.trace.records["recInspector_report"]
        assert receive.start >= invoke.finish + 2.0  # Inspector latency
