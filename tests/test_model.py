"""Tests for the process model: activities, services, processes, builder."""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.model.activity import Activity, ActivityKind, ActivityState, StateRef
from repro.model.builder import ProcessBuilder
from repro.model.process import Branch, BusinessProcess
from repro.model.service import PortRef, Service
from repro.model.variables import Variable


class TestActivityState:
    def test_letters(self):
        assert ActivityState.from_letter("S") is ActivityState.START
        assert ActivityState.from_letter("R") is ActivityState.RUN
        assert ActivityState.from_letter("F") is ActivityState.FINISH

    def test_unknown_letter(self):
        with pytest.raises(ValueError):
            ActivityState.from_letter("X")

    def test_state_ref_rendering(self):
        ref = StateRef("a1", ActivityState.FINISH)
        assert str(ref) == "F(a1)"


class TestActivity:
    def test_guard_gets_boolean_domain_by_default(self):
        guard = Activity("if_x", ActivityKind.GUARD)
        assert guard.outcomes == frozenset({"T", "F"})
        assert guard.is_guard

    def test_non_guard_cannot_declare_outcomes(self):
        with pytest.raises(ModelError):
            Activity("a", ActivityKind.COMPUTE, outcomes=frozenset({"T"}))

    def test_invoke_requires_port(self):
        with pytest.raises(ModelError):
            Activity("a", ActivityKind.INVOKE)

    def test_negative_duration_rejected(self):
        with pytest.raises(ModelError):
            Activity("a", ActivityKind.COMPUTE, duration=-1.0)

    def test_empty_name_rejected(self):
        with pytest.raises(ModelError):
            Activity("", ActivityKind.COMPUTE)

    def test_interacts(self):
        invoke = Activity(
            "call", ActivityKind.INVOKE, port=PortRef("Svc", "Svc")
        )
        assert invoke.interacts
        assert not Activity("calc", ActivityKind.COMPUTE).interacts


class TestService:
    def test_single_port_named_after_service(self):
        service = Service("Credit")
        assert [p.name for p in service.request_ports] == ["Credit"]

    def test_async_adds_dummy_port(self):
        service = Service("Credit", asynchronous=True)
        assert service.dummy_port is not None
        assert service.dummy_port.name == "Credit_d"
        assert service.dummy_port.is_dummy

    def test_sequential_orderings(self):
        service = Service(
            "Purchase", ports=["P1", "P2"], asynchronous=True, sequential=True
        )
        orderings = {
            (a.port, b.port) for a, b in service.internal_orderings()
        }
        assert orderings == {("P1", "P2"), ("P1", "Purchase_d"), ("P2", "Purchase_d")}

    def test_non_sequential_non_async_has_no_orderings(self):
        service = Service("Production", ports=["P1", "P2"])
        assert service.internal_orderings() == []

    def test_duplicate_ports_rejected(self):
        with pytest.raises(ModelError):
            Service("S", ports=["p", "p"])

    def test_dummy_name_collision_rejected(self):
        with pytest.raises(ModelError):
            Service("S", ports=["S_d"], asynchronous=True)

    def test_unknown_port_lookup(self):
        with pytest.raises(ModelError):
            Service("S").port("nope")


class TestBusinessProcess:
    def test_duplicate_activity_rejected(self):
        process = BusinessProcess("p")
        process.add_activity(Activity("a", ActivityKind.COMPUTE))
        with pytest.raises(ModelError):
            process.add_activity(Activity("a", ActivityKind.COMPUTE))

    def test_activity_auto_registers_variables(self):
        process = BusinessProcess("p")
        process.add_activity(
            Activity("a", ActivityKind.COMPUTE, writes=frozenset({"x"}))
        )
        assert [v.name for v in process.variables] == ["x"]

    def test_invoke_must_reference_known_service(self):
        process = BusinessProcess("p")
        with pytest.raises(ModelError):
            process.add_activity(
                Activity("a", ActivityKind.INVOKE, port=PortRef("Nope", "Nope"))
            )

    def test_invoke_cannot_target_dummy_port(self):
        process = BusinessProcess("p")
        process.add_service(Service("S", asynchronous=True))
        with pytest.raises(ModelError):
            process.add_activity(
                Activity("a", ActivityKind.INVOKE, port=PortRef("S", "S_d"))
            )

    def test_receive_must_listen_on_dummy_port(self):
        process = BusinessProcess("p")
        process.add_service(Service("S", asynchronous=True))
        with pytest.raises(ModelError):
            process.add_activity(
                Activity("a", ActivityKind.RECEIVE, port=PortRef("S", "S"))
            )

    def test_branch_guard_must_be_guard_kind(self):
        process = BusinessProcess("p")
        process.add_activity(Activity("a", ActivityKind.COMPUTE))
        process.add_activity(Activity("b", ActivityKind.COMPUTE))
        with pytest.raises(ModelError):
            process.add_branch(Branch("a", {"T": ("b",)}))

    def test_branch_outcomes_must_be_in_domain(self):
        process = BusinessProcess("p")
        process.add_activity(Activity("g", ActivityKind.GUARD))
        process.add_activity(Activity("b", ActivityKind.COMPUTE))
        with pytest.raises(ModelError):
            process.add_branch(Branch("g", {"MAYBE": ("b",)}))

    def test_guard_of(self):
        process = BusinessProcess("p")
        process.add_activity(Activity("g", ActivityKind.GUARD))
        process.add_activity(Activity("b", ActivityKind.COMPUTE))
        process.add_branch(Branch("g", {"T": ("b",)}))
        assert process.guard_of("b") == [("g", "T")]
        assert process.guard_of("g") == []

    def test_writers_and_readers(self):
        process = BusinessProcess("p")
        process.add_activity(
            Activity("w", ActivityKind.COMPUTE, writes=frozenset({"x"}))
        )
        process.add_activity(
            Activity("r", ActivityKind.COMPUTE, reads=frozenset({"x"}))
        )
        assert [a.name for a in process.writers_of("x")] == ["w"]
        assert [a.name for a in process.readers_of("x")] == ["r"]


class TestBuilder:
    def test_fluent_construction(self):
        process = (
            ProcessBuilder("demo")
            .service("Svc", asynchronous=True)
            .receive("intake", writes=["x"])
            .invoke("call", service="Svc", reads=["x"])
            .receive("answer", service="Svc", writes=["y"])
            .reply("reply", reads=["y"])
            .build()
        )
        assert process.activity_names == ["intake", "call", "answer", "reply"]
        assert process.activity("call").port == PortRef("Svc", "Svc")
        assert process.activity("answer").port == PortRef("Svc", "Svc_d")

    def test_invoke_needs_port_when_ambiguous(self):
        builder = ProcessBuilder("demo").service("S", ports=["p1", "p2"])
        with pytest.raises(ModelError):
            builder.invoke("call", service="S")

    def test_receive_from_sync_service_rejected(self):
        builder = ProcessBuilder("demo").service("S")
        with pytest.raises(ModelError):
            builder.receive("r", service="S")

    def test_branch_validation(self):
        builder = (
            ProcessBuilder("demo")
            .receive("in", writes=["x"])
            .guard("g", reads=["x"])
            .compute("a")
        )
        builder.branch("g", cases={"T": ["a"]})
        process = builder.build()
        assert process.branches[0].outcome_of("a") == "T"
        assert process.branches[0].outcome_of("in") is None

    def test_port_names(self, purchasing_process):
        names = purchasing_process.port_names()
        assert "Purchase1" in names
        assert "Purchase_d" in names
        assert "Production2" in names
        assert "Credit_d" in names
