"""Tests for the UML activity-diagram import path."""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.uml.extract import diagram_dependencies
from repro.uml.model import ActivityDiagram, NodeKind
from repro.uml.xmlio import diagram_from_xml, diagram_to_xml


def figure3_diagram() -> ActivityDiagram:
    """The Figure 3 toy process as an activity diagram."""
    diagram = ActivityDiagram("Figure3")
    diagram.add_node("start", NodeKind.INITIAL)
    diagram.add_node("stop", NodeKind.FINAL)
    for action in ("a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7"):
        diagram.action(action)
    diagram.add_node("d", NodeKind.DECISION)
    diagram.add_node("m", NodeKind.MERGE)
    diagram.flow("start", "a0")
    diagram.flow("a0", "a1")
    diagram.flow("a1", "d")
    diagram.flow("d", "a2", guard="T")
    diagram.flow("a2", "a3")
    diagram.flow("a3", "a4")
    diagram.flow("a4", "m")
    diagram.flow("d", "a5", guard="F")
    diagram.flow("a5", "a6")
    diagram.flow("a6", "m")
    diagram.flow("m", "a7")
    diagram.flow("a7", "stop")
    diagram.object_flow("a2", "a3", "y")
    return diagram


class TestModel:
    def test_duplicate_node_rejected(self):
        diagram = ActivityDiagram("d")
        diagram.action("a")
        with pytest.raises(ModelError):
            diagram.action("a")

    def test_flow_requires_known_nodes(self):
        diagram = ActivityDiagram("d")
        diagram.action("a")
        with pytest.raises(ModelError):
            diagram.flow("a", "ghost")

    def test_object_flow_only_between_actions(self):
        diagram = ActivityDiagram("d")
        diagram.action("a")
        diagram.add_node("dec", NodeKind.DECISION)
        with pytest.raises(ModelError):
            diagram.object_flow("a", "dec", "x")

    def test_validate_requires_initial_and_final(self):
        diagram = ActivityDiagram("d")
        diagram.action("a")
        with pytest.raises(ModelError):
            diagram.validate()

    def test_guard_only_on_decision_edges(self):
        diagram = ActivityDiagram("d")
        diagram.add_node("start", NodeKind.INITIAL)
        diagram.add_node("stop", NodeKind.FINAL)
        diagram.action("a")
        diagram.flow("start", "a", guard="oops")
        diagram.flow("a", "stop")
        with pytest.raises(ModelError):
            diagram.validate()

    def test_figure3_validates(self):
        figure3_diagram().validate()


class TestXmlRoundTrip:
    def test_round_trip(self):
        diagram = figure3_diagram()
        assert diagram_from_xml(diagram_to_xml(diagram)) == diagram

    def test_bad_xml(self):
        with pytest.raises(ModelError):
            diagram_from_xml("<notADiagram/>")
        with pytest.raises(ModelError):
            diagram_from_xml("garbage <<")

    def test_unknown_kind(self):
        xml = '<activityDiagram name="d"><node name="x" kind="banana"/></activityDiagram>'
        with pytest.raises(ModelError):
            diagram_from_xml(xml)


class TestExtraction:
    def test_figure3_dependencies(self):
        dependencies = diagram_dependencies(figure3_diagram())
        rendered = {str(d) for d in dependencies}
        # Data: the single object flow.
        assert "a2 ->d a3" in rendered
        # Control: anchored on a1 (the action feeding the decision).
        assert "a1 ->T a2" in rendered
        assert "a1 ->T a3" in rendered
        assert "a1 ->T a4" in rendered
        assert "a1 ->F a5" in rendered
        assert "a1 ->F a6" in rendered
        # a7 post-dominates: only the unconditional join edge.
        assert "a1 ->NONE a7" in rendered
        assert not any(
            r.endswith(" a7") and "NONE" not in r for r in rendered
        )

    def test_fork_join_produces_no_control_dependencies(self):
        diagram = ActivityDiagram("par")
        diagram.add_node("start", NodeKind.INITIAL)
        diagram.add_node("stop", NodeKind.FINAL)
        diagram.add_node("f", NodeKind.FORK)
        diagram.add_node("j", NodeKind.JOIN)
        for action in ("a", "b"):
            diagram.action(action)
        diagram.flow("start", "f")
        diagram.flow("f", "a")
        diagram.flow("f", "b")
        diagram.flow("a", "j")
        diagram.flow("b", "j")
        diagram.flow("j", "stop")
        dependencies = diagram_dependencies(diagram)
        assert dependencies.control == []

    def test_diagram_feeds_weave_pipeline(self):
        """Dependencies extracted from the diagram drive the optimizer the
        same way model-extracted ones do."""
        from repro.core.minimize import minimize
        from repro.dscl.compiler import compile_program, dependencies_to_program

        dependencies = diagram_dependencies(figure3_diagram())
        program = dependencies_to_program(dependencies)
        compiled = compile_program(
            program,
            activities=["a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7"],
        )
        sc = compiled.sc.with_guards(compiled.sc.derive_guards_from_constraints())
        minimal = minimize(sc)
        # The conditional shortcuts a1 ->T a3 / a1 ->T a4 collapse onto the
        # chain a1 ->T a2 -> a3 -> a4 ... wait: a2 -> a3 is the only
        # intra-branch data edge, so a4 keeps its control edge.
        assert minimal.has_constraint("a1", "a2", "T")
        assert not minimal.has_constraint("a1", "a3", "T")
        assert len(minimal) < len(sc)
