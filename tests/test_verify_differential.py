"""Differential validation of the symbolic verifier (satellite of PR 6).

Three independent oracles must agree with :mod:`repro.verify`:

1. **Brute force** — for random guarded DAGs, enumerating every guard
   valuation through the single-case :class:`ConstraintScheduler` must
   agree on deadlock-freedom, dead activities, and the set of final
   ``(executed, skipped)`` states.  Coarse (service-free, two-phase-free)
   programs are confluent per valuation, so one scheduler run per
   valuation is an exhaustive oracle.
2. **Petri soundness** — the verifier's predicted soundness verdict must
   match :func:`repro.petri.soundness.check_soundness` on the translated
   net (:func:`repro.verify.petri_cross_check`).
3. **Minimization invariance** — the paper's Theorem 1 says the minimal
   and full constraint sets are execution-equivalent, so every workload
   must get identical VER001/VER002/VER003 verdicts from both, and the
   minimal sets must carry no inert constraints at all.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.programs import program_from_weave, select_constraint_set
from repro.scheduler.engine import ConstraintScheduler
from repro.verify import (
    StateSpace,
    petri_cross_check,
    synthesize_process,
    verify_constraints,
    verify_program,
)

from tests.strategies import constraint_sets, unconditional_constraint_sets


def _guards_of(sc):
    names = {cond.guard for conds in sc.guards.values() for cond in conds}
    names.update(
        constraint.source
        for constraint in sc.constraints
        if constraint.condition is not None
    )
    return sorted(names)


def _brute_force(sc):
    """Every guard valuation through the scheduler, one run each."""
    process = synthesize_process(sc)
    guards = _guards_of(sc)
    domains = [sorted(sc.domains.domain(guard)) for guard in guards]
    runs = []
    for values in itertools.product(*domains) if guards else [()]:
        scheduler = ConstraintScheduler(process, sc)
        result = scheduler.run(
            outcomes=dict(zip(guards, values)), raise_on_deadlock=False
        )
        runs.append(result)
    return runs


def _scheduler_finals(sc, runs):
    finals = set()
    for result in runs:
        if result.deadlocked:
            continue
        executed = frozenset(result.executed_names())
        finals.add((executed, frozenset(sc.activities) - executed))
    return finals


def _verifier_finals(sc):
    from repro.runtime.program import compile_program

    program = compile_program(synthesize_process(sc), sc)
    space = StateSpace(program)
    exploration = space.explore(mode="full")
    masks = space.masks
    finals = {
        (
            frozenset(masks.names_of(terminal.done)),
            frozenset(masks.names_of(terminal.skipped)),
        )
        for terminal in exploration.terminals
        if not terminal.deadlocked
    }
    return finals, exploration


class TestBruteForceDifferential:
    @settings(max_examples=60, deadline=None)
    @given(constraint_sets(max_nodes=10, max_edges=18))
    def test_guarded_dags_agree_with_the_scheduler(self, sc):
        report = verify_constraints(sc)
        runs = _brute_force(sc)

        assert report.deadlock_free is (not any(r.deadlocked for r in runs))

        executed_ever = set()
        for result in runs:
            executed_ever.update(result.executed_names())
        assert set(report.dead_activities) == set(sc.activities) - executed_ever

        verifier_finals, _ = _verifier_finals(sc)
        assert verifier_finals == _scheduler_finals(sc, runs)
        assert report.distinct_finals == len(verifier_finals)

    @settings(max_examples=40, deadline=None)
    @given(unconditional_constraint_sets(max_nodes=10))
    def test_unconditional_dags_always_prove_and_run_everything(self, sc):
        report = verify_constraints(sc)
        assert report.deadlock_free is True
        assert report.dead_activities == ()
        assert report.unreachable_branches == ()
        assert report.distinct_finals == 1
        (run,) = _brute_force(sc)
        assert not run.deadlocked
        assert set(run.executed_names()) == set(sc.activities)

    @settings(max_examples=40, deadline=None)
    @given(constraint_sets(max_nodes=8), st.integers(min_value=0, max_value=3))
    def test_interleaving_choice_never_changes_the_verdict(self, sc, seed):
        # Coarse programs are confluent: shuffling scheduler tie-breaking
        # (via activity durations) must not create or remove deadlocks.
        from repro.model.builder import ProcessBuilder

        guard_names = set(_guards_of(sc))
        builder = ProcessBuilder("jittered")
        for position, name in enumerate(sc.activities):
            duration = 1.0 + ((position * 7 + seed * 3) % 5)
            if name in guard_names:
                builder.guard(
                    name,
                    outcomes=sorted(sc.domains.domain(name)),
                    duration=duration,
                )
            else:
                builder.compute(name, duration=duration)
        process = builder.build()
        report = verify_constraints(sc)
        guards = _guards_of(sc)
        domains = [sorted(sc.domains.domain(guard)) for guard in guards]
        deadlocked = False
        for values in itertools.product(*domains) if guards else [()]:
            result = ConstraintScheduler(process, sc).run(
                outcomes=dict(zip(guards, values)), raise_on_deadlock=False
            )
            deadlocked = deadlocked or result.deadlocked
        assert report.deadlock_free is (not deadlocked)


class TestPetriDifferential:
    @settings(max_examples=40, deadline=None)
    @given(constraint_sets(max_nodes=7, max_edges=12))
    def test_random_sets_agree_with_the_soundness_checker(self, sc):
        from repro.errors import PetriNetError

        try:
            cross = petri_cross_check(sc)
        except PetriNetError:
            pytest.skip("set not expressible as a workflow net")
        assert cross.agrees is not False, (
            "verifier predicted %r but the petri checker found %r (%s)"
            % (
                cross.predicted_sound,
                cross.soundness.is_sound,
                cross.soundness.problems,
            )
        )


@pytest.fixture(params=["purchasing", "deployment", "loan", "travel", "insurance"])
def workload(request, all_weaves):
    return request.param, all_weaves[request.param]


class TestWorkloadPins:
    def test_minimal_and_full_sets_verify_identically(self, workload):
        name, (_process, result) = workload
        minimal = verify_program(program_from_weave(result, which="minimal", target="runtime"))
        full = verify_program(program_from_weave(result, which="full", target="runtime"))
        assert minimal.deadlock_free is True, name
        assert full.deadlock_free is True, name
        assert minimal.dead_activities == full.dead_activities == ()
        assert minimal.unreachable_branches == full.unreachable_branches == ()
        assert minimal.distinct_finals == full.distinct_finals

    def test_minimal_sets_have_no_inert_constraints(self, workload):
        name, (_process, result) = workload
        report = verify_program(
            program_from_weave(result, which="minimal", target="runtime")
        )
        assert report.influence_analyzed, name
        assert report.inert_constraints == (), name

    def test_full_set_inert_constraints_are_all_redundant(self, workload):
        # Every constraint the influence analysis calls inert must be one
        # minimization also discards — VER004 under-approximates Theorem 1.
        name, (_process, result) = workload
        report = verify_program(
            program_from_weave(result, which="full", target="runtime")
        )
        minimal_ids = {str(c) for c in select_constraint_set(result, "minimal").constraints}
        assert not set(report.inert_constraints) & minimal_ids, name

    def test_cross_check_agrees_on_both_sets(self, workload):
        name, (_process, result) = workload
        for which in ("minimal", "full"):
            sc = select_constraint_set(result, which)
            cross = petri_cross_check(sc)
            assert cross.agrees is True, (name, which, cross.soundness.problems)

    def test_scheduler_and_verifier_agree_on_workload_finals(self, workload):
        name, (_process, result) = workload
        sc = select_constraint_set(result, "minimal")
        runs = _brute_force(sc)
        assert not any(r.deadlocked for r in runs), name
        verifier_finals, _ = _verifier_finals(sc)
        assert verifier_finals == _scheduler_finals(sc, runs), name
