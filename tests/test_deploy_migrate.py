"""Tests for live case migration (`repro.deploy.migrate`).

Pinned contract: the preflight gate and swap-time rejections agree with
the VER005 strand analysis exactly; behavior-preserving edits upgrade
every resident case; divergent edits drain (never corrupt) them; the
strategy matrix maps classifications to actions; a crash between the
``begin`` and ``commit`` dep records rolls forward at recovery to the
same final states and version assignments as an uncrashed run.
"""

from __future__ import annotations

import json

import pytest

from repro.conformance.events import FINISH, Event
from repro.conformance.monitor import compile_monitor
from repro.core.constraints import Constraint, SynchronizationConstraintSet
from repro.deploy import (
    MigrationEngine,
    ProgramRegistry,
    ProgramVersion,
    execute_swap,
    preflight,
    resume_swap,
)
from repro.deploy.rules import (
    CASE_REJECTED_AT_SWAP,
    MIGRATION_WOULD_STRAND,
    PREFIX_REPLAY_DIVERGED,
    PREFLIGHT_STRAND_GATE,
    SWAP_RECOVERED,
)
from repro.runtime.coordinator import Runtime
from repro.runtime.journal import read_journal
from repro.runtime.program import compile_program
from repro.runtime.workers import SimulatedCrash, WorkerPool, WorkerPoolError
from repro.verify import synthesize_process

# A declared edge the purchasing minimizer removed (behavior-preserving
# to drop) and one it kept (dropping it changes observable order).
REDUNDANT_EDGE = Constraint("recClient_po", "invPurchase_po")
MINIMAL_EDGE = Constraint("recClient_po", "invCredit_po")


def _version(number, constraints, activities):
    sc = SynchronizationConstraintSet(activities=activities, constraints=constraints)
    program = compile_program(synthesize_process(sc), sc)
    return ProgramVersion(number, sc, sc, program, compile_monitor(sc))


@pytest.fixture(scope="module")
def chain_versions():
    """v1 = a->b->c; v2 adds c->b, stranding prefixes () and (a,)."""
    activities = ("a", "b", "c")
    old = _version(1, [Constraint("a", "b"), Constraint("b", "c")], activities)
    new = _version(
        2,
        [Constraint("a", "b"), Constraint("b", "c"), Constraint("c", "b")],
        activities,
    )
    return old, new


def _plans(count):
    return {
        "case-%03d" % i: {"if_au": "T" if i % 2 == 0 else "F"}
        for i in range(count)
    }


def _swap_fixture(purchasing_weave, tmp_path, removed, strategy="upgrade",
                  cases=12, after=4, dry_run=False):
    """Run purchasing to a mid-flight barrier, swap, finish; return all."""
    registry = ProgramRegistry.from_weave(purchasing_weave)
    result = registry.redeploy(removed=(removed,))
    old, new = registry.version(1), result.version
    runtime = Runtime(old.program, journal_path=str(tmp_path / "journal.jsonl"))
    runtime.submit_batch(_plans(cases))
    runtime.run_until_completed(after)
    engine = MigrationEngine(old, new)
    plan = execute_swap(runtime, engine, strategy, dry_run=dry_run)
    report = runtime.run()
    return plan, report, runtime


class TestPreflight:
    def test_relaxing_edit_is_clean(self, chain_versions):
        old, _ = chain_versions
        relaxed = _version(2, [Constraint("a", "b")], ("a", "b", "c"))
        report, findings = preflight(old, relaxed)
        assert list(report.stranded) == []
        assert findings == []

    def test_stranding_edit_gates_with_dep005(self, chain_versions):
        old, new = chain_versions
        report, findings = preflight(old, new)
        assert [executed for executed, _, _ in report.stranded] == [(), ("a",)]
        assert len(findings) == len(report.stranded)
        assert {f.code for f in findings} == {PREFLIGHT_STRAND_GATE}
        assert all(f.severity.name == "ERROR" for f in findings)
        assert "v1 -> v2" in findings[0].message

    def test_truncated_sweep_is_undecided_hence_an_error(self, chain_versions):
        old, new = chain_versions
        report, findings = preflight(old, new, state_limit=1)
        assert report.truncated
        assert any("truncated" in f.message for f in findings)
        assert all(f.code == PREFLIGHT_STRAND_GATE for f in findings)


class TestClassification:
    def test_rejections_match_ver005_exactly(self, chain_versions):
        """Swap-time rejects are precisely the VER005 stranded prefixes."""
        old, new = chain_versions
        report, _ = preflight(old, new)
        stranded = {executed for executed, _, _ in report.stranded}
        engine = MigrationEngine(old, new)
        rejected = set()
        for prefix in [(), ("a",), ("a", "b"), ("a", "b", "c")]:
            events = tuple(
                Event(case="probe", activity=activity, lifecycle=FINISH, time=float(i))
                for i, activity in enumerate(prefix)
            )
            # The reject decision never consults the runtime: it is a pure
            # function of the journaled prefix (classify returns before the
            # probe), which is what makes crash re-classification safe.
            classification, reasons, diagnostics = engine.classify(
                None, "probe", events
            )
            if classification == "reject":
                rejected.add(prefix)
                assert {d.code for d in diagnostics} == {MIGRATION_WOULD_STRAND}
                assert reasons
        assert rejected == stranded

    def test_upgrade_all_on_redundant_edge_removal(
        self, purchasing_weave, tmp_path
    ):
        plan, report, runtime = _swap_fixture(
            purchasing_weave, tmp_path, REDUNDANT_EDGE
        )
        assert plan.applied
        assert plan.upgraded == len(plan.decisions) > 0
        assert plan.drained == plan.rejected == 0
        assert all(r.status == "completed" for r in report.results.values())
        # Pre-swap completions stay attributed to v1; migrated ones to v2.
        versions = sorted(set(report.versions.values()))
        assert versions == [1, 2]
        assert list(report.versions.values()).count(2) == plan.upgraded
        assert runtime.upgraded == plan.upgraded

    def test_minimal_edge_removal_drains(self, purchasing_weave, tmp_path):
        plan, report, runtime = _swap_fixture(
            purchasing_weave, tmp_path, MINIMAL_EDGE
        )
        assert plan.upgraded == 0
        assert plan.drained == len(plan.decisions) > 0
        assert {d.code for d in plan.diagnostics} == {PREFIX_REPLAY_DIVERGED}
        # Draining is safe: every case still completes, all on v1.
        assert all(r.status == "completed" for r in report.results.values())
        assert set(report.versions.values()) == {1}
        assert runtime.drained == plan.drained


class TestStrategyMatrix:
    def test_drain_strategy_keeps_everything_on_v1(
        self, purchasing_weave, tmp_path
    ):
        plan, report, _ = _swap_fixture(
            purchasing_weave, tmp_path, REDUNDANT_EDGE, strategy="drain"
        )
        assert plan.upgraded == plan.rejected == 0
        assert plan.drained == len(plan.decisions) > 0
        assert set(report.versions.values()) == {1}

    def test_reject_strategy_fails_non_upgradable_cases(
        self, purchasing_weave, tmp_path
    ):
        plan, report, runtime = _swap_fixture(
            purchasing_weave, tmp_path, MINIMAL_EDGE, strategy="reject"
        )
        assert plan.rejected == len(plan.decisions) > 0
        assert {d.code for d in plan.diagnostics} >= {CASE_REJECTED_AT_SWAP}
        rejected_cases = {d.case for d in plan.decisions if d.action == "reject"}
        for case in rejected_cases:
            assert report.results[case].status == "failed"
        assert runtime.swap_rejected == plan.rejected

    def test_dry_run_applies_nothing(self, purchasing_weave, tmp_path):
        plan, report, runtime = _swap_fixture(
            purchasing_weave, tmp_path, REDUNDANT_EDGE, dry_run=True
        )
        assert not plan.applied
        assert plan.upgraded > 0  # the plan still classifies...
        assert runtime.upgraded == 0  # ...but nothing moved.
        assert set(report.versions.values()) == {1}
        state = read_journal(str(tmp_path / "journal.jsonl"))
        assert state.deploys == []
        assert state.current_version() == 1


class TestGuards:
    def test_unknown_strategy_rejected(self, purchasing_weave, tmp_path):
        registry = ProgramRegistry.from_weave(purchasing_weave)
        result = registry.redeploy(removed=(REDUNDANT_EDGE,))
        runtime = Runtime(
            registry.version(1).program,
            journal_path=str(tmp_path / "journal.jsonl"),
        )
        engine = MigrationEngine(registry.version(1), result.version)
        with pytest.raises(ValueError, match="strategy"):
            execute_swap(runtime, engine, "yolo")

    def test_swap_without_journal_rejected(self, purchasing_weave):
        registry = ProgramRegistry.from_weave(purchasing_weave)
        result = registry.redeploy(removed=(REDUNDANT_EDGE,))
        runtime = Runtime(registry.version(1).program)
        engine = MigrationEngine(registry.version(1), result.version)
        with pytest.raises(ValueError, match="journal"):
            execute_swap(runtime, engine)

    def test_pool_swap_requires_journal_dir(self, purchasing_weave):
        from repro.deploy import PoolSwap

        registry = ProgramRegistry.from_weave(purchasing_weave)
        result = registry.redeploy(removed=(REDUNDANT_EDGE,))
        swap = PoolSwap(
            old=registry.version(1), new=result.version,
            strategy="upgrade", after=4,
        )
        with pytest.raises(WorkerPoolError, match="journal_dir"):
            WorkerPool(registry.version(1).program, workers=2, deploy=swap)


class TestCrashDuringSwap:
    """Crash-mid-swap rolls forward to the uncrashed run's exact outcome."""

    def _baseline(self, purchasing_weave, tmp_path):
        plan, report, _ = _swap_fixture(
            purchasing_weave, tmp_path / "clean", REDUNDANT_EDGE
        )
        return plan, report

    def test_resume_swap_reaches_the_clean_outcome(
        self, purchasing_weave, tmp_path
    ):
        (tmp_path / "clean").mkdir()
        plan, clean = self._baseline(purchasing_weave, tmp_path)
        # Crash two records after dep:begin — inside the swap window, so
        # the begin and the first assign are durable but the commit is not.
        clean_journal = tmp_path / "clean" / "journal.jsonl"
        lines = clean_journal.read_text().splitlines()
        begin_at = next(
            i for i, line in enumerate(lines) if '"rt":"dep"' in line
        )
        crash_after = begin_at + 2

        registry = ProgramRegistry.from_weave(purchasing_weave)
        result = registry.redeploy(removed=(REDUNDANT_EDGE,))
        old, new = registry.version(1), result.version
        path = str(tmp_path / "journal.jsonl")
        runtime = Runtime(
            old.program, journal_path=path, crash_after=crash_after
        )
        runtime.submit_batch(_plans(12))
        runtime.run_until_completed(4)
        engine = MigrationEngine(old, new)
        with pytest.raises(SimulatedCrash):
            execute_swap(runtime, engine)

        state = read_journal(path, strict=False)
        pending = state.pending_deploy()
        assert pending is not None and pending["to"] == 2

        recovered = Runtime.recover(
            path,
            old.program,
            programs={1: old.program, 2: new.program},
            state=state,
        )
        resumed = resume_swap(recovered, MigrationEngine(old, new), state)
        assert resumed is not None and resumed.recovered
        assert any(d.code == SWAP_RECOVERED for d in resumed.diagnostics)
        report = recovered.run()

        assert {c: r.status for c, r in report.results.items()} == {
            c: r.status for c, r in clean.results.items()
        }
        assert dict(report.versions) == dict(clean.versions)
        committed = read_journal(path)
        assert committed.pending_deploy() is None
        assert committed.current_version() == 2

    def test_committed_swap_needs_no_resume(self, purchasing_weave, tmp_path):
        plan, report, runtime = _swap_fixture(
            purchasing_weave, tmp_path, REDUNDANT_EDGE
        )
        state = read_journal(str(tmp_path / "journal.jsonl"))
        assert state.pending_deploy() is None
        assert state.current_version() == 2
        assert state.version_map() == dict(report.versions)


class TestWorkerPoolSwap:
    """The 2-worker barrier swap and its crash recovery."""

    def _pool(self, purchasing_weave, journal_dir, crash_after=None):
        from repro.deploy import PoolSwap

        registry = ProgramRegistry.from_weave(purchasing_weave)
        result = registry.redeploy(removed=(REDUNDANT_EDGE,))
        swap = PoolSwap(
            old=registry.version(1), new=result.version,
            strategy="upgrade", after=4,
        )
        pool = WorkerPool(
            registry.version(1).program,
            workers=2,
            journal_dir=journal_dir,
            deploy=swap,
            processes=False,
            crash_after=crash_after,
        )
        return pool, swap

    def test_clean_pool_swap(self, purchasing_weave, tmp_path):
        pool, _ = self._pool(purchasing_weave, str(tmp_path / "clean"))
        report = pool.serve(_plans(24))
        metrics = report.metrics
        assert metrics.completed == 24
        assert metrics.failed == 0
        assert metrics.upgraded > 0
        assert metrics.swap_rejected == 0
        assert sorted(set(report.versions.values())) == [1, 2]
        assert list(report.versions.values()).count(2) == metrics.upgraded

    def test_crash_at_the_barrier_recovers_identically(
        self, purchasing_weave, tmp_path
    ):
        pool, _ = self._pool(purchasing_weave, str(tmp_path / "clean"))
        clean = pool.serve(_plans(24))

        # Find a crash point inside one shard's swap window.
        dep_offsets = []
        for shard in sorted((tmp_path / "clean").glob("*.jsonl")):
            lines = shard.read_text().splitlines()
            for i, line in enumerate(lines):
                if '"rt":"dep"' in line:
                    dep_offsets.append(i)
                    break
        assert dep_offsets, "no dep records in the clean pool run"
        crash_after = min(dep_offsets) + 2

        crashed_dir = str(tmp_path / "crash")
        pool, swap = self._pool(
            purchasing_weave, crashed_dir, crash_after=crash_after
        )
        with pytest.raises(SimulatedCrash):
            pool.serve(_plans(24))

        report = WorkerPool.recover(
            crashed_dir,
            swap.old.program,
            plans=_plans(24),
            deploy=swap,
            processes=False,
        )
        assert {c: r.status for c, r in report.results.items()} == {
            c: r.status for c, r in clean.results.items()
        }
        assert dict(report.versions) == dict(clean.versions)
        # Cases already terminal in the journal count as recovered, the
        # rest complete live — together they cover the whole load.
        assert len(report.results) == 24
        assert report.metrics.completed + report.metrics.recovered == 24
