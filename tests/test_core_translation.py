"""Tests for service dependency translation (Section 4.3, Figure 8)."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.closure import Semantics, internal_closure_map
from repro.core.constraints import Constraint, SynchronizationConstraintSet
from repro.core.equivalence import fact_set_covers
from repro.core.translation import (
    invoke_bindings_from_process,
    translate_service_dependencies,
)
from repro.errors import TranslationError


def mixed_sc(edges, activities, externals):
    return SynchronizationConstraintSet(
        activities=activities,
        externals=externals,
        constraints=[Constraint(*e) for e in edges],
    )


class TestBridging:
    def test_paper_example_path(self):
        """a1 -> a2 -> ws1 -> wsd -> a3 -> a4 becomes a1 -> a2 -> a3 -> a4."""
        sc = mixed_sc(
            [
                ("a1", "a2"),
                ("a2", "ws1"),
                ("ws1", "wsd"),
                ("wsd", "a3"),
                ("a3", "a4"),
            ],
            activities=["a1", "a2", "a3", "a4"],
            externals=["ws1", "wsd"],
        )
        result = translate_service_dependencies(sc)
        rendered = {str(c) for c in result.asc.constraints}
        assert rendered == {"a1 -> a2", "a2 -> a3", "a3 -> a4"}
        assert {str(c) for c in result.bridged} == {"a2 -> a3"}

    def test_external_without_offspring_vanishes(self):
        """Ports with no internal offspring are simply removed (Production)."""
        sc = mixed_sc(
            [("a", "p1"), ("b", "p2")],
            activities=["a", "b"],
            externals=["p1", "p2"],
        )
        result = translate_service_dependencies(sc)
        assert len(result.asc) == 0
        assert len(result.dropped) == 2

    def test_fan_out_through_dummy(self):
        """Ship_d delivering to two receives bridges both."""
        sc = mixed_sc(
            [("inv", "Ship"), ("Ship", "Ship_d"), ("Ship_d", "r1"), ("Ship_d", "r2")],
            activities=["inv", "r1", "r2"],
            externals=["Ship", "Ship_d"],
        )
        result = translate_service_dependencies(sc)
        assert {str(c) for c in result.asc.constraints} == {
            "inv -> r1",
            "inv -> r2",
        }


class TestContraction:
    def test_port_ordering_becomes_invocation_ordering(self):
        """Purchase1 ->s Purchase2 with bindings becomes invPo -> invSi —
        the Figure 8 bold edge bridging alone cannot produce."""
        sc = mixed_sc(
            [("invPo", "P1"), ("invSi", "P2"), ("P1", "P2")],
            activities=["invPo", "invSi"],
            externals=["P1", "P2"],
        )
        plain = translate_service_dependencies(sc)
        assert not plain.asc.has_constraint("invPo", "invSi")

        contracted = translate_service_dependencies(
            sc, invoke_bindings={"P1": "invPo", "P2": "invSi"}
        )
        assert contracted.asc.has_constraint("invPo", "invSi")
        assert len(contracted.asc) == 1

    def test_bindings_from_process(self, purchasing_process):
        bindings = invoke_bindings_from_process(purchasing_process)
        assert bindings == {
            "Credit": "invCredit_po",
            "Purchase1": "invPurchase_po",
            "Purchase2": "invPurchase_si",
            "Ship": "invShip_po",
            "Production1": "invProduction_po",
            "Production2": "invProduction_ss",
        }

    def test_binding_must_reference_external(self):
        sc = mixed_sc([("a", "p")], activities=["a"], externals=["p"])
        with pytest.raises(TranslationError):
            translate_service_dependencies(sc, invoke_bindings={"nope": "a"})

    def test_binding_target_must_be_internal(self):
        sc = mixed_sc([("a", "p")], activities=["a"], externals=["p", "q"])
        with pytest.raises(TranslationError):
            translate_service_dependencies(sc, invoke_bindings={"p": "q"})

    def test_conditional_through_external_rejected(self):
        sc = SynchronizationConstraintSet(
            activities=["g", "a"],
            externals=["p"],
            constraints=[Constraint("g", "p", "T"), Constraint("p", "a")],
        )
        with pytest.raises(TranslationError):
            translate_service_dependencies(sc)


class TestPurchasingTranslation:
    def test_figure8_bold_edges(self, purchasing_weave):
        bridged = {str(c) for c in purchasing_weave.translation.bridged}
        assert bridged == {
            "invCredit_po -> recCredit_au",
            "invPurchase_po -> invPurchase_si",
            "invPurchase_po -> recPurchase_oi",
            "invPurchase_si -> recPurchase_oi",
            "invShip_po -> recShip_si",
            "invShip_po -> recShip_ss",
        }

    def test_no_production_ordering(self, purchasing_weave):
        asc = purchasing_weave.asc
        assert not asc.has_constraint("invProduction_po", "invProduction_ss")
        assert not asc.has_constraint("invProduction_ss", "invProduction_po")

    def test_asc_has_no_externals(self, purchasing_weave):
        assert purchasing_weave.asc.is_activity_set
        external = set(purchasing_weave.merged.externals)
        for constraint in purchasing_weave.asc:
            assert constraint.source not in external
            assert constraint.target not in external

    def test_translated_count(self, purchasing_weave):
        assert len(purchasing_weave.asc) == 30

    def test_translation_preserves_internal_orderings(self, purchasing_weave):
        """Every internal-to-internal ordering of the merged set survives
        translation (the ASC covers the internal projection)."""
        merged_internal = internal_closure_map(
            purchasing_weave.merged, Semantics.REACHABILITY
        )
        asc_closures = internal_closure_map(
            purchasing_weave.asc, Semantics.REACHABILITY
        )
        for activity, facts in merged_internal.items():
            assert fact_set_covers(asc_closures[activity], facts)
