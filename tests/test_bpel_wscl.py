"""Tests for the BPEL and WSCL serialization backends."""

from __future__ import annotations

import pytest

from repro.bpel.emit import emit_bpel
from repro.bpel.parse import parse_bpel_flow, parse_structured_bpel
from repro.constructs.analysis import activities_of, implied_orderings
from repro.constructs.ast import Act, Flow, Link, Sequence, Switch
from repro.core.constraints import Constraint
from repro.deps.types import DependencyKind
from repro.errors import BPELError, WSCLError
from repro.model.service import Service
from repro.wscl.derive import (
    conversation_for_service,
    service_dependencies_from_conversation,
)
from repro.wscl.model import Conversation, Interaction, InteractionKind, Transition
from repro.wscl.xmlio import conversation_from_xml, conversation_to_xml


class TestBpelEmission:
    def test_emit_contains_all_links(self, purchasing_process, purchasing_weave):
        xml = emit_bpel(purchasing_process, purchasing_weave.minimal)
        assert xml.count("<link name=") == 17
        assert 'suppressJoinFailure="yes"' in xml
        assert 'name="recClient_po"' in xml
        assert "transitionCondition" in xml

    def test_emit_rejects_mixed_set(self, purchasing_process, purchasing_weave):
        with pytest.raises(BPELError):
            emit_bpel(purchasing_process, purchasing_weave.merged)

    def test_guard_outcomes_attribute(self, purchasing_process, purchasing_weave):
        xml = emit_bpel(purchasing_process, purchasing_weave.minimal)
        assert 'outcomes="F,T"' in xml

    def test_weave_result_to_bpel(self, purchasing_weave):
        assert purchasing_weave.to_bpel().startswith("<process")


class TestBpelRoundTrip:
    def test_flow_round_trip(self, purchasing_process, purchasing_weave):
        xml = emit_bpel(purchasing_process, purchasing_weave.minimal)
        recovered = parse_bpel_flow(xml)
        assert set(map(str, recovered.constraints)) == set(
            map(str, purchasing_weave.minimal.constraints)
        )
        assert set(recovered.activities) == set(purchasing_weave.minimal.activities)
        assert recovered.domains.domain("if_au") == frozenset({"T", "F"})
        assert recovered.guard_of("invPurchase_po")

    def test_round_trip_all_workloads(self, loan_weave, travel_weave, deployment_weave):
        for process, weave in (loan_weave, travel_weave, deployment_weave):
            xml = emit_bpel(process, weave.minimal)
            recovered = parse_bpel_flow(xml)
            assert set(map(str, recovered.constraints)) == set(
                map(str, weave.minimal.constraints)
            )

    def test_parse_rejects_garbage(self):
        with pytest.raises(BPELError):
            parse_bpel_flow("<not-bpel/>")
        with pytest.raises(BPELError):
            parse_bpel_flow("not xml at all <<<")

    def test_parse_rejects_dangling_link(self):
        xml = (
            '<process name="p"><flow><links><link name="l0"/></links>'
            '<assign name="a"><source linkName="l0"/></assign>'
            "</flow></process>"
        )
        with pytest.raises(BPELError):
            parse_bpel_flow(xml)


class TestStructuredBpelParsing:
    def test_sequence_and_switch(self):
        xml = """
        <process name="demo">
          <sequence>
            <receive name="in"/>
            <switch guard="g">
              <case outcome="T"><assign name="a"/></case>
              <case outcome="F"><assign name="b"/></case>
            </switch>
            <reply name="out"/>
          </sequence>
        </process>
        """
        tree = parse_structured_bpel(xml)
        assert activities_of(tree) == ["in", "g", "a", "b", "out"]
        implied = implied_orderings(tree)
        assert ("g", "a") in implied
        assert ("a", "b") not in implied

    def test_flow_with_links(self):
        xml = """
        <process name="demo">
          <flow>
            <links><link name="l1"/></links>
            <sequence>
              <invoke name="x"><source linkName="l1"/></invoke>
            </sequence>
            <sequence>
              <invoke name="y"><target linkName="l1"/></invoke>
            </sequence>
          </flow>
        </process>
        """
        tree = parse_structured_bpel(xml)
        assert ("x", "y") in implied_orderings(tree)

    def test_switch_requires_guard_attribute(self):
        xml = '<process name="p"><switch><case outcome="T"><assign name="a"/></case></switch></process>'
        with pytest.raises(BPELError):
            parse_structured_bpel(xml)

    def test_otherwise_branch(self):
        xml = """
        <process name="p">
          <switch guard="g">
            <case outcome="T"><assign name="a"/></case>
            <otherwise><assign name="b"/></otherwise>
          </switch>
        </process>
        """
        tree = parse_structured_bpel(xml)
        assert isinstance(tree, Switch)
        assert tree.otherwise == Act("b")


class TestWscl:
    def test_round_trip(self):
        conversation = Conversation(
            "C",
            "Svc",
            interactions=[
                Interaction("a", InteractionKind.RECEIVE, "P1", document="Doc1"),
                Interaction("b", InteractionKind.SEND, "P_d"),
            ],
            transitions=[Transition("a", "b")],
        )
        assert conversation_from_xml(conversation_to_xml(conversation)) == conversation

    def test_conversation_for_purchase_service(self):
        service = Service(
            "Purchase", ports=["Purchase1", "Purchase2"], asynchronous=True,
            sequential=True,
        )
        conversation = conversation_for_service(service)
        dependencies = service_dependencies_from_conversation(conversation)
        rendered = {str(d) for d in dependencies}
        assert rendered == {
            "Purchase1 ->s Purchase2",
            "Purchase1 ->s Purchase_d",
            "Purchase2 ->s Purchase_d",
        }
        assert all(d.kind is DependencyKind.SERVICE for d in dependencies)

    def test_same_port_transitions_collapse(self):
        conversation = Conversation(
            "C",
            "Svc",
            interactions=[
                Interaction("a", InteractionKind.RECEIVE, "P1"),
                Interaction("b", InteractionKind.RECEIVE, "P1"),
            ],
            transitions=[Transition("a", "b")],
        )
        assert service_dependencies_from_conversation(conversation) == []

    def test_duplicate_interaction_rejected(self):
        conversation = Conversation("C", "S")
        conversation.add_interaction(Interaction("x", InteractionKind.SEND, "p"))
        with pytest.raises(WSCLError):
            conversation.add_interaction(Interaction("x", InteractionKind.SEND, "p"))

    def test_transition_endpoints_validated(self):
        conversation = Conversation("C", "S")
        with pytest.raises(WSCLError):
            conversation.add_transition(Transition("a", "b"))

    def test_bad_xml_rejected(self):
        with pytest.raises(WSCLError):
            conversation_from_xml("<Nope/>")
        with pytest.raises(WSCLError):
            conversation_from_xml("garbage <")

    def test_wscl_feeds_pipeline(self, purchasing_process):
        """Service dependencies derived from the WSCL documents published by
        each service equal the ones the extractor derives from the model —
        the 'submit a WSCL document to the scheduling engine' flow."""
        from repro.deps.servicedeps import extract_service_dependencies

        from_wscl = set()
        for service in purchasing_process.services:
            conversation = conversation_for_service(service)
            from_wscl |= {
                str(d)
                for d in service_dependencies_from_conversation(conversation)
            }
        ports = set(purchasing_process.port_names())
        from_model = {
            str(d)
            for d in extract_service_dependencies(purchasing_process)
            # keep only the service-internal (port-to-port) rows; the
            # process-to-port bindings are not part of a WSCL document
            if d.source in ports and d.target in ports
        }
        assert from_wscl == from_model
