"""Tests for the tracing core: spans, nesting, the ring buffer, export.

The Chrome trace export is checked twice — once with the in-repo
structural validator and once against ``CHROME_TRACE_SCHEMA`` with the
``jsonschema`` package — so the schema document and the validator cannot
drift apart silently.
"""

from __future__ import annotations

import pytest

from repro.obs import (
    CHROME_TRACE_SCHEMA,
    NOOP_SPAN,
    Observability,
    Tracer,
    chrome_trace,
    flame_summary,
    span_forest,
    validate_chrome_trace,
)


class FakeClock:
    """A controllable monotonic clock for exact-duration assertions."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, delta: float) -> None:
        self.now += delta


class TestSpans:
    def test_single_span_records_name_and_duration(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("core.minimize", constraints=17):
            clock.advance(0.25)
        (span,) = tracer.finished_spans()
        assert span.name == "core.minimize"
        assert span.duration == pytest.approx(0.25)
        assert span.start == pytest.approx(0.0)
        assert span.attrs == {"constraints": 17}
        assert span.parent_id is None

    def test_nesting_assigns_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b"):
                with tracer.span("leaf"):
                    pass
        spans = {span.name: span for span in tracer.finished_spans()}
        outer = spans["outer"]
        assert spans["inner.a"].parent_id == outer.span_id
        assert spans["inner.b"].parent_id == outer.span_id
        assert spans["leaf"].parent_id == spans["inner.b"].span_id
        assert outer.parent_id is None

    def test_span_forest_shape(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        with tracer.span("root2"):
            pass
        forest = span_forest(tracer.finished_spans())
        assert forest == [("root", (("a", ()), ("b", ()))), ("root2", ())]

    def test_set_attaches_attributes_late(self):
        tracer = Tracer()
        with tracer.span("runtime.recover") as span:
            span.set(adopted=3).set(resumed=1)
        (span,) = tracer.finished_spans()
        assert span.attrs == {"adopted": 3, "resumed": 1}

    def test_decorator_form_records_per_call(self):
        tracer = Tracer()

        @tracer.span("work")
        def work(x):
            return x * 2

        assert work(21) == 42
        assert work(1) == 2
        assert [s.name for s in tracer.finished_spans()] == ["work", "work"]


class TestRingBuffer:
    def test_capacity_bounds_retention_and_counts_drops(self):
        tracer = Tracer(capacity=4)
        for index in range(7):
            with tracer.span("s%d" % index):
                pass
        spans = tracer.finished_spans()
        assert [s.name for s in spans] == ["s3", "s4", "s5", "s6"]
        assert tracer.dropped == 3

    def test_missing_parent_surfaces_children_as_roots(self):
        from repro.obs import Span

        # a span whose parent is absent from the list (evicted, or the
        # buffer was truncated) must surface as a root, not vanish
        orphan = Span(5, 2, "kid.b", 0.0, 0.1, {})
        root = Span(7, None, "other", 0.2, 0.1, {})
        forest = span_forest([orphan, root])
        assert forest == [("kid.b", ()), ("other", ())]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_clear_resets_buffer_and_drop_count(self):
        tracer = Tracer(capacity=1)
        for _ in range(3):
            with tracer.span("x"):
                pass
        tracer.clear()
        assert tracer.finished_spans() == []
        assert tracer.dropped == 0


class TestDisabledPath:
    def test_disabled_tracer_hands_out_the_shared_noop(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("anything", k=1) is NOOP_SPAN
        assert tracer.span("other") is NOOP_SPAN

    def test_noop_span_is_inert(self):
        with NOOP_SPAN as span:
            assert span.set(a=1) is NOOP_SPAN

    def test_noop_decorator_returns_function_unchanged(self):
        def f():
            return 7

        assert NOOP_SPAN(f) is f

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("x"):
            pass
        assert tracer.finished_spans() == []

    def test_observability_bundle_defaults(self):
        obs = Observability()
        assert obs.tracer.enabled
        assert len(obs.metrics) == 0
        quiet = Observability(tracing=False)
        assert quiet.tracer.span("x") is NOOP_SPAN


class TestChromeExport:
    def _payload(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("runtime.run", cases=2):
            clock.advance(0.001)
            with tracer.span("runtime.batch", shard=0):
                clock.advance(0.002)
            clock.advance(0.0005)
        return chrome_trace(tracer, process_name="test")

    def test_structure_and_values(self):
        payload = self._payload()
        assert payload["displayTimeUnit"] == "ms"
        meta, outer, inner = (
            payload["traceEvents"][0],
            payload["traceEvents"][2],
            payload["traceEvents"][1],
        )
        assert meta["ph"] == "M" and meta["args"]["name"] == "test"
        # spans land oldest-completed first: the inner batch finishes first
        assert inner["name"] == "runtime.batch"
        assert inner["ph"] == "X"
        assert inner["dur"] == pytest.approx(2000.0)  # microseconds
        assert inner["args"]["parent"] == outer["args"]["id"]
        assert inner["cat"] == "runtime"
        assert outer["name"] == "runtime.run"
        assert outer["dur"] == pytest.approx(3500.0)
        assert outer["args"]["cases"] == 2

    def test_self_validator_accepts_export(self):
        assert validate_chrome_trace(self._payload()) == []

    def test_jsonschema_accepts_export(self):
        jsonschema = pytest.importorskip("jsonschema")
        jsonschema.validate(self._payload(), CHROME_TRACE_SCHEMA)

    def test_validator_rejects_malformed_events(self):
        assert validate_chrome_trace([]) == ["top level must be a JSON object"]
        assert validate_chrome_trace({}) == ["traceEvents must be an array"]
        problems = validate_chrome_trace(
            {"traceEvents": [{"name": "", "ph": "Q", "ts": -1, "pid": 1, "tid": 1}]}
        )
        assert any("name" in p for p in problems)
        assert any("phase" in p for p in problems)
        assert any("ts" in p for p in problems)

    def test_flame_summary_computes_self_time(self):
        rows = flame_summary(self._payload())
        by_name = {row.name: row for row in rows}
        # runtime.run total 3500us, child 2000us -> self 1500us
        assert by_name["runtime.run"].total_us == pytest.approx(3500.0)
        assert by_name["runtime.run"].self_us == pytest.approx(1500.0)
        assert by_name["runtime.batch"].self_us == pytest.approx(2000.0)
        assert by_name["runtime.batch"].count == 1

    def test_flame_summary_top_limits_rows(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        for index in range(6):
            with tracer.span("s%d" % index):
                clock.advance(0.001 * (index + 1))
        rows = flame_summary(chrome_trace(tracer), top=3)
        assert len(rows) == 3
        # ranked by self time, descending
        assert [row.name for row in rows] == ["s5", "s4", "s3"]
