"""Tests for Definitions 4-6: set cover, transitive equivalence, minimal sets."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.closure import Semantics
from repro.core.constraints import Constraint, SynchronizationConstraintSet
from repro.core.equivalence import covers, fact_set_covers, transitive_equivalent
from repro.core.minimize import is_minimal, minimize, minimize_fast, minimize_naive
from tests.strategies import constraint_sets, unconditional_constraint_sets

SLOW = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def sc_of(edges, activities=None, guards=None):
    if activities is None:
        activities = sorted({e[0] for e in edges} | {e[1] for e in edges})
    constraints = [
        Constraint(*edge) if len(edge) == 3 else Constraint(edge[0], edge[1])
        for edge in edges
    ]
    return SynchronizationConstraintSet(
        activities=activities, constraints=constraints, guards=guards
    )


class TestCover:
    def test_fact_set_covers_subsumption(self):
        covering = frozenset({("x", frozenset())})
        covered = frozenset({("x", frozenset({("g", "T")}))})
        # Works over any frozenset annotations (pure set inclusion).
        assert fact_set_covers(covering, covered)
        assert not fact_set_covers(covered, covering)

    def test_superset_covers_subset(self):
        big = sc_of([("a", "b"), ("b", "c"), ("a", "c")])
        small = sc_of([("a", "b"), ("b", "c")], activities=["a", "b", "c"])
        assert covers(big, small, Semantics.STRICT)
        assert covers(small, big, Semantics.STRICT)  # transitivity supplies a->c

    def test_missing_edge_not_covered(self):
        full = sc_of([("a", "b"), ("b", "c")])
        partial = sc_of([("a", "b")], activities=["a", "b", "c"])
        assert covers(full, partial, Semantics.STRICT)
        assert not covers(partial, full, Semantics.STRICT)

    def test_equivalence_is_mutual_cover(self):
        first = sc_of([("a", "b"), ("b", "c"), ("a", "c")])
        second = sc_of([("a", "b"), ("b", "c")], activities=["a", "b", "c"])
        assert transitive_equivalent(first, second, Semantics.STRICT)


class TestMinimizeExamples:
    def test_shortcut_edge_removed(self):
        sc = sc_of([("a", "b"), ("b", "c"), ("a", "c")])
        minimal = minimize(sc, Semantics.STRICT)
        assert len(minimal) == 2
        assert not minimal.has_constraint("a", "c")

    def test_strict_keeps_edge_bypassed_only_conditionally(self):
        """Under strict Definition 3-5 semantics, a -> e is NOT removable
        when the only other path is conditional."""
        sc = sc_of([("a", "d"), ("d", "e", "T"), ("a", "e")])
        minimal = minimize_naive(sc, Semantics.STRICT)
        assert minimal.has_constraint("a", "e")

    def test_guard_aware_removes_it_when_target_guarded(self):
        from repro.analysis.conditions import Cond

        sc = sc_of(
            [("a", "d"), ("d", "e", "T"), ("a", "e")],
            guards={"e": frozenset({Cond("d", "T")})},
        )
        minimal = minimize_naive(sc, Semantics.GUARD_AWARE)
        assert not minimal.has_constraint("a", "e")
        assert len(minimal) == 2

    def test_conditional_edge_with_conditional_bypass(self):
        """d ->T f is redundant given d ->T e -> f (same annotation)."""
        sc = sc_of([("d", "e", "T"), ("e", "f"), ("d", "f", "T")])
        minimal = minimize_naive(sc, Semantics.STRICT)
        assert not minimal.has_constraint("d", "f", "T")
        assert len(minimal) == 2

    def test_empty_set(self):
        sc = SynchronizationConstraintSet(activities=["a", "b"])
        assert len(minimize(sc)) == 0

    def test_result_is_minimal(self):
        sc = sc_of(
            [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d"), ("a", "d"), ("b", "d")]
        )
        minimal = minimize(sc, Semantics.STRICT)
        assert is_minimal(minimal, Semantics.STRICT)
        assert len(minimal) == 3


class TestMinimizeProperties:
    @SLOW
    @given(unconditional_constraint_sets())
    def test_unconditional_minimization_is_transitive_reduction(self, sc):
        """On unconditional sets all three semantics coincide and the unique
        minimal set is the DAG transitive reduction."""
        minimal = minimize(sc, Semantics.STRICT)
        reference = nx.DiGraph([(c.source, c.target) for c in sc])
        reference.add_nodes_from(sc.activities)
        expected = set(nx.transitive_reduction(reference).edges())
        assert {(c.source, c.target) for c in minimal} == expected

    @SLOW
    @given(constraint_sets())
    def test_minimize_preserves_equivalence_guard_aware(self, sc):
        minimal = minimize(sc, Semantics.GUARD_AWARE)
        assert transitive_equivalent(minimal, sc, Semantics.GUARD_AWARE)

    @SLOW
    @given(constraint_sets())
    def test_minimize_preserves_equivalence_strict(self, sc):
        minimal = minimize(sc, Semantics.STRICT)
        assert transitive_equivalent(minimal, sc, Semantics.STRICT)

    @SLOW
    @given(constraint_sets())
    def test_minimize_is_idempotent(self, sc):
        minimal = minimize(sc, Semantics.GUARD_AWARE)
        again = minimize(minimal, Semantics.GUARD_AWARE)
        assert set(again.constraints) == set(minimal.constraints)

    @SLOW
    @given(constraint_sets())
    def test_result_is_minimal_property(self, sc):
        minimal = minimize(sc, Semantics.GUARD_AWARE)
        assert is_minimal(minimal, Semantics.GUARD_AWARE)

    @SLOW
    @given(constraint_sets())
    def test_fast_agrees_with_naive(self, sc):
        """Fast and naive iterate candidates in the same order, so they must
        produce identical sets (not merely equivalent ones)."""
        fast = minimize_fast(sc, Semantics.GUARD_AWARE)
        naive = minimize_naive(sc, Semantics.GUARD_AWARE)
        assert set(fast.constraints) == set(naive.constraints)

    @SLOW
    @given(constraint_sets())
    def test_fast_agrees_with_naive_strict(self, sc):
        fast = minimize_fast(sc, Semantics.STRICT)
        naive = minimize_naive(sc, Semantics.STRICT)
        assert set(fast.constraints) == set(naive.constraints)

    @SLOW
    @given(constraint_sets())
    def test_semantics_ordering(self, sc):
        """Pure reachability removes the most constraints.  Strict and
        guard-aware are incomparable in general: guard-aware strips
        endpoint-implied annotations (removes more) but also refuses
        bypasses through skippable intermediates (removes fewer)."""
        strict = len(minimize(sc, Semantics.STRICT))
        guard_aware = len(minimize(sc, Semantics.GUARD_AWARE))
        reachability = len(minimize(sc, Semantics.REACHABILITY))
        assert strict >= reachability
        assert guard_aware >= reachability

    def test_unknown_algorithm_rejected(self):
        sc = sc_of([("a", "b")])
        with pytest.raises(ValueError):
            minimize(sc, algorithm="magic")

    def test_explicit_order_changes_survivors(self):
        """The minimal set is not unique (paper, Section 4.4): with A->B,
        B->C and the redundant pair A->C..., order decides which equivalent
        edge survives in a symmetric double-diamond."""
        sc = sc_of([("a", "b"), ("b", "d"), ("a", "c"), ("c", "d"), ("a", "d")])
        default = minimize(sc, Semantics.STRICT)
        assert not default.has_constraint("a", "d")
        # Removing a->b first makes a->d...  still removable (path via c).
        order = [Constraint("a", "d")]
        reordered = minimize(sc, Semantics.STRICT, order=order)
        assert set(reordered.constraints) == set(default.constraints)
