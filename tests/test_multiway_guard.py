"""End-to-end tests with a non-boolean guard (three-way switch).

The paper's colored-token extension explicitly targets "the control
dependency which has multiple output result"; this module runs a three-way
routing process through extraction, minimization (complementary-cover
merging needs the full declared domain), Petri validation and scheduling.
"""

from __future__ import annotations

import pytest

from repro.analysis.conditions import Cond
from repro.core.closure import Semantics, annotated_closure
from repro.core.constraints import Constraint, SynchronizationConstraintSet
from repro.core.minimize import minimize
from repro.core.pipeline import DSCWeaver, extract_all_dependencies
from repro.deps.cooperation import CooperationRegistry
from repro.model.builder import ProcessBuilder
from repro.petri.from_constraints import constraint_set_to_petri_net
from repro.petri.soundness import check_soundness
from repro.scheduler.engine import ConstraintScheduler

OUTCOMES = ("air", "sea", "land")


@pytest.fixture(scope="module")
def routing():
    builder = (
        ProcessBuilder("Routing")
        .receive("recOrder", writes=["order"])
        .guard("route", reads=["order"], outcomes=OUTCOMES)
        .assign("shipAir", reads=["order"], writes=["manifest"])
        .assign("shipSea", reads=["order"], writes=["manifest"])
        .assign("shipLand", reads=["order"], writes=["manifest"])
        .reply("replyManifest", reads=["manifest"])
    )
    builder.branch(
        "route",
        cases={"air": ["shipAir"], "sea": ["shipSea"], "land": ["shipLand"]},
        join="replyManifest",
    )
    process = builder.build()
    result = DSCWeaver().weave(process, extract_all_dependencies(process))
    return process, result


class TestThreeWayPipeline:
    def test_guard_domain_propagates(self, routing):
        _process, result = routing
        assert result.minimal.domains.domain("route") == frozenset(OUTCOMES)

    def test_each_branch_executes_alone(self, routing):
        process, result = routing
        for outcome in OUTCOMES:
            run = ConstraintScheduler(process, result.minimal).run(
                outcomes={"route": outcome}
            )
            expected = "ship%s" % outcome.capitalize()
            assert run.trace.records[expected].executed
            skipped = set(run.trace.skipped())
            assert skipped == {
                "ship%s" % other.capitalize()
                for other in OUTCOMES
                if other != outcome
            }
            assert run.trace.records["replyManifest"].executed

    def test_petri_sound_with_three_outcomes(self, routing):
        _process, result = routing
        net, _marking = constraint_set_to_petri_net(result.minimal)
        report = check_soundness(net)
        assert report.is_sound
        # One exec transition per outcome.
        names = {t.name for t in net.transitions}
        for outcome in OUTCOMES:
            assert "exec__route__%s" % outcome in names

    def test_unconditional_join_edge_kept_or_covered(self, routing):
        """The route -> replyManifest ordering holds on every branch; the
        minimizer may keep the NONE edge or cover it by the three branch
        paths, but the closure must contain the unconditional fact."""
        _process, result = routing
        closure = annotated_closure(
            result.minimal, "route", Semantics.GUARD_AWARE
        )
        assert ("replyManifest", frozenset()) in closure


class TestThreeWayMergeSemantics:
    def test_two_of_three_do_not_merge(self):
        """Complementary-cover merging needs the whole domain: two of three
        outcomes leave the join conditional."""
        from repro.analysis.conditions import ConditionDomains

        domains = ConditionDomains({"g": OUTCOMES})
        guards = {
            "a": frozenset({Cond("g", "air")}),
            "b": frozenset({Cond("g", "sea")}),
        }
        sc = SynchronizationConstraintSet(
            ["g", "a", "b", "j"],
            constraints=[
                Constraint("g", "a", "air"),
                Constraint("g", "b", "sea"),
                Constraint("a", "j"),
                Constraint("b", "j"),
            ],
            guards=guards,
            domains=domains,
        )
        closure = annotated_closure(sc, "g", Semantics.GUARD_AWARE)
        facts_j = {anns for target, anns in closure if target == "j"}
        assert frozenset() not in facts_j  # land outcome leaves j unordered

    def test_all_three_merge(self):
        from repro.analysis.conditions import ConditionDomains

        domains = ConditionDomains({"g": OUTCOMES})
        guards = {
            "a": frozenset({Cond("g", "air")}),
            "b": frozenset({Cond("g", "sea")}),
            "c": frozenset({Cond("g", "land")}),
        }
        sc = SynchronizationConstraintSet(
            ["g", "a", "b", "c", "j"],
            constraints=[
                Constraint("g", "a", "air"),
                Constraint("g", "b", "sea"),
                Constraint("g", "c", "land"),
                Constraint("a", "j"),
                Constraint("b", "j"),
                Constraint("c", "j"),
            ],
            guards=guards,
            domains=domains,
        )
        closure = annotated_closure(sc, "g", Semantics.GUARD_AWARE)
        assert ("j", frozenset()) in closure
        # And therefore a redundant direct g -> j edge would be removable.
        grown = sc.copy()
        grown.add(Constraint("g", "j"))
        minimal = minimize(grown, Semantics.GUARD_AWARE)
        assert not minimal.has_constraint("g", "j")
