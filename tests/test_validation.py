"""Tests for static validation: conflicts and coverage."""

from __future__ import annotations

import pytest

from repro.analysis.conditions import Cond
from repro.core.constraints import Constraint, SynchronizationConstraintSet
from repro.dscl.parser import parse
from repro.validation.conflicts import find_conflicts
from repro.validation.coverage import compare_constraint_sets


def sc_of(edges, activities=None, guards=None):
    if activities is None:
        activities = sorted({e[0] for e in edges} | {e[1] for e in edges})
    return SynchronizationConstraintSet(
        activities=activities,
        constraints=[
            Constraint(*e) if len(e) == 3 else Constraint(e[0], e[1]) for e in edges
        ],
        guards=guards,
    )


class TestConflicts:
    def test_clean_set(self, purchasing_weave):
        report = find_conflicts(purchasing_weave.minimal)
        assert not report.has_conflicts
        assert report.summary() == "no conflicts detected"

    def test_cycle_detected(self):
        sc = sc_of([("a", "b"), ("b", "c"), ("c", "a")])
        report = find_conflicts(sc)
        assert report.has_conflicts
        assert len(report.cycles) == 1
        assert set(report.cycles[0]) == {"a", "b", "c"}
        assert "cycle" in report.summary()

    def test_unsatisfiable_guard(self):
        guards = {"x": frozenset({Cond("g", "T"), Cond("g", "F")})}
        sc = sc_of([("g", "x", "T")], guards=guards)
        report = find_conflicts(sc)
        assert report.unsatisfiable_guards == ("x",)
        assert report.has_conflicts

    def test_vacuous_exclusive(self):
        sc = sc_of([("a", "b")])
        exclusives = parse("R(a) O R(b);").statements
        report = find_conflicts(sc, exclusives=exclusives)
        assert len(report.vacuous_exclusives) == 1
        # Vacuous exclusives are a warning, not a hard conflict.
        assert not report.has_conflicts

    def test_meaningful_exclusive_not_flagged(self):
        sc = SynchronizationConstraintSet(["a", "b"])
        exclusives = parse("R(a) O R(b);").statements
        report = find_conflicts(sc, exclusives=exclusives)
        assert report.vacuous_exclusives == ()


class TestCoverage:
    def test_exact_coverage(self, purchasing_weave):
        report = compare_constraint_sets(
            purchasing_weave.minimal, purchasing_weave.asc
        )
        assert report.is_exact
        assert report.is_sufficient and report.is_tight

    def test_missing_detected(self):
        implementation = sc_of([("a", "b")], activities=["a", "b", "c"])
        requirement = sc_of([("a", "b"), ("b", "c")])
        report = compare_constraint_sets(implementation, requirement)
        assert not report.is_sufficient
        assert ("b", "c") in report.missing
        assert ("a", "c") in report.missing

    def test_unnecessary_detected(self):
        implementation = sc_of([("a", "b"), ("b", "c")])
        requirement = sc_of([("a", "b")], activities=["a", "b", "c"])
        report = compare_constraint_sets(implementation, requirement)
        assert report.is_sufficient
        assert not report.is_tight
        assert ("b", "c") in report.unnecessary
