"""Tests for the DSCL language: lexer, parser, printer, desugaring, compiler."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.deps.registry import DependencySet
from repro.deps.types import Dependency, DependencyKind
from repro.dscl.ast import (
    Exclusive,
    HappenBefore,
    HappenTogether,
    Program,
    happen_before,
)
from repro.dscl.compiler import (
    compile_dependencies,
    compile_program,
    dependencies_to_program,
)
from repro.dscl.desugar import COORDINATOR_PREFIX, desugar
from repro.dscl.lexer import TokenKind, tokenize
from repro.dscl.parser import parse
from repro.dscl.printer import to_text
from repro.errors import DSCLSemanticError, DSCLSyntaxError
from repro.model.activity import ActivityState, StateRef


class TestLexer:
    def test_tokens(self):
        tokens = tokenize("F(a) ->[T] S(b);")
        kinds = [t.kind for t in tokens]
        assert kinds == [
            TokenKind.IDENT,
            TokenKind.LPAREN,
            TokenKind.IDENT,
            TokenKind.RPAREN,
            TokenKind.ARROW,
            TokenKind.LBRACKET,
            TokenKind.IDENT,
            TokenKind.RBRACKET,
            TokenKind.IDENT,
            TokenKind.LPAREN,
            TokenKind.IDENT,
            TokenKind.RPAREN,
            TokenKind.SEMI,
            TokenKind.EOF,
        ]

    def test_comments_skipped(self):
        tokens = tokenize("# a comment\nF(a) -> S(b);")
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].line == 2

    def test_exclusive_keyword(self):
        tokens = tokenize("R(a) O R(b);")
        assert any(t.kind is TokenKind.EXCLUSIVE for t in tokens)

    def test_together_operator(self):
        tokens = tokenize("S(a) <-> S(b);")
        assert any(t.kind is TokenKind.TOGETHER for t in tokens)

    def test_bad_character(self):
        with pytest.raises(DSCLSyntaxError) as excinfo:
            tokenize("F(a) % S(b);")
        assert excinfo.value.column > 0

    def test_identifiers_with_dots_and_digits(self):
        tokens = tokenize("F(svc.port_1) -> S(b2);")
        assert tokens[2].text == "svc.port_1"


class TestParser:
    def test_happen_before(self):
        program = parse("F(a) -> S(b);")
        assert len(program) == 1
        statement = program.statements[0]
        assert isinstance(statement, HappenBefore)
        assert statement.left == StateRef("a", ActivityState.FINISH)
        assert statement.right == StateRef("b", ActivityState.START)
        assert statement.condition is None

    def test_conditional(self):
        program = parse("F(g) ->[T] S(b);")
        assert program.statements[0].condition == "T"

    def test_happen_together(self):
        program = parse("S(a) <->[F] S(b);")
        statement = program.statements[0]
        assert isinstance(statement, HappenTogether)
        assert statement.condition == "F"

    def test_exclusive(self):
        program = parse("R(a) O R(b);")
        assert isinstance(program.statements[0], Exclusive)

    def test_fine_grained_states(self):
        program = parse("S(collectSurvey) -> F(closeOrder);")
        statement = program.statements[0]
        assert statement.left.state is ActivityState.START
        assert statement.right.state is ActivityState.FINISH

    def test_missing_semicolon(self):
        with pytest.raises(DSCLSyntaxError):
            parse("F(a) -> S(b)")

    def test_bad_state_letter(self):
        with pytest.raises(DSCLSyntaxError):
            parse("X(a) -> S(b);")

    def test_same_activity_rejected(self):
        with pytest.raises(DSCLSemanticError):
            parse("F(a) -> S(a);")

    def test_multiple_statements(self):
        program = parse("F(a) -> S(b);\nF(b) -> S(c);\nR(a) O R(c);")
        assert len(program) == 3


class TestPrinterRoundTrip:
    def test_simple_round_trip(self):
        source = "F(a) -> S(b);\nF(g) ->[T] S(c);\nS(x) <-> S(y);\nR(a) O R(b);\n"
        program = parse(source)
        assert parse(to_text(program, include_provenance=False)) == program

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["S", "R", "F"]),
                st.sampled_from(["a1", "b2", "c3", "d4"]),
                st.sampled_from(["->", "<->", "O"]),
                st.sampled_from([None, "T", "F", "case1"]),
                st.sampled_from(["S", "R", "F"]),
                st.sampled_from(["e5", "f6", "g7"]),
            ),
            max_size=8,
        )
    )
    def test_random_round_trip(self, rows):
        lines = []
        for left_state, left, op, condition, right_state, right in rows:
            if op == "O":
                lines.append(
                    "%s(%s) O %s(%s);" % (left_state, left, right_state, right)
                )
            else:
                suffix = "[%s]" % condition if condition else ""
                lines.append(
                    "%s(%s) %s%s %s(%s);"
                    % (left_state, left, op, suffix, right_state, right)
                )
        source = "\n".join(lines)
        program = parse(source)
        assert parse(to_text(program, include_provenance=False)) == program


class TestDesugar:
    def test_no_togethers_is_identity(self):
        program = parse("F(a) -> S(b);")
        result = desugar(program)
        assert result.program == program
        assert result.coordinators == []

    def test_together_introduces_coordinator(self):
        program = parse("F(x) -> S(a);\nF(y) -> S(b);\nS(a) <-> S(b);")
        result = desugar(program)
        assert len(result.coordinators) == 1
        coordinator = result.coordinators[0]
        assert coordinator.startswith(COORDINATOR_PREFIX)
        rendered = {str(s) for s in result.program}
        # Incoming edges redirected to the coordinator...
        assert "F(x) -> S(%s)" % coordinator in rendered
        assert "F(y) -> S(%s)" % coordinator in rendered
        # ...and the coordinator releases both sides.
        assert "F(%s) -> S(a)" % coordinator in rendered
        assert "F(%s) -> S(b)" % coordinator in rendered
        assert not any("<->" in r for r in rendered)

    def test_conditional_together(self):
        program = parse("S(a) <->[T] S(b);")
        result = desugar(program)
        conditions = {s.condition for s in result.program}
        assert conditions == {"T"}

    def test_chained_togethers(self):
        program = parse("S(a) <-> S(b);\nS(b) <-> S(c);")
        result = desugar(program)
        assert len(result.coordinators) == 2
        assert not any(isinstance(s, HappenTogether) for s in result.program)


class TestCompiler:
    def test_dependencies_to_program(self):
        ds = DependencySet(
            [
                Dependency(DependencyKind.DATA, "a", "b"),
                Dependency(DependencyKind.CONTROL, "g", "c", "T"),
                Dependency(DependencyKind.SERVICE, "b", "p1"),
            ]
        )
        program = dependencies_to_program(ds)
        rendered = [str(s) for s in program]
        assert rendered == ["F(a) -> S(b)", "F(g) ->[T] S(c)", "F(b) -> S(p1)"]
        assert all(s.provenance for s in program)

    def test_compile_splits_activity_level_and_fine_grained(self):
        program = parse("F(a) -> S(b);\nS(a) -> F(c);\nR(a) O R(b);")
        compiled = compile_program(program, activities=["a", "b", "c"])
        assert len(compiled.sc) == 1
        assert len(compiled.fine_grained) == 1
        assert len(compiled.exclusives) == 1

    def test_compile_rejects_undeclared_names(self):
        program = parse("F(a) -> S(b);")
        with pytest.raises(DSCLSemanticError):
            compile_program(program, activities=["a"])

    def test_compile_adds_coordinators(self):
        program = parse("F(x) -> S(a);\nS(a) <-> S(b);")
        compiled = compile_program(program, activities=["x", "a", "b"])
        assert compiled.coordinators
        assert compiled.coordinators[0] in compiled.sc.activities

    def test_compile_dependencies_purchasing(
        self, purchasing_process, purchasing_dependencies
    ):
        compiled = compile_dependencies(purchasing_process, purchasing_dependencies)
        # 40 deps, one data/cooperation duplicate -> 39 constraints.
        assert len(compiled.sc) == 39
        assert set(compiled.sc.externals) == set(purchasing_process.port_names())
        assert compiled.sc.guard_of("invPurchase_po")
        assert not compiled.sc.guard_of("recClient_po")
        assert compiled.fine_grained == []
        assert compiled.exclusives == []
