"""The ``dscweaver discover`` command and the ``simulate`` batch/perturb
flags: exit-code contract (0 clean, 1 gated finding, 2 bad input),
format handling and artifact emission."""

from __future__ import annotations

import json

import pytest

from repro.cli import _PERTURBATION_KINDS, main
from repro.conformance.events import EventLog
from repro.conformance.perturb import PERTURBATION_KINDS


@pytest.fixture(scope="module")
def recorded_log(tmp_path_factory):
    """A 200-case jittered purchasing log recorded through the CLI."""
    path = tmp_path_factory.mktemp("discover") / "runs.jsonl"
    assert (
        main(
            [
                "simulate",
                "--workload",
                "purchasing",
                "--cases",
                "200",
                "--seed",
                "0",
                "--record",
                str(path),
            ]
        )
        == 0
    )
    return path


class TestSimulateBatch:
    def test_cases_flag_records_one_case_per_run(self, recorded_log):
        log = EventLog.load_jsonl(str(recorded_log))
        assert len(log.cases()) == 200
        assert log.case_ids()[0] == "case-00000"

    def test_perturb_flag_injects_defects(self, tmp_path, capsys):
        path = tmp_path / "noisy.jsonl"
        assert (
            main(
                [
                    "simulate",
                    "--workload",
                    "purchasing",
                    "--cases",
                    "30",
                    "--record",
                    str(path),
                    "--perturb",
                    "swap",
                    "--perturb-rate",
                    "0.1",
                    "--seed",
                    "7",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "perturbed" in out
        assert "swap" in out
        assert path.exists()

    def test_perturbation_kind_choices_match_conformance_registry(self):
        # The CLI mirrors the kinds inline so parser construction stays
        # lazy; this pin keeps the mirror honest.
        assert set(_PERTURBATION_KINDS) == set(PERTURBATION_KINDS)


class TestDiscoverExitCodes:
    def test_clean_log_with_matching_reference_exits_zero(
        self, recorded_log, capsys
    ):
        assert (
            main(
                [
                    "discover",
                    "--log",
                    str(recorded_log),
                    "--reference",
                    "purchasing",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "precision=1.000 recall=1.000" in out
        assert "transitively equivalent to reference: yes" in out
        assert "rediscovered program verification: proven" in out

    def test_wrong_reference_exits_one_with_dis005(self, recorded_log, capsys):
        assert (
            main(
                [
                    "discover",
                    "--log",
                    str(recorded_log),
                    "--reference",
                    "loan",
                    "--no-verify",
                ]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "DIS005" in out

    def test_fail_on_error_tolerates_warnings(self, recorded_log):
        assert (
            main(
                [
                    "discover",
                    "--log",
                    str(recorded_log),
                    "--reference",
                    "loan",
                    "--no-verify",
                    "--fail-on",
                    "error",
                ]
            )
            == 0
        )

    def test_missing_log_exits_two(self, tmp_path, capsys):
        assert main(["discover", "--log", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot load log" in capsys.readouterr().err

    def test_invalid_thresholds_exit_two(self, recorded_log, capsys):
        assert (
            main(
                [
                    "discover",
                    "--log",
                    str(recorded_log),
                    "--min-confidence",
                    "0.3",
                ]
            )
            == 2
        )
        assert "invalid thresholds" in capsys.readouterr().err

    def test_malformed_log_exits_two(self, tmp_path, capsys):
        path = tmp_path / "broken.csv"
        path.write_text("not,a,log\n1,2,3\n", encoding="utf-8")
        assert main(["discover", "--log", str(path)]) == 2
        assert "cannot load log" in capsys.readouterr().err


class TestDiscoverOutputs:
    def test_mine_without_reference_prints_summary(self, recorded_log, capsys):
        assert main(["discover", "--log", str(recorded_log)]) == 0
        out = capsys.readouterr().out
        assert "mined 200 case(s)" in out
        assert "candidates:" in out

    def test_show_candidates_lists_scored_arrows(self, recorded_log, capsys):
        assert (
            main(["discover", "--log", str(recorded_log), "--show-candidates"])
            == 0
        )
        out = capsys.readouterr().out
        assert "->c[T]" in out or "->c[F]" in out
        assert "->o" in out
        assert "support=" in out

    def test_emit_dscl_writes_parseable_program(
        self, recorded_log, tmp_path, capsys
    ):
        target = tmp_path / "mined.dscl"
        assert (
            main(
                [
                    "discover",
                    "--log",
                    str(recorded_log),
                    "--emit-dscl",
                    str(target),
                ]
            )
            == 0
        )
        from repro.dscl.parser import parse

        program = parse(target.read_text(encoding="utf-8"))
        assert program.statements

    def test_json_report_format(self, recorded_log, capsys):
        assert (
            main(
                [
                    "discover",
                    "--log",
                    str(recorded_log),
                    "--reference",
                    "loan",
                    "--no-verify",
                    "--report-format",
                    "json",
                ]
            )
            == 1
        )
        payload = json.loads(capsys.readouterr().out)
        assert any(d["code"] == "DIS005" for d in payload["findings"])

    def test_csv_log_round_trips_through_discover(
        self, recorded_log, tmp_path, capsys
    ):
        csv_path = tmp_path / "runs.csv"
        log = EventLog.load_jsonl(str(recorded_log))
        csv_path.write_text(log.to_csv(), encoding="utf-8")
        assert (
            main(
                [
                    "discover",
                    "--log",
                    str(csv_path),
                    "--reference",
                    "purchasing",
                    "--no-verify",
                ]
            )
            == 0
        )
        assert "precision=1.000 recall=1.000" in capsys.readouterr().out
