"""Property-based tests of the scheduling engine on random processes.

The key soundness property of the whole system: for any generated process,
any branch-outcome combination, and both the full and the minimized
constraint set, the engine produces a schedule in which **every original
constraint is respected** among executed activities, the skipped set is
exactly the guard-determined one, and minimization changes neither
makespan nor the executed set.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.pipeline import DSCWeaver
from repro.scheduler.engine import ConstraintScheduler
from repro.workloads.synthetic import SyntheticSpec, generate_dependency_set

SEEDS = range(8)


def _weaves():
    for seed in SEEDS:
        process, dependencies = generate_dependency_set(
            SyntheticSpec(n_activities=40, n_branches=2, coop_density=0.6, seed=seed)
        )
        yield process, DSCWeaver().weave(process, dependencies)


@pytest.fixture(scope="module")
def woven_workloads():
    return list(_weaves())


def _outcome_policies(process):
    guards = [a.name for a in process.activities if a.is_guard]
    for combo in itertools.product(["T", "F"], repeat=len(guards)):
        yield dict(zip(guards, combo))


class TestScheduleSoundness:
    def test_all_constraints_respected(self, woven_workloads):
        for process, weave in woven_workloads:
            for outcomes in _outcome_policies(process):
                run = ConstraintScheduler(process, weave.minimal).run(
                    outcomes=outcomes
                )
                for constraint in weave.asc:  # original, pre-minimization
                    source = run.trace.records.get(constraint.source)
                    target = run.trace.records.get(constraint.target)
                    assert source is not None and target is not None
                    if source.executed and target.executed:
                        assert source.finish <= target.start, (
                            "seed run violated %s under %r"
                            % (constraint, outcomes)
                        )

    def test_skipped_set_is_guard_determined(self, woven_workloads):
        for process, weave in woven_workloads:
            for outcomes in _outcome_policies(process):
                run = ConstraintScheduler(process, weave.minimal).run(
                    outcomes=outcomes
                )
                for activity in process.activities:
                    record = run.trace.records[activity.name]
                    should_run = all(
                        outcomes[guard] == outcome
                        for guard, outcome in process.guard_of(activity.name)
                    )
                    assert record.executed == should_run
                    assert record.skipped == (not should_run)

    def test_minimal_and_full_schedules_agree(self, woven_workloads):
        for process, weave in woven_workloads:
            for outcomes in _outcome_policies(process):
                minimal = ConstraintScheduler(process, weave.minimal).run(
                    outcomes=outcomes
                )
                full = ConstraintScheduler(process, weave.asc).run(outcomes=outcomes)
                assert minimal.makespan == full.makespan
                assert set(minimal.executed_names()) == set(full.executed_names())

    def test_minimal_never_costs_more_monitoring(self, woven_workloads):
        for process, weave in woven_workloads:
            minimal = ConstraintScheduler(process, weave.minimal).run()
            full = ConstraintScheduler(process, weave.asc).run()
            assert minimal.constraint_checks <= full.constraint_checks

    def test_no_deadlocks_on_any_branch(self, woven_workloads):
        for process, weave in woven_workloads:
            for outcomes in _outcome_policies(process):
                run = ConstraintScheduler(process, weave.minimal).run(
                    outcomes=outcomes, raise_on_deadlock=False
                )
                assert not run.deadlocked
