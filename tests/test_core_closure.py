"""Tests for annotated transitive closure (Definition 3) and semantics."""

from __future__ import annotations

import pytest

from repro.analysis.conditions import Cond
from repro.core.closure import (
    Semantics,
    annotated_closure,
    closure_map,
    internal_closure_map,
)
from repro.core.constraints import Constraint, SynchronizationConstraintSet


def sc_of(edges, activities=None, guards=None):
    if activities is None:
        activities = sorted(
            {e[0] for e in edges} | {e[1] for e in edges}
        )
    constraints = [
        Constraint(*edge) if len(edge) == 3 else Constraint(edge[0], edge[1])
        for edge in edges
    ]
    return SynchronizationConstraintSet(
        activities=activities, constraints=constraints, guards=guards
    )


class TestDefinition3Examples:
    def test_plain_chain(self):
        """a1 -> a2, a2 -> a3 gives a1+ = {a2, a3} (the paper's example)."""
        sc = sc_of([("a1", "a2"), ("a2", "a3")])
        closure = annotated_closure(sc, "a1", Semantics.STRICT)
        assert closure == frozenset({("a2", frozenset()), ("a3", frozenset())})

    def test_conditional_annotation_propagates(self):
        """a1 -> a2 ->T a3 -> a4 gives a1+ = {a2, a3(T@a2), a4(T@a2)}."""
        sc = sc_of([("a1", "a2"), ("a2", "a3", "T"), ("a3", "a4")])
        closure = annotated_closure(sc, "a1", Semantics.STRICT)
        t_at_a2 = frozenset({Cond("a2", "T")})
        assert closure == frozenset(
            {("a2", frozenset()), ("a3", t_at_a2), ("a4", t_at_a2)}
        )

    def test_unconditional_path_subsumes_conditional(self):
        sc = sc_of([("a", "b"), ("a", "c"), ("c", "b", "T")])
        closure = annotated_closure(sc, "a", Semantics.STRICT)
        assert ("b", frozenset()) in closure
        assert all(not anns for target, anns in closure if target == "b")

    def test_contradictory_paths_dropped(self):
        sc = sc_of([("g", "x", "T"), ("x", "g2"), ("g2", "y", "F")])
        # Path g ->T x -> g2 ->F y accumulates {T@g, F@g2}: satisfiable.
        closure = annotated_closure(sc, "g", Semantics.STRICT)
        assert ("y", frozenset({Cond("g", "T"), Cond("g2", "F")})) in closure

    def test_contradiction_on_same_guard(self):
        sc = sc_of([("g", "x", "T"), ("x", "y"), ("g", "y", "F")])
        closure = annotated_closure(sc, "g", Semantics.STRICT)
        # y reachable via T-path (T@g) and direct F edge (F@g): both kept
        # (incomparable), no contradictory combination arises.
        annotations = {anns for target, anns in closure if target == "y"}
        assert frozenset({Cond("g", "T")}) in annotations
        assert frozenset({Cond("g", "F")}) in annotations


class TestSemantics:
    def test_reachability_ignores_annotations(self):
        sc = sc_of([("g", "x", "T")])
        closure = annotated_closure(sc, "g", Semantics.REACHABILITY)
        assert closure == frozenset({("x", frozenset())})

    def test_guard_aware_strips_target_guard(self):
        """An annotation implied by the target's execution guard is vacuous."""
        guards = {"x": frozenset({Cond("g", "T")})}
        sc = sc_of(
            [("a", "g"), ("g", "x", "T"), ("a", "x")],
            guards=guards,
        )
        closure = annotated_closure(sc, "a", Semantics.GUARD_AWARE)
        assert ("x", frozenset()) in closure
        # Under strict semantics the annotated fact stays separate.
        strict = annotated_closure(sc.without(Constraint("a", "x")), "a", Semantics.STRICT)
        assert ("x", frozenset({Cond("g", "T")})) in strict

    def test_guard_aware_strips_source_guard(self):
        guards = {"u": frozenset({Cond("g", "T")}), "x": frozenset({Cond("g", "T")})}
        sc = sc_of([("u", "g2"), ("g2", "x", "T")], guards=guards)
        # The annotation is (T@g2), not implied by u's guard -> stays.
        closure = annotated_closure(sc, "u", Semantics.GUARD_AWARE)
        assert ("x", frozenset({Cond("g2", "T")})) in closure

    def test_guard_aware_merges_complementary(self):
        """d -> r via a T path and an F path is as good as unconditional."""
        sc = sc_of(
            [("d", "a", "T"), ("a", "r"), ("d", "m", "F"), ("m", "r")],
            guards={
                "a": frozenset({Cond("d", "T")}),
                "m": frozenset({Cond("d", "F")}),
            },
        )
        closure = annotated_closure(sc, "d", Semantics.GUARD_AWARE)
        assert ("r", frozenset()) in closure

    def test_merge_vetoed_when_guard_may_not_run(self):
        """Complementary facts over a guard that itself may be skipped must
        not merge: if g never runs, neither conditional path orders x."""
        guards = {
            "g": frozenset({Cond("outer", "T")}),
            "a": frozenset({Cond("g", "T")}),
            "b": frozenset({Cond("g", "F")}),
        }
        sc = sc_of(
            [("s", "g"), ("g", "a", "T"), ("g", "b", "F"), ("a", "x"), ("b", "x")],
            guards=guards,
        )
        closure = annotated_closure(sc, "s", Semantics.GUARD_AWARE)
        facts_x = {anns for target, anns in closure if target == "x"}
        assert frozenset() not in facts_x

    def test_effective_guard_transitivity(self):
        guards = {
            "inner": frozenset({Cond("outer", "T")}),
            "x": frozenset({Cond("inner", "T")}),
        }
        sc = sc_of([("outer", "inner", "T"), ("inner", "x", "T")], guards=guards)
        assert sc.effective_guard("x") == frozenset(
            {Cond("inner", "T"), Cond("outer", "T")}
        )


class TestClosureMap:
    def test_matches_single_closures(self, purchasing_weave):
        sc = purchasing_weave.minimal
        mapped = closure_map(sc, Semantics.GUARD_AWARE)
        for node in sc.activities:
            assert mapped[node] == annotated_closure(sc, node, Semantics.GUARD_AWARE)

    def test_cyclic_sets_terminate(self):
        sc = sc_of([("a", "b"), ("b", "c"), ("c", "a")])
        mapped = closure_map(sc, Semantics.STRICT)
        assert mapped["a"] == frozenset(
            {("a", frozenset()), ("b", frozenset()), ("c", frozenset())}
        )

    def test_internal_closure_map_filters_externals(self, purchasing_weave):
        merged = purchasing_weave.merged
        internal = internal_closure_map(merged, Semantics.REACHABILITY)
        internal_names = set(merged.activities)
        for facts in internal.values():
            for target, _anns in facts:
                assert target in internal_names

    def test_restricted_nodes(self, purchasing_weave):
        sc = purchasing_weave.minimal
        subset = closure_map(sc, Semantics.GUARD_AWARE, nodes=["recClient_po"])
        assert set(subset) == {"recClient_po"}
