"""Cross-subsystem observability tests.

Covers the contracts the instrumentation wiring promises:

* two identical ``serve`` runs with tracing on produce identical metric
  values and identical span trees (names + nesting, durations ignored);
* the legacy metric dataclasses (:class:`RuntimeMetrics`,
  :class:`KernelStats`) round-trip through the shared registry;
* the conformance monitor and scheduler publish counters that agree with
  their own reports;
* ``program_from_weave`` is one function object re-exported everywhere.
"""

from __future__ import annotations

import importlib

import pytest

from repro.cli import _case_plans
from repro.obs import Observability, span_forest
from repro.runtime import Runtime, program_from_weave


def _weave(workload="purchasing"):
    from repro.cli import _weave as cli_weave

    return cli_weave(workload)


def _serve(obs, cases=24):
    _process, result = _weave()
    program = program_from_weave(result, target="runtime")
    runtime = Runtime(program, obs=obs)
    try:
        runtime.submit_batch(_case_plans(program, cases))
        report = runtime.run()
    finally:
        runtime.close()
    return report


def _comparable_metrics(registry):
    """Deterministic metric state: counters and histogram bucket counts.

    Gauges are excluded — ``repro_runtime_wall_seconds`` is wall-clock —
    and so are histogram sums for time-valued histograms; the bucket
    *counts* of the virtual-time histograms are fully deterministic.
    """
    snapshot = {}
    for metric in registry:
        if metric.kind == "counter":
            for values, child in metric.children():
                snapshot[(metric.name, values)] = child.value
        elif metric.kind == "histogram":
            for values, child in metric.children():
                if metric.name.endswith("_seconds"):
                    continue  # wall-clock valued: only its existence is stable
                snapshot[(metric.name, values)] = (tuple(child.counts), child.count)
    return snapshot


class TestServeDeterminism:
    def test_two_identical_runs_agree(self):
        first, second = Observability(), Observability()
        report_a = _serve(first)
        report_b = _serve(second)
        assert report_a.metrics.completed == report_b.metrics.completed == 24
        assert _comparable_metrics(first.metrics) == _comparable_metrics(
            second.metrics
        )
        forest_a = span_forest(first.tracer.finished_spans())
        forest_b = span_forest(second.tracer.finished_spans())
        assert forest_a == forest_b
        assert len(forest_a) == 1 and forest_a[0][0] == "runtime.run"
        assert all(name == "runtime.batch" for name, _kids in forest_a[0][1])

    def test_batch_spans_carry_shard_attributes(self):
        obs = Observability()
        _serve(obs, cases=8)
        batches = [
            s for s in obs.tracer.finished_spans() if s.name == "runtime.batch"
        ]
        assert batches
        assert all("shard" in s.attrs and "cases" in s.attrs for s in batches)

    def test_disabled_run_matches_enabled_outcomes(self):
        enabled = _serve(Observability())
        disabled = _serve(None)
        assert {c: r.status for c, r in enabled.results.items()} == {
            c: r.status for c, r in disabled.results.items()
        }


class TestRuntimeMetricsBridge:
    def test_snapshot_round_trips_through_registry(self):
        from repro.runtime.metrics import RuntimeMetrics

        obs = Observability()
        _process, result = _weave()
        program = program_from_weave(result, target="runtime")
        runtime = Runtime(program, obs=obs)
        try:
            runtime.submit_batch(_case_plans(program, 16))
            runtime.run()
            snapshot = runtime.metrics()
        finally:
            runtime.close()
        rebuilt = RuntimeMetrics.from_registry(obs.metrics)
        for field in (
            "shards",
            "submitted",
            "admitted",
            "completed",
            "failed",
            "rejected",
            "recovered",
            "in_flight",
            "queue_depth",
            "peak_in_flight",
            "peak_queue_depth",
            "retries",
            "transitions",
            "checks",
            "journal_records",
            "shard_assigned",
        ):
            assert getattr(rebuilt, field) == getattr(snapshot, field), field

    def test_admission_counter_tracks_verdicts(self):
        obs = Observability()
        _process, result = _weave()
        program = program_from_weave(result, target="runtime")
        runtime = Runtime(program, max_in_flight=4, max_queue=2, obs=obs)
        try:
            runtime.submit_batch(_case_plans(program, 12))
            runtime.run()
            snapshot = runtime.metrics()
        finally:
            runtime.close()
        admission = obs.metrics.get("repro_runtime_admission_total")
        assert admission.value(verdict="admit") == 4
        assert admission.value(verdict="queue") == 2
        assert admission.value(verdict="reject") == snapshot.rejected == 6


class TestKernelCounters:
    def test_minimize_publishes_kernel_stats(self):
        from repro.core.pipeline import DSCWeaver
        from repro.cli import _load_workload

        obs = Observability()
        process, dependencies = _load_workload("purchasing")
        result = DSCWeaver(obs=obs).weave(process, dependencies)
        stats = result.report.kernel_stats
        assert stats is not None
        for name in (
            "closures_computed",
            "closure_cache_hits",
            "subsumption_tests",
            "candidates",
            "raw_shortcut_accepts",
            "cheap_rejects",
            "full_checks",
            "removed",
        ):
            counter = obs.metrics.get("repro_core_%s_total" % name)
            assert counter is not None, name
            assert counter.value() == stats[name], name

    def test_weave_emits_phase_spans_and_staged_timings(self):
        from repro.core.pipeline import DSCWeaver
        from repro.cli import _load_workload

        obs = Observability()
        process, dependencies = _load_workload("purchasing")
        DSCWeaver(obs=obs).weave(process, dependencies)
        names = [span.name for span in obs.tracer.finished_spans()]
        for phase in ("weave.compile", "weave.translate", "weave.minimize"):
            assert phase in names
        assert "core.minimize" in names
        assert names.count("core.try_remove") > 0
        staged = obs.metrics.get("repro_core_try_remove_seconds")
        observed = sum(child.count for _values, child in staged.children())
        assert observed == names.count("core.try_remove")


class TestConformanceCounters:
    def _recorded_log(self):
        from repro.conformance import EventLog, events_from_trace
        from repro.scheduler.engine import ConstraintScheduler

        process, result = _weave()
        scheduler = ConstraintScheduler(
            process,
            result.minimal,
            fine_grained=result.fine_grained,
            exclusives=result.exclusives,
        )
        run = scheduler.run()
        return result, EventLog(events_from_trace(run.trace, "case-1"))

    def test_replay_counters_match_report(self):
        from repro.conformance import replay

        result, log = self._recorded_log()
        from repro.conformance import program_from_weave as conf_pfw

        program = conf_pfw(result)
        obs = Observability()
        report = replay(log, program, obs=obs)
        assert obs.metrics.get("repro_conformance_events_total").value() == (
            report.events
        )
        assert obs.metrics.get("repro_conformance_inspections_total").value() == (
            report.checks
        )
        obligations = obs.metrics.get("repro_conformance_obligations_total")
        for verdict, count in report.verdict_counts.items():
            assert obligations.value(verdict=verdict.value) == count
        names = [span.name for span in obs.tracer.finished_spans()]
        assert names == ["conformance.replay"]

    def test_activated_counter_counts_parked_obligations(self):
        from repro.analysis.conditions import Cond, ConditionDomains
        from repro.conformance import (
            START,
            ConformanceMonitor,
            Event,
            compile_monitor,
        )
        from repro.core.constraints import Constraint, SynchronizationConstraintSet

        sc = SynchronizationConstraintSet(
            activities=["a", "b", "g", "c"],
            constraints=[Constraint("a", "b"), Constraint("g", "c", "T")],
            guards={"c": frozenset({Cond("g", "T")})},
            domains=ConditionDomains(),
        )
        obs = Observability()
        monitor = ConformanceMonitor(compile_monitor(sc), obs=obs)
        # c starts before g resolves: both the guard obligation and the
        # conditional happen-before are parked on g
        monitor.feed(Event("c1", "c", START, 0.0))
        monitor.finish()
        activated = obs.metrics.get(
            "repro_conformance_obligations_activated_total"
        )
        assert activated.value() == 2

    def test_monitor_publishes_once(self):
        from repro.conformance import ConformanceMonitor, program_from_weave as pfw

        result, log = self._recorded_log()
        obs = Observability()
        monitor = ConformanceMonitor(pfw(result), obs=obs)
        for event in log:
            monitor.feed(event)
        monitor.finish()
        monitor.publish_metrics()  # idempotent: finish() already published
        events_total = obs.metrics.get("repro_conformance_events_total")
        assert events_total.value() == monitor.events_fed == len(log)


class TestSchedulerCounters:
    def test_run_publishes_checks_and_makespan(self):
        from repro.scheduler.engine import ConstraintScheduler

        process, result = _weave()
        obs = Observability()
        scheduler = ConstraintScheduler(
            process,
            result.minimal,
            fine_grained=result.fine_grained,
            exclusives=result.exclusives,
            obs=obs,
        )
        run = scheduler.run()
        assert obs.metrics.get("repro_scheduler_runs_total").value() == 1
        assert obs.metrics.get("repro_scheduler_checks_total").value() == (
            run.constraint_checks
        )
        makespan = obs.metrics.get("repro_scheduler_makespan_virtual")
        assert makespan._default().count == 1
        names = [span.name for span in obs.tracer.finished_spans()]
        assert "scheduler.run" in names


class TestProgramFromWeaveIdentity:
    def test_one_function_object_everywhere(self):
        import repro.conformance
        import repro.programs
        import repro.runtime

        canonical = repro.programs.program_from_weave
        # ``repro.conformance.replay`` the *attribute* is the replay
        # function (it shadows the submodule), so go through importlib
        replay_module = importlib.import_module("repro.conformance.replay")
        runtime_module = importlib.import_module("repro.runtime.program")
        assert repro.runtime.program_from_weave is canonical
        assert runtime_module.program_from_weave is canonical
        assert repro.conformance.program_from_weave is canonical
        assert replay_module.program_from_weave is canonical

    def test_dispatches_by_target(self):
        from repro.conformance.monitor import MonitorProgram
        from repro.programs import program_from_weave as pfw
        from repro.runtime.program import ConstraintProgram

        _process, result = _weave()
        assert isinstance(pfw(result), MonitorProgram)
        assert isinstance(pfw(result, target="monitor"), MonitorProgram)
        assert isinstance(pfw(result, target="runtime"), ConstraintProgram)

    def test_selects_minimal_or_full_set(self):
        from repro.programs import program_from_weave as pfw

        _process, result = _weave()
        minimal = pfw(result, which="minimal", target="runtime")
        full = pfw(result, which="full", target="runtime")
        assert minimal.size == len(result.minimal)
        assert full.size == len(result.asc)
        assert minimal.size <= full.size

    def test_bad_arguments_raise(self):
        from repro.programs import program_from_weave as pfw

        _process, result = _weave()
        with pytest.raises(ValueError):
            pfw(result, which="bogus")
        with pytest.raises(ValueError):
            pfw(result, target="bogus")
