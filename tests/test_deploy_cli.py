"""CLI tests for the hot-swap surface (`dscweaver deploy` / `serve --redeploy-after`).

Pins the exit-code contract: 0 clean, 1 findings at/above --fail-on,
2 usage errors, 3 simulated crash; and that the JSON payloads carry the
migration plan and the per-case version map.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main

EDITS = {"add": [], "remove": [{"source": "recClient_po", "target": "invPurchase_po"}]}


@pytest.fixture()
def edits(tmp_path):
    path = tmp_path / "edits.json"
    path.write_text(json.dumps(EDITS))
    return str(path)


def _json_out(capsys):
    return json.loads(capsys.readouterr().out)


class TestDeployCommand:
    def test_preflight_only(self, edits, capsys):
        assert main(["deploy", "purchasing", "--to", edits, "--format", "json"]) == 0
        payload = _json_out(capsys)
        assert payload["from_version"] == 1
        assert payload["to_version"] == 2
        assert payload["incremental"] is True
        assert payload["removed"] == 1
        assert payload["preflight"]["safe"] is True
        assert payload["preflight"]["stranded"] == 0
        assert "plan" not in payload

    def test_preflight_text_mentions_the_gate(self, edits, capsys):
        assert main(["deploy", "purchasing", "--to", edits]) == 0
        out = capsys.readouterr().out
        assert "v1 -> v2" in out
        assert "preflight strand gate" in out

    def test_missing_edits_file_is_a_usage_error(self, tmp_path, capsys):
        assert main(["deploy", "--to", str(tmp_path / "nope.json")]) == 2
        assert "cannot load edits" in capsys.readouterr().err

    def test_malformed_edits_is_a_usage_error(self, tmp_path, capsys):
        path = tmp_path / "edits.json"
        path.write_text("[]")
        assert main(["deploy", "--to", str(path)]) == 2
        assert "cannot load edits" in capsys.readouterr().err

    def test_invalid_edit_batch_is_a_usage_error(self, tmp_path, capsys):
        path = tmp_path / "edits.json"
        path.write_text(json.dumps({"remove": [{"source": "a", "target": "b"}]}))
        assert main(["deploy", "--to", str(path)]) == 2
        assert "invalid edit batch" in capsys.readouterr().err

    def test_from_journal_dry_run_then_apply(self, edits, tmp_path, capsys):
        journal = str(tmp_path / "journal.jsonl")
        # Crash a plain serve mid-run to leave in-flight cases behind.
        assert main([
            "serve", "purchasing", "--cases", "20",
            "--journal", journal, "--crash-after", "120",
        ]) == 3
        capsys.readouterr()

        assert main([
            "deploy", "purchasing", "--to", edits, "--from", journal,
            "--dry-run", "--format", "json",
        ]) == 0
        plan = _json_out(capsys)["plan"]
        assert plan["applied"] is False
        assert plan["upgraded"] > 0
        assert plan["rejected"] == 0

        assert main([
            "deploy", "purchasing", "--to", edits, "--from", journal,
            "--format", "json",
        ]) == 0
        applied = _json_out(capsys)["plan"]
        assert applied["applied"] is True
        assert applied["upgraded"] == plan["upgraded"]

        from repro.runtime import read_journal

        state = read_journal(journal)
        assert state.current_version() == 2
        assert state.pending_deploy() is None


class TestServeValidation:
    def test_to_requires_redeploy_after(self, edits, capsys):
        assert main(["serve", "purchasing", "--to", edits]) == 2
        assert "--to requires --redeploy-after" in capsys.readouterr().err

    def test_redeploy_requires_to(self, tmp_path, capsys):
        assert main([
            "serve", "purchasing", "--redeploy-after", "5",
            "--journal", str(tmp_path / "j.jsonl"),
        ]) == 2
        assert "requires --to" in capsys.readouterr().err

    def test_redeploy_requires_journal(self, edits, capsys):
        assert main([
            "serve", "purchasing", "--redeploy-after", "5", "--to", edits,
        ]) == 2
        assert "requires --journal" in capsys.readouterr().err

    def test_redeploy_rejects_objects(self, edits, tmp_path, capsys):
        assert main([
            "serve", "orders", "--objects", "--redeploy-after", "5",
            "--to", edits, "--journal", str(tmp_path / "j.jsonl"),
        ]) == 2
        assert "--objects" in capsys.readouterr().err

    def test_redeploy_rejects_full_set(self, edits, tmp_path, capsys):
        assert main([
            "serve", "purchasing", "--set", "full", "--redeploy-after", "5",
            "--to", edits, "--journal", str(tmp_path / "j.jsonl"),
        ]) == 2
        assert "--set full" in capsys.readouterr().err


class TestServeHotSwap:
    def _serve(self, journal, edits, *extra):
        return main([
            "serve", "purchasing", "--cases", "20", "--journal", journal,
            "--redeploy-after", "10", "--to", edits, "--format", "json",
            *extra,
        ])

    def test_single_process_swap(self, edits, tmp_path, capsys):
        journal = str(tmp_path / "journal.jsonl")
        assert self._serve(journal, edits) == 0
        payload = _json_out(capsys)
        deploy = payload["deploy"]
        assert deploy["from_version"] == 1
        assert deploy["to_version"] == 2
        assert deploy["incremental"] is True
        assert deploy["upgraded"] == 10
        assert deploy["rejected"] == 0
        assert sorted(set(deploy["versions"].values())) == [1, 2]
        assert payload["metrics"]["completed"] == 20

    def test_worker_pool_swap(self, edits, tmp_path, capsys):
        journal_dir = str(tmp_path / "pool")
        assert main([
            "serve", "purchasing", "--cases", "24", "--workers", "2",
            "--journal", journal_dir, "--redeploy-after", "4",
            "--to", edits, "--format", "json",
        ]) == 0
        deploy = _json_out(capsys)["deploy"]
        assert deploy["upgraded"] > 0
        assert deploy["rejected"] == 0
        assert sorted(set(deploy["versions"].values())) == [1, 2]

    def test_crash_during_swap_recovers_to_the_clean_outcome(
        self, edits, tmp_path, capsys
    ):
        clean = str(tmp_path / "clean.jsonl")
        assert self._serve(clean, edits) == 0
        clean_deploy = _json_out(capsys)["deploy"]

        # Crash two records past dep:begin — inside the swap window.
        lines = (tmp_path / "clean.jsonl").read_text().splitlines()
        begin_at = next(i for i, l in enumerate(lines) if '"rt":"dep"' in l)
        crashed = str(tmp_path / "crashed.jsonl")
        assert self._serve(
            crashed, edits, "--crash-after", str(begin_at + 2)
        ) == 3
        capsys.readouterr()

        # Roll-forward recovery is reported as DEP004 (warning), which
        # gates serve's default --fail-on warning.
        assert self._serve(crashed, edits, "--recover") == 1
        recovered = _json_out(capsys)
        assert recovered["deploy"]["versions"] == clean_deploy["versions"]
        assert any(
            f["code"] == "DEP004"
            for f in recovered["findings"]["findings"]
        )

    def test_recovery_warning_passes_fail_on_error(self, edits, tmp_path, capsys):
        clean = str(tmp_path / "clean.jsonl")
        assert self._serve(clean, edits) == 0
        lines = (tmp_path / "clean.jsonl").read_text().splitlines()
        begin_at = next(i for i, l in enumerate(lines) if '"rt":"dep"' in l)
        crashed = str(tmp_path / "crashed.jsonl")
        assert self._serve(
            crashed, edits, "--crash-after", str(begin_at + 2)
        ) == 3
        capsys.readouterr()
        assert self._serve(crashed, edits, "--recover", "--fail-on", "error") == 0
