"""The rediscovery acceptance loop: simulate → mine → re-weave → verify.

The headline criterion of the discovery subsystem (ROADMAP item 3):
mining a noise-free simulated log of every bundled workload — 200 cases
under straggler jitter, guard outcomes enumerated over every branch
combination — rediscovers a dependency set transitively equivalent to
the declared one (entailment-level precision = recall = 1.0), and the
rediscovered minimal program verifies deadlock-free end to end.

Perturbed logs pin the degradation/recovery story: strict mining
(``noise=0.0``) loses recall as defects break always-ordered evidence,
and a small noise budget (``noise=0.02``) recovers full equivalence at
case-perturbation rates up to 0.1.
"""

from __future__ import annotations

import pytest

from repro.discover.evaluate import (
    evaluate_workload,
    guard_outcome_plans,
    perturb_log,
    round_trip,
    simulate_log,
)
from repro.discover.mine import REFERENCE_DIVERGENCE, MinerConfig, mine
from repro.discover.stats import LogStatistics

WORKLOADS = ("purchasing", "deployment", "loan", "travel", "insurance")

#: Reference minimal-set sizes (pinned by the paper-numbers tests).
MINIMAL_SIZES = {
    "purchasing": 17,
    "deployment": 5,
    "loan": 11,
    "travel": 14,
    "insurance": 14,
}


@pytest.mark.parametrize("workload", WORKLOADS)
def test_noise_free_log_rediscovers_equivalent_set(workload):
    report = evaluate_workload(workload, cases=200, seed=0)
    assert report.precision == 1.0, report.spurious
    assert report.recall == 1.0, report.missed
    assert report.equivalent is True
    assert report.verify_ok is True
    assert report.minimal_mined == report.minimal_reference
    assert report.minimal_reference == MINIMAL_SIZES[workload]
    assert report.discovery.diagnostics == []
    assert report.cases == 200


def test_rediscovery_stable_across_seeds():
    for seed in (1, 2):
        report = evaluate_workload("purchasing", cases=200, seed=seed, verify=False)
        assert report.precision == 1.0, (seed, report.spurious)
        assert report.recall == 1.0, (seed, report.missed)
        assert report.equivalent is True


class TestPerturbationTolerance:
    def test_strict_mining_degrades_gracefully(self):
        report = evaluate_workload(
            "purchasing", cases=200, seed=0, perturb_rate=0.1, verify=False
        )
        assert report.perturbations  # defects actually injected
        assert report.precision >= 0.9
        assert report.recall < 1.0  # strict always-ordered loses edges
        assert not report.equivalent
        # Every divergence is reported as a DIS005 finding.
        divergences = [
            d
            for d in report.discovery.diagnostics
            if d.code == REFERENCE_DIVERGENCE
        ]
        assert len(divergences) == len(report.spurious) + len(report.missed)

    @pytest.mark.parametrize("rate", [0.05, 0.1])
    def test_noise_budget_recovers_equivalence(self, rate):
        report = evaluate_workload(
            "purchasing",
            cases=200,
            seed=0,
            perturb_rate=rate,
            config=MinerConfig(noise=0.02),
            verify=False,
        )
        assert report.precision == 1.0, report.spurious
        assert report.recall == 1.0, report.missed
        assert report.equivalent is True


class TestSimulationHarness:
    def test_guard_outcome_plans_enumerate_all_combinations(
        self, purchasing_process
    ):
        guards = [a for a in purchasing_process.activities if a.is_guard]
        combos = 1
        for guard in guards:
            combos *= len(guard.outcomes)
        plans = guard_outcome_plans(purchasing_process, combos)
        assert len({tuple(sorted(p.items())) for p in plans}) == combos

    def test_simulate_log_restores_latencies(
        self, purchasing_process, purchasing_weave
    ):
        before = {s.name: s.latency for s in purchasing_process.services}
        log = simulate_log(purchasing_process, purchasing_weave, cases=4, seed=0)
        after = {s.name: s.latency for s in purchasing_process.services}
        assert before == after
        assert len(log.cases()) == 4

    def test_jitter_changes_schedules_but_not_constraint_order(
        self, purchasing_process, purchasing_weave
    ):
        jittered = simulate_log(
            purchasing_process, purchasing_weave, cases=2, seed=5
        )
        flat = simulate_log(
            purchasing_process, purchasing_weave, cases=2, seed=5, jitter=False
        )
        assert jittered != flat

    def test_perturb_log_rate_zero_is_identity(
        self, purchasing_process, purchasing_weave
    ):
        log = simulate_log(purchasing_process, purchasing_weave, cases=3, seed=0)
        broken, applied = perturb_log(log, 0.0)
        assert applied == []
        assert broken == log

    def test_perturb_log_nonzero_rate_hits_at_least_one_case(
        self, purchasing_process, purchasing_weave
    ):
        log = simulate_log(purchasing_process, purchasing_weave, cases=3, seed=0)
        broken, applied = perturb_log(log, 0.01, seed=1)
        assert len(applied) == 1
        assert broken != log
        # Case order is preserved through reassembly.
        assert broken.case_ids() == log.case_ids()

    def test_perturb_log_rejects_bad_rate(
        self, purchasing_process, purchasing_weave
    ):
        log = simulate_log(purchasing_process, purchasing_weave, cases=1, seed=0)
        with pytest.raises(ValueError):
            perturb_log(log, 1.5)


class TestRoundTripScoring:
    def test_missing_activity_reports_missed_constraints(
        self, purchasing_process, purchasing_weave
    ):
        log = simulate_log(purchasing_process, purchasing_weave, cases=60, seed=0)
        filtered = [e for e in log.events if e.activity != "replyClient_oi"]
        stats = LogStatistics.from_events(filtered)
        discovery = mine(stats)
        report = round_trip(
            discovery, purchasing_process, purchasing_weave, verify=False
        )
        assert report.recall < 1.0
        assert any("replyClient_oi" in missed for missed in report.missed)
        assert not report.equivalent
        assert any(
            d.code == REFERENCE_DIVERGENCE for d in report.discovery.diagnostics
        )

    def test_obs_gauges_and_spans(self, purchasing_process, purchasing_weave):
        from repro.obs import Observability

        obs = Observability()
        log = simulate_log(purchasing_process, purchasing_weave, cases=60, seed=0)
        stats = LogStatistics.from_log(log, obs=obs)
        discovery = mine(stats, obs=obs)
        round_trip(
            discovery, purchasing_process, purchasing_weave, verify=False, obs=obs
        )
        names = {span.name for span in obs.tracer.finished_spans()}
        assert {"discover.stats", "discover.mine", "discover.roundtrip"} <= names
        assert (
            obs.metrics.gauge("repro_discover_precision_ratio", "").value() == 1.0
        )
        assert obs.metrics.gauge("repro_discover_recall_ratio", "").value() == 1.0

    def test_summary_lines_cover_the_headline_numbers(
        self, purchasing_process, purchasing_weave
    ):
        log = simulate_log(purchasing_process, purchasing_weave, cases=60, seed=0)
        discovery = mine(LogStatistics.from_log(log))
        report = round_trip(
            discovery, purchasing_process, purchasing_weave, verify=False
        )
        text = "\n".join(report.summary_lines())
        assert "precision=1.000 recall=1.000" in text
        assert "transitively equivalent to reference: yes" in text
