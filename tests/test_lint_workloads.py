"""Self-lint over every workload: the repo's specifications must be clean.

All five workloads (purchasing, deployment, loan, travel, insurance) are
required to produce **zero error- and zero warning-severity findings** on
both the merged and the translated constraint sets — the only expected
findings are RED001 infos (redundancy the minimizer removes is a feature
of the workflow, not a defect).  No baseline file is needed: the
specifications are warning-free as shipped; the baseline mechanism is
exercised separately (``test_lint_cli``/``test_lint_rules``).

Also covers :mod:`repro.validation` across the workloads: conflict-freedom
everywhere, severity rollups, the Figure-2 over-specification as a lint
finding, and the dynamic race oracle over simulated schedules.
"""

from __future__ import annotations

import pytest

from repro.lint import LintContext, Severity, find_races, run_lint
from repro.scheduler.engine import ConstraintScheduler
from repro.scheduler.metrics import conflicting_overlaps
from repro.validation.conflicts import find_conflicts
from repro.validation.coverage import compare_constraint_sets

WORKLOADS = ("purchasing", "deployment", "loan", "travel", "insurance")


@pytest.fixture(params=WORKLOADS)
def workload(request, all_weaves):
    return request.param, all_weaves[request.param]


class TestSelfLint:
    def test_translated_set_has_no_errors_or_warnings(self, workload):
        name, (process, result) = workload
        report = run_lint(LintContext.from_weave(result))
        assert report.by_severity(Severity.ERROR) == (), name
        assert report.by_severity(Severity.WARNING) == (), name

    def test_merged_set_has_no_errors_or_warnings(self, workload):
        name, (process, result) = workload
        context = LintContext.from_constraints(
            result.merged,
            process=process,
            exclusives=result.exclusives,
            program=result.program,
        )
        report = run_lint(context)
        assert report.by_severity(Severity.ERROR) == (), name
        assert report.by_severity(Severity.WARNING) == (), name

    def test_only_expected_codes_fire(self, workload):
        name, (process, result) = workload
        report = run_lint(LintContext.from_weave(result))
        assert {finding.code for finding in report.findings} <= {"RED001"}, name

    def test_all_workloads_race_free(self, workload):
        name, (process, result) = workload
        races = find_races(
            result.asc, process=process, exclusives=result.exclusives
        )
        assert races == [], name


class TestConflictsAcrossWorkloads:
    def test_no_conflicts_anywhere(self, workload):
        name, (process, result) = workload
        report = find_conflicts(result.asc, exclusives=result.exclusives)
        assert not report.has_conflicts, name
        assert report.vacuous_exclusives == (), name

    def test_severity_rollup_clean(self, workload):
        name, (process, result) = workload
        report = find_conflicts(result.asc, exclusives=result.exclusives)
        assert report.severity_counts() == {"error": 0, "warning": 0, "info": 0}
        assert report.max_severity is None


class TestCoverageAcrossWorkloads:
    def test_minimal_covers_translated(self, workload):
        name, (process, result) = workload
        report = compare_constraint_sets(result.minimal, result.asc)
        assert report.missing == (), name
        assert report.unnecessary == (), name

    def test_figure2_edge_is_a_lint_finding(
        self, purchasing_weave, purchasing_constructs
    ):
        # Section 2 / Figure 2: the BPEL realization sequences the two
        # Production invocations although no dependency requires it.
        context = LintContext.from_weave(
            purchasing_weave, construct=purchasing_constructs
        )
        report = run_lint(context)
        over_specified = {
            finding.location.name for finding in report.by_code("SPEC001")
        }
        assert "invProduction_po -> invProduction_ss" in over_specified
        assert report.by_code("SPEC002") == ()


class TestDynamicRaceOracle:
    def test_schedules_never_overlap_conflicting_accesses(self, workload):
        # The static detector says race-free; the runtime must agree on
        # every branch outcome.
        name, (process, result) = workload
        scheduler = ConstraintScheduler(
            process,
            result.minimal,
            fine_grained=result.fine_grained,
            exclusives=result.exclusives,
        )
        run = scheduler.run()
        assert conflicting_overlaps(run.trace, process) == [], name

    def test_oracle_detects_seeded_overlap(self, purchasing_process):
        # Sanity-check the oracle itself: with no constraints at all, the
        # def-use pairs overlap and must be reported.
        from repro.core.constraints import SynchronizationConstraintSet

        empty = SynchronizationConstraintSet(
            activities=[a.name for a in purchasing_process.activities]
        )
        scheduler = ConstraintScheduler(
            purchasing_process, empty, strict_services=False
        )
        run = scheduler.run(raise_on_deadlock=False)
        assert conflicting_overlaps(run.trace, purchasing_process) != []
