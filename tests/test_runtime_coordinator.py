"""Tests for the coordinator: sharding, admission control, retries, metrics.

Covers the serving-side behaviors layered on top of per-case execution:
stable shard placement, bounded in-flight admission with queue promotion
and load shedding (``RT002``), deterministic lossy channels with retry
exhaustion (``RT001``), and the metrics snapshot.
"""

from __future__ import annotations

import pytest

from repro.runtime import (
    ADMIT,
    QUEUE,
    REJECT,
    AdmissionController,
    RetryPolicies,
    RetryPolicy,
    Runtime,
    ShardedStore,
    program_from_weave,
)


@pytest.fixture(scope="module")
def program(purchasing_weave):
    return program_from_weave(purchasing_weave, "minimal", target="runtime")


def plans(count):
    return {
        "case-%03d" % index: {"if_au": "T" if index % 2 == 0 else "F"}
        for index in range(count)
    }


class TestSharding:
    def test_placement_is_stable_across_stores(self):
        first = ShardedStore(8)
        second = ShardedStore(8)
        for case in ("case-%03d" % i for i in range(50)):
            assert first.shard_of(case).index == second.shard_of(case).index

    def test_all_shards_get_work(self, program):
        runtime = Runtime(program, shards=4)
        runtime.submit_batch(plans(64))
        report = runtime.run()
        assert all(count > 0 for count in report.metrics.shard_assigned)
        assert sum(report.metrics.shard_assigned) == 64

    def test_single_shard_is_allowed(self, program):
        runtime = Runtime(program, shards=1)
        runtime.submit_batch(plans(5))
        assert runtime.run().metrics.completed == 5

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError, match="shards"):
            ShardedStore(0)


class TestInterleavedScheduling:
    def test_batched_run_matches_sequential_results(self, program):
        load = plans(20)
        batched = Runtime(program, shards=4, batch=2)
        batched.submit_batch(load)
        wide = Runtime(program, shards=1, batch=1000)
        wide.submit_batch(load)
        assert batched.run().final_states() == wide.run().final_states()

    def test_minimal_and_full_serve_identical_states(self, purchasing_weave):
        load = plans(32)
        by_set = {}
        for which in ("minimal", "full"):
            runtime = Runtime(program_from_weave(purchasing_weave, which, target="runtime"), shards=4)
            runtime.submit_batch(load)
            by_set[which] = runtime.run()
        assert (
            by_set["minimal"].final_states() == by_set["full"].final_states()
        )
        assert by_set["minimal"].metrics.checks < by_set["full"].metrics.checks


class TestAdmissionController:
    def test_verdict_progression(self):
        control = AdmissionController(max_in_flight=1, max_queue=1)
        assert control.offer("a", {}) == ADMIT
        assert control.offer("b", {}) == QUEUE
        assert control.offer("c", {}) == REJECT
        assert control.rejected == 1
        promoted = control.complete()
        assert promoted == ("b", {})
        assert control.in_flight == 1

    def test_unbounded_by_default(self):
        control = AdmissionController()
        assert all(control.offer("c%d" % i, {}) == ADMIT for i in range(100))

    def test_runtime_respects_bounds(self, program):
        runtime = Runtime(program, shards=2, max_in_flight=5, max_queue=10)
        admitted = [runtime.submit("bp-%02d" % i) for i in range(20)]
        assert admitted.count(False) == 5
        report = runtime.run()
        assert report.metrics.peak_in_flight == 5
        assert report.metrics.peak_queue_depth == 10
        assert report.metrics.rejected == 5
        assert report.metrics.completed == 15
        rejections = [d for d in report.diagnostics if d.code == "RT002"]
        assert len(rejections) == 5
        # RT002 is backpressure, not failure: warning severity
        assert all(d.severity.name == "WARNING" for d in rejections)

    def test_queued_cases_complete_via_promotion(self, program):
        runtime = Runtime(program, shards=2, max_in_flight=2)
        load = plans(12)
        assert runtime.submit_batch(load) == ()
        report = runtime.run()
        assert report.completed_cases() == tuple(sorted(load))
        assert report.metrics.peak_in_flight == 2


class TestRetryPolicies:
    def test_delivery_is_deterministic(self):
        policy = RetryPolicy(failure_rate=0.5)
        draws = [
            policy.attempt_delivered(7, "case", "svc", "port", attempt)
            for attempt in range(1, 20)
        ]
        again = [
            policy.attempt_delivered(7, "case", "svc", "port", attempt)
            for attempt in range(1, 20)
        ]
        assert draws == again
        assert True in draws and False in draws

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(failure_rate=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_per_service_lookup(self):
        special = RetryPolicy(max_attempts=9)
        policies = RetryPolicies(per_service={"bank": special})
        assert policies.for_service("bank") is special
        assert policies.for_service("other") is policies.default

    def test_lossy_channel_recovers_with_retries(self, program):
        policies = RetryPolicies(
            default=RetryPolicy(failure_rate=0.3, timeout=1.0, max_attempts=6)
        )
        runtime = Runtime(program, policies=policies, seed=7)
        runtime.submit_batch(plans(40))
        report = runtime.run()
        assert report.metrics.completed == 40
        assert report.metrics.retries > 0

    def test_retries_delay_but_preserve_work(self, program):
        lossless = Runtime(program)
        lossless.submit("c", {"if_au": "T"})
        clean = lossless.run().results["c"]

        policies = RetryPolicies(
            default=RetryPolicy(failure_rate=0.4, timeout=3.0, max_attempts=8)
        )
        lossy_runtime = Runtime(program, policies=policies, seed=3)
        lossy_runtime.submit("c", {"if_au": "T"})
        lossy = lossy_runtime.run().results["c"]
        assert lossy.status == "completed"
        # same work done, same branch decisions -- only timing differs
        assert [name for name, _s, _f in lossy.executed] != []
        assert sorted(n for n, _s, _f in lossy.executed) == sorted(
            n for n, _s, _f in clean.executed
        )
        assert lossy.outcomes == clean.outcomes

    def test_exhaustion_fails_case_with_rt001(self, program):
        policies = RetryPolicies(
            default=RetryPolicy(failure_rate=1.0, timeout=1.0, max_attempts=2)
        )
        runtime = Runtime(program, policies=policies)
        runtime.submit("doomed")
        report = runtime.run()
        assert report.metrics.failed == 1
        assert [d.code for d in report.diagnostics] == ["RT001"]
        assert report.results["doomed"].status == "failed"
        assert "unreachable" in (report.results["doomed"].reason or "")
        assert report.exit_code() == 1

    def test_unaffected_cases_still_complete(self, program):
        # Purchase is only invoked on the approved branch; declined cases
        # never touch the dead service and must keep completing.
        policies = RetryPolicies(
            per_service={
                "Purchase": RetryPolicy(failure_rate=1.0, timeout=1.0, max_attempts=1)
            }
        )
        runtime = Runtime(program, policies=policies)
        runtime.submit("hit", {"if_au": "T"})
        runtime.submit("missed", {"if_au": "F"})
        report = runtime.run()
        by_status = {c: r.status for c, r in report.results.items()}
        assert by_status == {"hit": "failed", "missed": "completed"}


class TestMetrics:
    def test_snapshot_shape(self, program):
        runtime = Runtime(program, shards=3)
        runtime.submit_batch(plans(9))
        metrics = runtime.run().metrics
        assert metrics.submitted == metrics.admitted == metrics.completed == 9
        assert metrics.shards == 3
        assert len(metrics.shard_assigned) == 3
        assert metrics.wall_seconds > 0
        assert metrics.cases_per_second > 0
        assert metrics.latency_p50 > 0
        assert metrics.latency_p95 >= metrics.latency_p50
        assert metrics.checks_per_transition > 0

    def test_summary_is_operator_readable(self, program):
        runtime = Runtime(program)
        runtime.submit_batch(plans(4))
        text = runtime.run().summary()
        assert "cases/sec" in text
        assert "per transition" in text
        assert "p50" in text and "p95" in text

    def test_lint_report_integration(self, program):
        runtime = Runtime(program)
        runtime.submit_batch(plans(3))
        report = runtime.run()
        lint = report.to_lint_report()
        assert lint.rules_run == (
            "RT001",
            "RT002",
            "RT003",
            "RT004",
            "RT005",
            "RT006",
        )
        assert report.exit_code() == 0
