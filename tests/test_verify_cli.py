"""The ``dscweaver verify`` / ``dscweaver petri`` commands and the
``serve --verify`` pre-flight gate."""

from __future__ import annotations

import json

from repro.cli import main


class TestVerifyCommand:
    def test_purchasing_is_proven_exit_zero(self, capsys):
        assert main(["verify", "purchasing"]) == 0
        out = capsys.readouterr().out
        assert "PROVEN deadlock-free" in out
        assert "dead activities: none" in out
        assert "inert constraints: none" in out

    def test_full_set_surfaces_inert_constraints(self, capsys):
        code = main(
            ["verify", "purchasing", "--set", "full", "--fail-on", "info"]
        )
        assert code == 1  # VER004 info findings gate at --fail-on info
        out = capsys.readouterr().out
        assert "VER004" in out
        assert "never influences" in out

    def test_minimal_set_is_clean_even_at_fail_on_info(self, capsys):
        assert main(["verify", "purchasing", "--fail-on", "info"]) == 0

    def test_select_prefix_filters_codes(self, capsys):
        code = main(
            [
                "verify",
                "purchasing",
                "--set",
                "full",
                "--select",
                "VER001",
                "--fail-on",
                "info",
            ]
        )
        assert code == 0  # the VER004 findings are deselected
        assert "VER004" not in capsys.readouterr().out

    def test_ignore_silences_inert_findings(self, capsys):
        code = main(
            [
                "verify",
                "purchasing",
                "--set",
                "full",
                "--ignore",
                "VER004",
                "--fail-on",
                "info",
            ]
        )
        assert code == 0

    def test_json_format(self, capsys):
        assert main(["verify", "purchasing", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["subject"] == "purchasing"
        assert payload["counts"]["error"] == 0

    def test_sarif_format_lists_the_ver_rules(self, capsys):
        assert main(["verify", "purchasing", "--format", "sarif"]) == 0
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        rules = {
            rule["id"]
            for rule in log["runs"][0]["tool"]["driver"]["rules"]
        }
        assert {"VER001", "VER002", "VER003", "VER004", "VER005"} <= rules

    def test_state_limit_flag_reports_unknown(self, capsys):
        code = main(["verify", "purchasing", "--state-limit", "3"])
        assert code == 0  # truncation is a warning, default gate is error
        out = capsys.readouterr().out
        assert "UNKNOWN" in out

    def test_all_workloads_verify_green(self, capsys):
        for workload in ("purchasing", "deployment", "loan", "travel", "insurance"):
            assert main(["verify", workload]) == 0, workload
            assert "PROVEN" in capsys.readouterr().out


class TestLintSelectPrefixes:
    # Satellite 2: --select/--ignore accept code prefixes on the CLI.
    def test_lint_select_prefix_group(self, capsys):
        assert main(["lint", "purchasing", "--select", "SYNC"]) == 0
        out = capsys.readouterr().out
        assert "RED001" not in out

    def test_lint_ignore_prefix_group(self, capsys):
        assert main(["lint", "purchasing", "--ignore", "RED", "--fail-on", "info"]) == 0

    def test_verify_select_prefix_group(self, capsys):
        code = main(
            ["verify", "purchasing", "--set", "full", "--select", "VER", "--fail-on", "info"]
        )
        assert code == 1
        assert "VER004" in capsys.readouterr().out


class TestPetriCommand:
    def test_purchasing_is_sound_with_witnesses(self, capsys):
        assert main(["petri", "purchasing"]) == 0
        out = capsys.readouterr().out
        assert "sound: yes" in out
        assert "cross-check" in out
        assert "final" in out

    def test_json_format_carries_the_cross_check(self, capsys):
        assert main(["petri", "purchasing", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sound"] is True
        assert payload["verifier_agrees"] is True
        assert payload["verifier_predicts_sound"] is True
        finals = [
            t for t in payload["terminal_markings"] if t["kind"] == "final"
        ]
        assert finals and all(t["witness"] for t in finals)

    def test_all_workloads_round_trip(self, capsys):
        for workload in ("purchasing", "deployment", "loan", "travel", "insurance"):
            code = main(["petri", workload, "--format", "json"])
            capsys.readouterr()
            assert code in (0, 2), workload  # 2 = untranslatable guards


class TestServeVerifyGate:
    def test_gate_passes_and_prints_the_proof(self, capsys):
        assert main(["serve", "purchasing", "--cases", "2", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "verify: PROVEN deadlock-free" in out
        assert "completed" in out

    def test_gate_refuses_refuted_programs(self, capsys, monkeypatch):
        import repro.verify as verify_module

        real = verify_module.verify_program

        def refuted(program, **kwargs):
            report = real(program, **kwargs)
            report.deadlock_free = False
            return report

        monkeypatch.setattr(verify_module, "verify_program", refuted)
        assert main(["serve", "purchasing", "--cases", "2", "--verify"]) == 2
        captured = capsys.readouterr()
        assert "REFUTED" in captured.err
        assert "refusing to serve" in captured.err
        assert "completed" not in captured.out

    def test_without_the_flag_no_gate_runs(self, capsys):
        assert main(["serve", "purchasing", "--cases", "2"]) == 0
        assert "verify:" not in capsys.readouterr().out
